//! Offline vendored shim for the `bytes` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the small
//! subset of the `bytes` API its code actually uses: a growable byte buffer (`BytesMut`)
//! and the `BufMut` writer trait. The implementation is a thin wrapper over `Vec<u8>`;
//! it is API-compatible with the real crate for the methods defined here, so swapping the
//! real dependency back in requires no source changes.

use std::ops::{Deref, DerefMut};

/// A growable, uniquely-owned byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes currently in the buffer.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }

    /// Clears the buffer, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear()
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(buf: BytesMut) -> Vec<u8> {
        buf.inner
    }
}

/// Append-style byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends all of `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, value: u8) {
        self.put_slice(&[value]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_mut_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        assert!(buf.is_empty());
        buf.put_u8(1);
        buf.put_u64(0x0203_0405_0607_0809);
        buf.put_slice(b"xyz");
        assert_eq!(buf.len(), 12);
        assert_eq!(&buf[..1], &[1]);
        assert_eq!(buf.to_vec().len(), 12);
        let v: Vec<u8> = buf.into();
        assert_eq!(&v[9..], b"xyz");
    }
}
