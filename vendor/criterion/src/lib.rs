//! Offline vendored shim for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! subset of the criterion 0.5 API its benches use: `Criterion::benchmark_group`,
//! group configuration (`sample_size`, `measurement_time`, `warm_up_time`,
//! `throughput`), `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros. Instead of
//! criterion's statistical machinery it runs a plain warm-up + timed loop and prints
//! mean wall-clock time per iteration (plus element throughput when annotated) — enough
//! for CI smoke runs and coarse regressions, not for publication-grade numbers.
//!
//! Two environment hooks drive the CI bench-regression harness:
//!
//! * `IREC_CRITERION_QUICK=1` clamps every benchmark to a quick pass (≤5 samples, ≤100 ms
//!   warm-up, ≤300 ms measurement window), so a whole bench suite finishes in seconds;
//! * `IREC_CRITERION_JSON=<path>` appends one JSON line per finished benchmark
//!   (`{"bench":"group/id","mean_ns":…,"iters":…}`) to `<path>`, which the
//!   `bench_regression` binary of `irec_bench` consumes.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Whether the quick-pass clamp is enabled via `IREC_CRITERION_QUICK`.
fn quick_mode() -> bool {
    std::env::var("IREC_CRITERION_QUICK")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// Escapes a string for embedding in a JSON string literal (bench ids are plain
/// identifiers, but the writer must not be able to produce invalid JSON).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark (subset of `criterion::Throughput`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures (subset of `criterion::Bencher`).
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Mean nanoseconds per iteration, filled in by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, storing the mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }

        // Measurement: run until the window elapses or we hit a generous cap,
        // but always at least `samples` iterations.
        let cap = (self.samples as u64).max(10) * 10_000;
        let start = Instant::now();
        let mut iters: u64 = 0;
        loop {
            black_box(routine());
            iters += 1;
            if (iters >= self.samples as u64 && start.elapsed() >= self.measurement) || iters >= cap
            {
                break;
            }
        }
        self.iters = iters;
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

/// One named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// The bencher for one run, honouring the quick-pass clamp.
    fn bencher(&self) -> Bencher {
        let quick = quick_mode();
        Bencher {
            samples: if quick {
                self.samples.min(5)
            } else {
                self.samples
            },
            warm_up: if quick {
                self.warm_up.min(Duration::from_millis(100))
            } else {
                self.warm_up
            },
            measurement: if quick {
                self.measurement.min(Duration::from_millis(300))
            } else {
                self.measurement
            },
            mean_ns: f64::NAN,
            iters: 0,
        }
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let mut line = format!(
            "{}/{}: mean {} over {} iters",
            self.name,
            id,
            format_ns(b.mean_ns),
            b.iters
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if b.mean_ns > 0.0 {
                let per_sec = count as f64 * 1e9 / b.mean_ns;
                line.push_str(&format!(" ({per_sec:.0} {unit}/s)"));
            }
        }
        println!("{line}");

        if let Ok(path) = std::env::var("IREC_CRITERION_JSON") {
            if !path.is_empty() {
                let record = format!(
                    "{{\"bench\":\"{}/{}\",\"mean_ns\":{:.1},\"iters\":{}}}\n",
                    json_escape(&self.name),
                    json_escape(&id.to_string()),
                    b.mean_ns,
                    b.iters
                );
                let written = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .and_then(|mut f| std::io::Write::write_all(&mut f, record.as_bytes()));
                if let Err(e) = written {
                    eprintln!("warning: could not append bench record to {path}: {e}");
                }
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a group of benchmark functions (subset of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main` function (subset of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags such as `--bench`; ignore them.
            $( $group(); )+
        }
    };
}
