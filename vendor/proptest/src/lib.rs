//! Offline vendored shim for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! subset of the proptest API its tests use: the `proptest!` macro, `any::<T>()`,
//! integer/float range strategies, tuple strategies, `collection::vec`, `option::of`,
//! and the `prop_assert*` macros. Instead of proptest's shrinking test runner, each
//! property runs against a fixed number of deterministically generated random cases
//! (seeded per build, so failures are reproducible) and assertion failures panic like
//! ordinary `assert!` failures. That keeps the property tests meaningful — hundreds of
//! generated inputs per property — without the external dependency.

pub mod test_runner {
    //! Deterministic case generator used by the `proptest!` expansion.

    /// Number of generated cases per property.
    pub const CASES: usize = 192;

    /// SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a fixed seed.
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }

        /// Returns a uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (subset of `proptest::strategy`).

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let draw = (rng.next_u64() as i128).rem_euclid(span);
                    ((self.start as i128) + draw) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128) - (start as i128) + 1;
                    let draw = (rng.next_u64() as i128).rem_euclid(span);
                    ((start as i128) + draw) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );
}

pub mod arbitrary {
    //! `any::<T>()` strategies (subset of `proptest::arbitrary`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values spanning a wide magnitude range; no NaN/inf.
            let magnitude = rng.unit_f64() * 2e12 - 1e12;
            magnitude / (1.0 + rng.unit_f64() * 1e6)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive-exclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy generating `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vec strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies (subset of `proptest::option`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy generating `Option`s of an inner strategy, `None` ~25% of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// Wraps `inner` into an `Option` strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod prelude {
    //! One-stop imports matching `proptest::prelude::*` for the API subset.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]` running the body against [`test_runner::CASES`] generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                // Seed mixes the property name so distinct tests explore distinct cases.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for __b in stringify!($name).bytes() {
                    __seed = (__seed ^ __b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                }
                let mut __rng = $crate::test_runner::TestRng::new(__seed);
                for __case in 0..$crate::test_runner::CASES {
                    $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Assertion macro matching `proptest::prop_assert!` (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion macro matching `proptest::prop_assert_eq!` (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assertion macro matching `proptest::prop_assert_ne!` (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn generated_vec_lengths_respect_bounds(data in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(data.len() >= 2 && data.len() < 7);
        }

        #[test]
        fn ranges_and_tuples_sample_in_bounds(x in 3u64..9, pair in (1u32..4, -2.0f64..2.0)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!(pair.1 > -2.0 && pair.1 < 2.0);
        }

        #[test]
        fn mut_patterns_work(mut v in crate::collection::vec(0u8..10, 1..5)) {
            v.push(0);
            prop_assert!(!v.is_empty());
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let strat = crate::option::of(any::<u64>());
        let mut rng = crate::test_runner::TestRng::new(9);
        let samples: Vec<Option<u64>> = (0..64)
            .map(|_| crate::strategy::Strategy::sample(&strat, &mut rng))
            .collect();
        assert!(samples.iter().any(|s| s.is_none()));
        assert!(samples.iter().any(|s| s.is_some()));
    }
}
