//! Offline vendored shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! subset of the `parking_lot` API it uses: `Mutex` and `RwLock` with the
//! non-poisoning `lock()` / `read()` / `write()` signatures. Locks delegate to
//! `std::sync` and treat poisoning as unrecoverable corruption (they recover the
//! guard), which matches parking_lot's "no poisoning" semantics closely enough for
//! this codebase.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual-exclusion lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);

        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
