//! Offline vendored shim for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as forward-looking
//! annotations on plain data types — nothing actually serializes through serde at
//! runtime (the wire format is the hand-rolled `irec_wire` codec). With no access to
//! crates.io these derives expand to nothing, keeping the annotations compiling until
//! the real dependency can be restored.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
