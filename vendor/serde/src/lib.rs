//! Offline vendored shim for the `serde` facade crate.
//!
//! See `vendor/serde_derive` for the rationale. This crate provides the trait names and
//! re-exports the no-op derive macros so `use serde::{Serialize, Deserialize}` and
//! `#[derive(Serialize, Deserialize)]` both compile unchanged. The traits carry no
//! methods because nothing in the workspace serializes through serde at runtime.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
