//! Offline vendored shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors the
//! subset of the rand 0.8 API it uses: `StdRng::seed_from_u64`, `Rng::gen_range` over
//! integer/float ranges, and `SliceRandom::{shuffle, choose}`. The generator is a
//! SplitMix64 core — statistically fine for synthetic-topology generation and
//! benchmark workloads, deterministic for a given seed, and dependency-free. Sampling
//! uses simple modulo/scale reduction; the tiny bias is irrelevant for simulation
//! workloads (this shim is not for cryptographic use).

/// Low-level 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators constructible from a seed (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                // Wrapping arithmetic: signed starts sign-extend to huge u128 values,
                // but subtraction modulo 2^128 still yields the correct span.
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(draw) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        // 53 uniform mantissa bits -> [0, 1), then scale into the range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        self.start + (self.end - self.start) * unit
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood): full-period 64-bit mixer.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq`).

    use super::{Rng, RngCore};

    /// Random operations on slices (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&v));
            let f = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&f));
            let neg = rng.gen_range(-60.0..60.0);
            assert!((-60.0..60.0).contains(&neg));
        }
    }

    #[test]
    fn signed_ranges_crossing_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut saw_neg, mut saw_pos) = (false, false);
        for _ in 0..1000 {
            let v = rng.gen_range(-60i64..=60);
            assert!((-60..=60).contains(&v));
            saw_neg |= v < 0;
            saw_pos |= v > 0;
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
        assert!(saw_neg && saw_pos, "both signs should appear");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
