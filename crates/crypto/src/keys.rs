//! Per-AS key material and the shared key registry ("simulated control-plane PKI").
//!
//! SCION's control-plane PKI lets every AS verify every other AS's PCB signatures. For the
//! purposes of this reproduction we model that trust infrastructure as a registry mapping
//! each AS to a symmetric signing key; all control services hold a handle to the registry
//! and can therefore verify any hop signature. The accept/reject behaviour (and the cost
//! being dominated by hashing the signed payload) matches what the paper's design needs.

use crate::hash::sha256;
use irec_types::AsId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Signing key of a single AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsKey {
    /// The AS this key belongs to.
    pub asn: AsId,
    /// Symmetric key bytes.
    pub key: [u8; 32],
}

impl AsKey {
    /// Deterministically derives the key for `asn` from a registry seed.
    ///
    /// Determinism keeps simulations reproducible; the derivation is still collision-free
    /// across ASes because the AS number is part of the hashed material.
    pub fn derive(seed: u64, asn: AsId) -> Self {
        let mut material = Vec::with_capacity(24);
        material.extend_from_slice(b"irec-as-key");
        material.extend_from_slice(&seed.to_be_bytes());
        material.extend_from_slice(&asn.value().to_be_bytes());
        let digest = sha256(&material);
        AsKey {
            asn,
            key: *digest.as_bytes(),
        }
    }
}

/// Shared registry of per-AS signing keys.
///
/// Cloning the registry is cheap (it is an `Arc` internally); every control-plane component
/// of the simulation holds a clone.
#[derive(Debug, Clone, Default)]
pub struct KeyRegistry {
    inner: Arc<RwLock<RegistryInner>>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    seed: u64,
    keys: HashMap<AsId, AsKey>,
}

impl KeyRegistry {
    /// Creates an empty registry with the given derivation seed.
    pub fn new(seed: u64) -> Self {
        KeyRegistry {
            inner: Arc::new(RwLock::new(RegistryInner {
                seed,
                keys: HashMap::new(),
            })),
        }
    }

    /// Creates a registry pre-populated with keys for ASes `0..count`.
    pub fn with_ases(seed: u64, count: u64) -> Self {
        let registry = Self::new(seed);
        {
            let mut inner = registry.inner.write();
            for i in 0..count {
                let asn = AsId(i);
                inner.keys.insert(asn, AsKey::derive(seed, asn));
            }
        }
        registry
    }

    /// Registers (or re-derives) the key for `asn` and returns it.
    pub fn register(&self, asn: AsId) -> AsKey {
        let mut inner = self.inner.write();
        let seed = inner.seed;
        inner
            .keys
            .entry(asn)
            .or_insert_with(|| AsKey::derive(seed, asn))
            .clone()
    }

    /// Looks up the key for `asn`, registering it lazily if missing.
    ///
    /// Lazy registration models the fact that in the real system any AS participating in the
    /// control plane has a verifiable certificate chain.
    pub fn key_for(&self, asn: AsId) -> AsKey {
        {
            let inner = self.inner.read();
            if let Some(k) = inner.keys.get(&asn) {
                return k.clone();
            }
        }
        self.register(asn)
    }

    /// Returns the key for `asn` only if it has been registered explicitly.
    pub fn existing_key_for(&self, asn: AsId) -> Option<AsKey> {
        self.inner.read().keys.get(&asn).cloned()
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.inner.read().keys.len()
    }

    /// Whether no AS is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_distinct() {
        let a1 = AsKey::derive(42, AsId(1));
        let a1_again = AsKey::derive(42, AsId(1));
        let a2 = AsKey::derive(42, AsId(2));
        let a1_other_seed = AsKey::derive(43, AsId(1));
        assert_eq!(a1, a1_again);
        assert_ne!(a1.key, a2.key);
        assert_ne!(a1.key, a1_other_seed.key);
    }

    #[test]
    fn registry_prepopulation() {
        let reg = KeyRegistry::with_ases(7, 10);
        assert_eq!(reg.len(), 10);
        assert!(!reg.is_empty());
        assert!(reg.existing_key_for(AsId(9)).is_some());
        assert!(reg.existing_key_for(AsId(10)).is_none());
    }

    #[test]
    fn lazy_registration() {
        let reg = KeyRegistry::new(1);
        assert!(reg.is_empty());
        let k = reg.key_for(AsId(55));
        assert_eq!(k.asn, AsId(55));
        assert_eq!(reg.len(), 1);
        // Subsequent lookups return the same key.
        assert_eq!(reg.key_for(AsId(55)), k);
    }

    #[test]
    fn clones_share_state() {
        let reg = KeyRegistry::new(1);
        let clone = reg.clone();
        reg.register(AsId(3));
        assert!(clone.existing_key_for(AsId(3)).is_some());
    }

    #[test]
    fn register_is_idempotent() {
        let reg = KeyRegistry::new(9);
        let k1 = reg.register(AsId(4));
        let k2 = reg.register(AsId(4));
        assert_eq!(k1, k2);
        assert_eq!(reg.len(), 1);
    }
}
