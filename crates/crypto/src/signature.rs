//! Hop-entry signatures.
//!
//! In SCION/IREC every AS signs the hop information it appends to a PCB, and the origin AS's
//! signature additionally covers the on-demand algorithm hash (§V-C of the paper). This
//! module provides [`Signer`]/[`Verifier`] handles bound to a [`KeyRegistry`], producing
//! HMAC-SHA-256 [`Signature`]s over arbitrary byte strings.

use crate::hash::{Digest, DIGEST_LEN};
use crate::hmac::hmac_sha256;
use crate::keys::KeyRegistry;
use core::fmt;
use irec_types::{AsId, IrecError, Result};

/// A signature over a byte string, attributable to an AS.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// The AS that produced the signature.
    pub signer: AsId,
    /// The MAC tag.
    pub tag: Digest,
}

impl Signature {
    /// A placeholder signature (all-zero tag) used by unsigned test fixtures.
    pub fn placeholder(signer: AsId) -> Self {
        Signature {
            signer,
            tag: Digest::ZERO,
        }
    }

    /// Serialized length of a signature on the wire (8-byte AS + tag).
    pub const WIRE_LEN: usize = 8 + DIGEST_LEN;
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({}, {})",
            self.signer,
            &self.tag.to_hex()[..12]
        )
    }
}

/// Signs byte strings on behalf of one AS.
#[derive(Clone)]
pub struct Signer {
    asn: AsId,
    registry: KeyRegistry,
}

impl Signer {
    /// Creates a signer for `asn` using keys from `registry`.
    pub fn new(asn: AsId, registry: KeyRegistry) -> Self {
        Signer { asn, registry }
    }

    /// The AS this signer signs for.
    pub fn asn(&self) -> AsId {
        self.asn
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let key = self.registry.key_for(self.asn);
        Signature {
            signer: self.asn,
            tag: hmac_sha256(&key.key, message),
        }
    }
}

/// Verifies signatures from any registered AS.
#[derive(Clone)]
pub struct Verifier {
    registry: KeyRegistry,
}

impl Verifier {
    /// Creates a verifier backed by `registry`.
    pub fn new(registry: KeyRegistry) -> Self {
        Verifier { registry }
    }

    /// Verifies that `signature` is a valid signature by `signature.signer` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> Result<()> {
        let key = self.registry.key_for(signature.signer);
        let expected = hmac_sha256(&key.key, message);
        if expected == signature.tag {
            Ok(())
        } else {
            Err(IrecError::verification(format!(
                "invalid signature from {}",
                signature.signer
            )))
        }
    }

    /// Verifies and additionally checks the claimed signer.
    pub fn verify_from(
        &self,
        expected_signer: AsId,
        message: &[u8],
        signature: &Signature,
    ) -> Result<()> {
        if signature.signer != expected_signer {
            return Err(IrecError::verification(format!(
                "signature claims {} but hop belongs to {}",
                signature.signer, expected_signer
            )));
        }
        self.verify(message, signature)
    }
}

/// One-shot convenience: sign `message` as `asn` with keys from `registry`.
pub fn sign(registry: &KeyRegistry, asn: AsId, message: &[u8]) -> Signature {
    Signer::new(asn, registry.clone()).sign(message)
}

/// One-shot convenience: verify `signature` over `message` with keys from `registry`.
pub fn verify(registry: &KeyRegistry, message: &[u8], signature: &Signature) -> Result<()> {
    Verifier::new(registry.clone()).verify(message, signature)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn registry() -> KeyRegistry {
        KeyRegistry::with_ases(2024, 16)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let reg = registry();
        let sig = sign(&reg, AsId(3), b"hop entry bytes");
        assert!(verify(&reg, b"hop entry bytes", &sig).is_ok());
    }

    #[test]
    fn tampered_message_fails() {
        let reg = registry();
        let sig = sign(&reg, AsId(3), b"hop entry bytes");
        let err = verify(&reg, b"hop entry bytez", &sig).unwrap_err();
        assert_eq!(err.category(), "verification");
    }

    #[test]
    fn wrong_claimed_signer_fails() {
        let reg = registry();
        let mut sig = sign(&reg, AsId(3), b"msg");
        sig.signer = AsId(4);
        assert!(verify(&reg, b"msg", &sig).is_err());
    }

    #[test]
    fn verify_from_checks_identity() {
        let reg = registry();
        let verifier = Verifier::new(reg.clone());
        let sig = sign(&reg, AsId(5), b"msg");
        assert!(verifier.verify_from(AsId(5), b"msg", &sig).is_ok());
        assert!(verifier.verify_from(AsId(6), b"msg", &sig).is_err());
    }

    #[test]
    fn placeholder_signature_does_not_verify() {
        let reg = registry();
        let sig = Signature::placeholder(AsId(1));
        assert!(verify(&reg, b"anything", &sig).is_err());
    }

    #[test]
    fn signer_reports_its_as() {
        let reg = registry();
        let signer = Signer::new(AsId(7), reg);
        assert_eq!(signer.asn(), AsId(7));
        assert_eq!(signer.sign(b"x").signer, AsId(7));
    }

    #[test]
    fn signatures_differ_across_ases() {
        let reg = registry();
        let s1 = sign(&reg, AsId(1), b"same message");
        let s2 = sign(&reg, AsId(2), b"same message");
        assert_ne!(s1.tag, s2.tag);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_messages(msg in proptest::collection::vec(any::<u8>(), 0..512),
                                             asn in 0u64..64) {
            let reg = KeyRegistry::with_ases(1, 64);
            let sig = sign(&reg, AsId(asn), &msg);
            prop_assert!(verify(&reg, &msg, &sig).is_ok());
        }

        #[test]
        fn prop_bitflip_breaks_signature(msg in proptest::collection::vec(any::<u8>(), 1..256),
                                         flip in 0usize..256) {
            let reg = KeyRegistry::with_ases(1, 4);
            let sig = sign(&reg, AsId(0), &msg);
            let mut tampered = msg.clone();
            let idx = flip % tampered.len();
            tampered[idx] ^= 0x80;
            prop_assert!(verify(&reg, &tampered, &sig).is_err());
        }
    }
}
