//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Used for (i) hashing on-demand algorithm code so its identity can be pinned inside signed
//! PCBs, (ii) deduplicating PCBs in the egress database (the paper stores "only their
//! hashes" to reduce memory), and (iii) as the compression function of HMAC-SHA-256.

use core::fmt;

/// Length of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// A SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest; useful as a placeholder in tests.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Returns the first 8 bytes of the digest as a big-endian u64 (a convenient short id).
    pub fn short(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has at least 8 bytes"))
    }

    /// Hex representation of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a digest from a 64-character hex string.
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", &self.to_hex()[..16])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube roots of the
/// first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash values (first 32 bits of the fractional parts of the square roots of the
/// first 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// An incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Bytes buffered until a full 64-byte block is available.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a new hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Feeds `data` into the hasher.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Fill the partial buffer first.
        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Process full blocks directly from the input.
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }

        // Buffer the tail.
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
    }

    /// Finalizes the hash and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_no_len(&pad[..pad_len + 8]);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Like `update` but without counting towards the message length (used for padding).
    fn update_no_len(&mut self, data: &[u8]) {
        let saved = self.total_len;
        self.update(data);
        self.total_len = saved;
    }

    /// The SHA-256 compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk is 4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // FIPS 180-4 / NIST test vectors.
    #[test]
    fn empty_string_vector() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn long_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            sha256(b"The quick brown fox jumps over the lazy dog").to_hex(),
            "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn short_id_is_prefix() {
        let d = sha256(b"short");
        let expected = u64::from_be_bytes(d.0[..8].try_into().unwrap());
        assert_eq!(d.short(), expected);
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(sha256(b"a"), sha256(b"b"));
        assert_ne!(sha256(b""), sha256(b"\0"));
    }

    proptest! {
        #[test]
        fn prop_incremental_matches_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                            split in 0usize..2048) {
            let oneshot = sha256(&data);
            let split = split.min(data.len());
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), oneshot);
        }

        #[test]
        fn prop_digest_hex_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let d = sha256(&data);
            prop_assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        }

        #[test]
        fn prop_length_extension_padding_boundaries(len in 0usize..200) {
            // Exercise lengths around the 55/56/64-byte padding boundaries.
            let data = vec![0xAAu8; len];
            let d1 = sha256(&data);
            let mut h = Sha256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            prop_assert_eq!(h.finalize(), d1);
        }
    }
}
