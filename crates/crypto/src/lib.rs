//! # irec-crypto
//!
//! Cryptographic primitives used by the IREC reproduction.
//!
//! The paper relies on two cryptographic mechanisms:
//!
//! 1. every AS **signs its hop entry** in a PCB, so downstream ASes can verify that the path
//!    information was not forged (inherited from SCION's control-plane PKI), and
//! 2. on-demand routing embeds the **hash of the algorithm implementation** in the PCB; a
//!    RAC fetches the executable from the origin AS and verifies that its hash matches
//!    before executing it (§V-C), with the hash integrity protected by the origin signature.
//!
//! A full X.509-style control-plane PKI is out of scope of the paper's contribution, and a
//! public-key implementation from scratch would not change any measured behaviour. This
//! crate therefore substitutes signatures with **HMAC-SHA-256 under per-AS keys** managed by
//! a shared [`KeyRegistry`] (a "simulated PKI"): signing and verification have the same
//! accept/reject semantics and a comparable (hash-dominated) cost profile. SHA-256 and HMAC
//! are implemented from scratch (FIPS 180-4 / RFC 2104) and validated against published test
//! vectors.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hash;
pub mod hmac;
pub mod keys;
pub mod signature;

pub use hash::{sha256, Digest, Sha256, DIGEST_LEN};
pub use hmac::{hmac_sha256, HmacSha256};
pub use keys::{AsKey, KeyRegistry};
pub use signature::{sign, verify, Signature, Signer, Verifier};
