//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1), built on the from-scratch SHA-256.

use crate::hash::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// An incremental HMAC-SHA-256 computation.
pub struct HmacSha256 {
    inner: Sha256,
    /// Key XORed with `OPAD`, kept for the outer hash.
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates a new MAC instance keyed with `key`.
    ///
    /// Keys longer than the block size are first hashed, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let hashed = crate::hash::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(hashed.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut inner_key = [0u8; BLOCK_LEN];
        let mut outer_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            inner_key[i] = key_block[i] ^ IPAD;
            outer_key[i] = key_block[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&inner_key);
        HmacSha256 { inner, outer_key }
    }

    /// Feeds message data into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finalizes the MAC and returns the tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // RFC 4231 test vectors for HMAC-SHA-256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let data = b"Hi There";
        assert_eq!(
            hmac_sha256(&key, data).to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let key = b"Jefe";
        let data = b"what do ya want for nothing?";
        assert_eq!(
            hmac_sha256(key, data).to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            hmac_sha256(&key, &data).to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25u8).collect();
        let data = [0xcdu8; 50];
        assert_eq!(
            hmac_sha256(&key, &data).to_hex(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let data = b"Test Using Larger Than Block-Size Key - Hash Key First";
        assert_eq!(
            hmac_sha256(&key, data).to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        assert_eq!(
            hmac_sha256(&key, data).to_hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"secret key";
        let data = b"a somewhat longer message split into pieces";
        let oneshot = hmac_sha256(key, data);
        let mut mac = HmacSha256::new(key);
        mac.update(&data[..10]);
        mac.update(&data[10..]);
        assert_eq!(mac.finalize(), oneshot);
    }

    #[test]
    fn different_keys_give_different_tags() {
        let data = b"message";
        assert_ne!(hmac_sha256(b"key-a", data), hmac_sha256(b"key-b", data));
    }

    proptest! {
        #[test]
        fn prop_incremental_matches_oneshot(key in proptest::collection::vec(any::<u8>(), 0..128),
                                            data in proptest::collection::vec(any::<u8>(), 0..512),
                                            split in 0usize..512) {
            let oneshot = hmac_sha256(&key, &data);
            let split = split.min(data.len());
            let mut mac = HmacSha256::new(&key);
            mac.update(&data[..split]);
            mac.update(&data[split..]);
            prop_assert_eq!(mac.finalize(), oneshot);
        }

        #[test]
        fn prop_tag_depends_on_message(key in proptest::collection::vec(any::<u8>(), 1..64),
                                       data in proptest::collection::vec(any::<u8>(), 1..256),
                                       flip in 0usize..256) {
            let flip = flip % data.len();
            let mut tampered = data.clone();
            tampered[flip] ^= 0x01;
            prop_assert_ne!(hmac_sha256(&key, &data), hmac_sha256(&key, &tampered));
        }
    }
}
