//! Property-based suite for the deterministic event queue the delivery plane drains:
//! pop order is exactly `(at, seq)` lexicographic — earliest delivery time first, FIFO
//! (insertion order) among equal times — for any schedule, and `pop_until` returns the
//! same prefix a full drain would.

use irec_core::PcbMessage;
use irec_pcb::{Pcb, PcbExtensions};
use irec_sim::{Event, EventQueue};
use irec_types::{AsId, IfId, SimDuration, SimTime};
use proptest::prelude::*;

/// Event whose payload carries its insertion index (as the origin AS id), so pop order can
/// be checked against the schedule.
fn tagged_event(index: u64) -> Event {
    Event::DeliverPcb(PcbMessage {
        from_as: AsId(index + 1),
        from_if: IfId(1),
        to_as: AsId(2),
        to_if: IfId(1),
        pcb: Pcb::originate(
            AsId(index + 1),
            index,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(1),
            PcbExtensions::none(),
        ),
    })
}

fn index_of(event: &Event) -> u64 {
    match event {
        Event::DeliverPcb(m) => m.from_as.value() - 1,
        Event::DeliverPullReturn(r) => r.from_as.value() - 1,
    }
}

proptest! {
    /// Popping everything yields the stable sort of the schedule by delivery time: `(at,
    /// seq)` lexicographic, where `seq` is the insertion index.
    #[test]
    fn pop_order_is_at_seq_lexicographic(times in proptest::collection::vec(0u64..50, 1..64)) {
        let mut queue = EventQueue::new();
        for (index, at) in times.iter().enumerate() {
            queue.schedule(SimTime::from_micros(*at), tagged_event(index as u64));
        }
        prop_assert_eq!(queue.len(), times.len());

        let mut expected: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(index, at)| (*at, index as u64))
            .collect();
        expected.sort(); // lexicographic (at, seq) — a stable sort by `at`

        let mut popped = Vec::new();
        let mut last: Option<(SimTime, u64)> = None;
        while let Some((at, event)) = queue.pop() {
            let index = index_of(&event);
            // Each popped entry is >= its predecessor in (at, seq) order.
            if let Some((prev_at, prev_index)) = last {
                prop_assert!((prev_at, prev_index) < (at, index));
            }
            last = Some((at, index));
            popped.push((at.as_micros(), index));
        }
        prop_assert_eq!(popped, expected);
        prop_assert!(queue.is_empty());
    }

    /// `pop_until(horizon)` returns exactly the events due at or before the horizon, in the
    /// same order a full drain would, and leaves the rest intact.
    #[test]
    fn pop_until_is_an_order_preserving_prefix(
        times in proptest::collection::vec(0u64..50, 1..64),
        horizon in 0u64..60,
    ) {
        let schedule = |queue: &mut EventQueue| {
            for (index, at) in times.iter().enumerate() {
                queue.schedule(SimTime::from_micros(*at), tagged_event(index as u64));
            }
        };
        let mut full = EventQueue::new();
        schedule(&mut full);
        let mut drained = Vec::new();
        while let Some(entry) = full.pop() {
            drained.push(entry);
        }

        let mut bounded = EventQueue::new();
        schedule(&mut bounded);
        let horizon = SimTime::from_micros(horizon);
        let mut before = Vec::new();
        while let Some(entry) = bounded.pop_until(horizon) {
            prop_assert!(entry.0 <= horizon);
            before.push(entry);
        }
        let due: Vec<_> = drained.iter().filter(|(at, _)| *at <= horizon).collect();
        prop_assert_eq!(before.len(), due.len());
        for (a, b) in before.iter().zip(due) {
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(index_of(&a.1), index_of(&b.1));
        }
        // What remains is everything after the horizon, still in order.
        prop_assert_eq!(bounded.len(), times.len() - before.len());
        if let Some(next) = bounded.next_time() {
            prop_assert!(next > horizon);
        }
    }
}
