//! The pull-based disjointness (PD) workflow of §VIII-B.
//!
//! "The algorithm allows an AS to iteratively construct a set of link-disjoint paths to any
//! target AS by starting from a non-empty set of paths to the target AS, already discovered
//! by other algorithms; we use HD in our setup. In each iteration, the AS originates
//! on-demand pull-based PCBs, specifying the target AS and a new algorithm that avoids PCB
//! propagation on links in the set of paths to the target AS. When some of these PCBs
//! ultimately arrive at the target AS, it returns them to the origin AS, which only adds the
//! first-received PCB of the iteration to its set and starts the next iteration."

use crate::simulation::Simulation;
use irec_algorithms::disjoint::pd_round_program;
use irec_core::OriginationSpec;
use irec_metrics::RegisteredPath;
use irec_pcb::PcbExtensions;
use irec_types::{AlgorithmId, AsId, IfId, Result};
use std::collections::HashSet;

/// The outcome of a PD workflow run.
#[derive(Debug, Clone, Default)]
pub struct PdResult {
    /// The accumulated set of (approximately link-disjoint) paths from the origin to the
    /// target, in discovery order. Seed paths (from HD) come first.
    pub paths: Vec<RegisteredPath>,
    /// Number of pull iterations executed.
    pub iterations: usize,
    /// Iterations that discovered no new path (the avoid set exhausted the topology).
    pub empty_iterations: usize,
}

impl PdResult {
    /// The links covered by the discovered path set.
    pub fn covered_links(&self) -> HashSet<(AsId, IfId)> {
        self.paths
            .iter()
            .flat_map(|p| p.links.iter().copied())
            .collect()
    }
}

/// Drives the iterative PD workflow for one (origin, target) pair on top of a simulation.
pub struct PdWorkflow {
    origin: AsId,
    target: AsId,
    /// Desired number of disjoint paths (20 in the paper's setup).
    max_paths: usize,
    /// Beaconing rounds to run per iteration (enough for the pull beacons to reach the target
    /// and return).
    rounds_per_iteration: usize,
    /// Stop after this many iterations without progress.
    max_empty_iterations: usize,
    next_algorithm_id: u64,
}

impl PdWorkflow {
    /// Creates a workflow for discovering up to `max_paths` disjoint paths from `origin` to
    /// `target`.
    pub fn new(origin: AsId, target: AsId, max_paths: usize) -> Self {
        PdWorkflow {
            origin,
            target,
            max_paths,
            rounds_per_iteration: 6,
            max_empty_iterations: 2,
            next_algorithm_id: 1_000,
        }
    }

    /// Overrides the number of beaconing rounds run per pull iteration.
    #[must_use]
    pub fn with_rounds_per_iteration(mut self, rounds: usize) -> Self {
        self.rounds_per_iteration = rounds.max(1);
        self
    }

    /// Runs the workflow: seeds from the origin's HD paths to the target, then iterates
    /// on-demand + pull-based rounds that avoid all links discovered so far.
    pub fn run(&mut self, sim: &mut Simulation) -> Result<PdResult> {
        let mut result = PdResult::default();
        let mut avoid: HashSet<(AsId, IfId)> = HashSet::new();

        // Seed with the HD paths already registered at the origin (paper: "starting from a
        // non-empty set of paths ... discovered by other algorithms; we use HD").
        let seeds: Vec<RegisteredPath> = sim
            .registered_paths_by("HD")
            .into_iter()
            .filter(|p| p.holder == self.origin && p.origin == self.target)
            .collect();
        for seed in seeds.into_iter().take(self.max_paths) {
            avoid.extend(seed.links.iter().copied());
            result.paths.push(seed);
        }

        let mut consecutive_empty = 0usize;
        while result.paths.len() < self.max_paths && consecutive_empty < self.max_empty_iterations {
            result.iterations += 1;
            let discovered_before = self.pd_paths_at_origin(sim).len();

            // Publish the per-iteration avoidance algorithm and originate on-demand,
            // pull-based beacons on every interface of the origin.
            let program = pd_round_program(avoid.iter().copied(), 20);
            let algorithm_id = AlgorithmId(self.next_algorithm_id);
            self.next_algorithm_id += 1;
            let reference = {
                let node = sim.node(self.origin)?;
                node.publish_algorithm(algorithm_id, &program)
            };
            let interfaces: Vec<IfId> = sim
                .topology()
                .as_node(self.origin)?
                .interfaces
                .keys()
                .copied()
                .collect();
            {
                let node = sim.node_mut(self.origin)?;
                node.clear_extra_originations();
                node.add_origination(
                    OriginationSpec::plain(interfaces).with_extensions(
                        PcbExtensions::none()
                            .with_target(self.target)
                            .with_algorithm(reference),
                    ),
                );
            }

            sim.run_rounds(self.rounds_per_iteration)?;

            // Collect the pull returns registered during this iteration; keep only the first
            // (lowest-latency among the new ones, deterministically) as the iteration's
            // contribution.
            let mut new_paths: Vec<RegisteredPath> = self
                .pd_paths_at_origin(sim)
                .into_iter()
                .skip(discovered_before)
                .filter(|p| !p.links.iter().any(|l| avoid.contains(l)))
                .collect();
            new_paths.sort_by_key(|p| p.metrics.latency);

            if let Some(first) = new_paths.into_iter().next() {
                avoid.extend(first.links.iter().copied());
                result.paths.push(first);
                consecutive_empty = 0;
            } else {
                consecutive_empty += 1;
                result.empty_iterations += 1;
            }
        }

        // Stop originating pull beacons once done.
        sim.node_mut(self.origin)?.clear_extra_originations();
        Ok(result)
    }

    fn pd_paths_at_origin(&self, sim: &Simulation) -> Vec<RegisteredPath> {
        sim.registered_paths_by("PD")
            .into_iter()
            .filter(|p| p.holder == self.origin && p.origin == self.target)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimulationConfig;
    use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
    use irec_topology::builder::{figure1, figure1_topology};
    use std::sync::Arc;

    fn sim_with_hd_and_on_demand() -> Simulation {
        let topology = Arc::new(figure1_topology());
        Simulation::new(topology, SimulationConfig::default(), |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![
                    RacConfig::static_rac("HD", "HD"),
                    RacConfig::on_demand_rac("on-demand"),
                ])
        })
        .unwrap()
    }

    #[test]
    fn pd_workflow_discovers_disjoint_paths_on_figure1() {
        let mut sim = sim_with_hd_and_on_demand();
        // Warm up so HD has seeded paths from Src to Dst.
        sim.run_rounds(6).unwrap();

        let mut workflow =
            PdWorkflow::new(figure1::SRC, figure1::DST, 3).with_rounds_per_iteration(4);
        let result = workflow.run(&mut sim).unwrap();

        assert!(
            !result.paths.is_empty(),
            "PD must at least keep the HD seeds"
        );
        // Figure 1 has two fully link-disjoint Src->Dst routes (via X and via Y); PD should
        // find at least two mutually disjoint paths.
        let tlf = irec_metrics::tlf::min_links_to_disconnect(
            &result
                .paths
                .iter()
                .map(|p| p.links.clone())
                .collect::<Vec<_>>(),
        );
        assert!(
            tlf >= 2,
            "expected at least 2 disjoint paths, TLF was {tlf}"
        );
    }

    #[test]
    fn pull_based_on_demand_beacons_return_to_the_origin() {
        // Exercise the full pull + on-demand pipeline without HD seeds: the source
        // originates targeted beacons carrying an IRVM algorithm; every on-path AS runs it;
        // the target returns matching beacons; the source registers them as PD paths.
        let topology = Arc::new(figure1_topology());
        let mut sim = Simulation::new(topology, SimulationConfig::default(), |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![RacConfig::on_demand_rac("on-demand")])
        })
        .unwrap();
        let program = pd_round_program([], 20);
        let reference = sim
            .node(figure1::SRC)
            .unwrap()
            .publish_algorithm(AlgorithmId(1), &program);
        let interfaces: Vec<IfId> = sim
            .topology()
            .as_node(figure1::SRC)
            .unwrap()
            .interfaces
            .keys()
            .copied()
            .collect();
        sim.node_mut(figure1::SRC).unwrap().add_origination(
            OriginationSpec::plain(interfaces).with_extensions(
                PcbExtensions::none()
                    .with_target(figure1::DST)
                    .with_algorithm(reference),
            ),
        );
        sim.run_rounds(6).unwrap();
        let pd_paths: Vec<_> = sim
            .registered_paths_by("PD")
            .into_iter()
            .filter(|p| p.holder == figure1::SRC && p.origin == figure1::DST)
            .collect();
        assert!(
            !pd_paths.is_empty(),
            "pull-based beacons must be returned and registered at the origin"
        );
        // Pull beacons also show up in the pull-overhead counter.
        assert!(sim.overhead_pull().total() > 0);
    }

    #[test]
    fn pd_workflow_terminates_when_no_more_disjoint_paths_exist() {
        let mut sim = sim_with_hd_and_on_demand();
        sim.run_rounds(6).unwrap();
        // Ask for far more paths than the topology can provide.
        let mut workflow =
            PdWorkflow::new(figure1::SRC, figure1::DST, 20).with_rounds_per_iteration(3);
        let result = workflow.run(&mut sim).unwrap();
        assert!(result.paths.len() < 20);
        assert!(
            result.empty_iterations >= 1,
            "must stop via empty iterations"
        );
        // All discovered paths connect the right pair.
        for p in &result.paths {
            assert_eq!(p.holder, figure1::SRC);
            assert_eq!(p.origin, figure1::DST);
        }
    }

    #[test]
    fn covered_links_union() {
        let result = PdResult {
            paths: vec![],
            iterations: 0,
            empty_iterations: 0,
        };
        assert!(result.covered_links().is_empty());
    }
}
