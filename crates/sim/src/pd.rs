//! The pull-based disjointness (PD) workflow of §VIII-B.
//!
//! "The algorithm allows an AS to iteratively construct a set of link-disjoint paths to any
//! target AS by starting from a non-empty set of paths to the target AS, already discovered
//! by other algorithms; we use HD in our setup. In each iteration, the AS originates
//! on-demand pull-based PCBs, specifying the target AS and a new algorithm that avoids PCB
//! propagation on links in the set of paths to the target AS. When some of these PCBs
//! ultimately arrive at the target AS, it returns them to the origin AS, which only adds the
//! first-received PCB of the iteration to its set and starts the next iteration."

use crate::simulation::Simulation;
use irec_algorithms::disjoint::pd_round_program;
use irec_core::OriginationSpec;
use irec_metrics::RegisteredPath;
use irec_pcb::PcbExtensions;
use irec_types::{AlgorithmId, AsId, IfId, Result};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// The outcome of a PD workflow run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PdResult {
    /// The accumulated set of (approximately link-disjoint) paths from the origin to the
    /// target, in discovery order. Seed paths (from HD) come first.
    pub paths: Vec<RegisteredPath>,
    /// Number of pull iterations executed.
    pub iterations: usize,
    /// Iterations that discovered no new path — because no returns arrived at all, or
    /// because every return duplicated an already-known path (the avoid set exhausted the
    /// topology either way).
    pub empty_iterations: usize,
}

impl PdResult {
    /// The links covered by the discovered path set.
    pub fn covered_links(&self) -> HashSet<(AsId, IfId)> {
        self.paths
            .iter()
            .flat_map(|p| p.links.iter().copied())
            .collect()
    }
}

/// Drives the iterative PD workflow for one (origin, target) pair on top of a simulation.
pub struct PdWorkflow {
    origin: AsId,
    target: AsId,
    /// Desired number of disjoint paths (20 in the paper's setup).
    max_paths: usize,
    /// Beaconing rounds to run per iteration (enough for the pull beacons to reach the target
    /// and return).
    rounds_per_iteration: usize,
    /// Stop after this many consecutive iterations without progress — iterations whose
    /// only returns duplicate already-known paths count just like zero-return iterations.
    max_empty_iterations: usize,
    next_algorithm_id: u64,
}

impl PdWorkflow {
    /// Creates a workflow for discovering up to `max_paths` disjoint paths from `origin` to
    /// `target`.
    pub fn new(origin: AsId, target: AsId, max_paths: usize) -> Self {
        PdWorkflow {
            origin,
            target,
            max_paths,
            rounds_per_iteration: 6,
            max_empty_iterations: 2,
            next_algorithm_id: 1_000,
        }
    }

    /// Overrides the number of beaconing rounds run per pull iteration.
    #[must_use]
    pub fn with_rounds_per_iteration(mut self, rounds: usize) -> Self {
        self.rounds_per_iteration = rounds.max(1);
        self
    }

    /// Overrides the first algorithm id this workflow publishes its per-iteration
    /// avoidance programs under. Workflows that may run concurrently — the PD campaign
    /// runs one per `(origin, target)` pair on cloned simulation snapshots that **share**
    /// the on-demand algorithm store — must use disjoint id ranges, or two workflows with
    /// the same origin would overwrite each other's published modules mid-flight.
    #[must_use]
    pub fn with_algorithm_id_base(mut self, base: u64) -> Self {
        self.next_algorithm_id = base;
        self
    }

    /// Runs the workflow: seeds from the origin's HD paths to the target, then iterates
    /// on-demand + pull-based rounds that avoid all links discovered so far.
    pub fn run(&mut self, sim: &mut Simulation) -> Result<PdResult> {
        let mut result = PdResult::default();
        let mut avoid: HashSet<(AsId, IfId)> = HashSet::new();

        // Seed with the HD paths already registered at the origin (paper: "starting from a
        // non-empty set of paths ... discovered by other algorithms; we use HD").
        let seeds: Vec<RegisteredPath> = sim
            .registered_paths_by("HD")
            .into_iter()
            .filter(|p| p.holder == self.origin && p.origin == self.target)
            .collect();
        for seed in seeds.into_iter().take(self.max_paths) {
            avoid.extend(seed.links.iter().copied());
            result.paths.push(seed);
        }

        // Paths already known by link sequence: the seeds plus everything a previous PD
        // run (or an overlapping campaign pair) already registered at the origin. An
        // iteration only makes progress when it yields a path *not* in this set — a
        // return that merely duplicates a known path counts as empty, exactly like a
        // zero-return iteration.
        let mut known: HashSet<Vec<(AsId, IfId)>> =
            result.paths.iter().map(|p| p.links.clone()).collect();
        for p in self.pd_paths_at_origin(sim)? {
            known.insert(p.links);
        }

        let mut consecutive_empty = 0usize;
        while result.paths.len() < self.max_paths && consecutive_empty < self.max_empty_iterations {
            result.iterations += 1;

            // Publish the per-iteration avoidance algorithm and originate on-demand,
            // pull-based beacons on every interface of the origin.
            let program = pd_round_program(avoid.iter().copied(), 20);
            let algorithm_id = AlgorithmId(self.next_algorithm_id);
            self.next_algorithm_id += 1;
            let reference = {
                let node = sim.node(self.origin)?;
                node.publish_algorithm(algorithm_id, &program)
            };
            let interfaces: Vec<IfId> = sim
                .topology()
                .as_node(self.origin)?
                .interfaces
                .keys()
                .copied()
                .collect();
            {
                let node = sim.node_mut(self.origin)?;
                node.clear_extra_originations();
                node.add_origination(
                    OriginationSpec::plain(interfaces).with_extensions(
                        PcbExtensions::none()
                            .with_target(self.target)
                            .with_algorithm(reference),
                    ),
                );
            }

            sim.run_rounds(self.rounds_per_iteration)?;

            // Harvest: among the paths now registered at the origin, keep the first
            // genuinely new one (lowest latency, deterministically) as the iteration's
            // contribution. Known link sequences — including re-registrations that only
            // refreshed an existing path — never count as progress.
            let candidates = self.pd_paths_at_origin(sim)?;
            let candidate_links: Vec<Vec<(AsId, IfId)>> =
                candidates.iter().map(|p| p.links.clone()).collect();
            let selected = first_new_path(candidates, &known, &avoid);
            // Everything observed this iteration is known from now on; a later iteration
            // re-delivering one of these paths must not be able to claim it as progress.
            known.extend(candidate_links);

            if let Some(first) = selected {
                avoid.extend(first.links.iter().copied());
                result.paths.push(first);
                consecutive_empty = 0;
            } else {
                consecutive_empty += 1;
                result.empty_iterations += 1;
            }
        }

        // Stop originating pull beacons once done.
        sim.node_mut(self.origin)?.clear_extra_originations();
        Ok(result)
    }

    /// The PD paths currently registered at the origin towards the target: a targeted
    /// single-shard query on the origin node's path service — not a sim-wide
    /// `registered_paths()` walk, which would clone every path of every node once per
    /// pull iteration. The per-group order matches what the sim-wide walk filtered down
    /// to, so the harvest sees candidates in the identical sequence.
    fn pd_paths_at_origin(&self, sim: &Simulation) -> Result<Vec<RegisteredPath>> {
        Ok(sim
            .node(self.origin)?
            .path_service()
            .paths_to_by(self.target, "PD")
            .into_iter()
            .map(|p| RegisteredPath {
                holder: self.origin,
                origin: p.destination,
                algorithm: p.algorithm,
                group: p.group,
                origin_interface: p.destination_interface,
                holder_interface: p.local_interface,
                metrics: p.metrics,
                links: p.links,
            })
            .collect())
    }
}

/// The harvest decision of one PD iteration: the lowest-latency candidate whose link
/// sequence is neither already known nor touching the avoid set. `None` means the
/// iteration made no progress — including when returns arrived but all of them duplicated
/// already-known paths, which the old positional (`skip(count)`) harvest miscounted as
/// progress whenever a duplicate registration shifted the registration order.
fn first_new_path(
    candidates: Vec<RegisteredPath>,
    known: &HashSet<Vec<(AsId, IfId)>>,
    avoid: &HashSet<(AsId, IfId)>,
) -> Option<RegisteredPath> {
    let mut fresh: Vec<RegisteredPath> = candidates
        .into_iter()
        .filter(|p| !known.contains(&p.links))
        .filter(|p| !p.links.iter().any(|l| avoid.contains(l)))
        .collect();
    fresh.sort_by_key(|p| p.metrics.latency);
    fresh.into_iter().next()
}

/// Hard cap on campaign workers, matching the other execution engines' caps.
pub const MAX_CAMPAIGN_WORKERS: usize = 64;

/// Everything one `(origin, target)` pair of a campaign produced.
#[derive(Debug, Clone)]
pub struct PdPairResult {
    /// The AS that ran the pull workflow.
    pub origin: AsId,
    /// The target AS disjoint paths were discovered towards.
    pub target: AsId,
    /// The workflow outcome (paths, iteration counts).
    pub result: PdResult,
    /// Non-zero per-interface-per-period pull-beacon overhead samples of the pair's run
    /// (the PD series of Fig. 8c).
    pub pull_overhead: Vec<u64>,
    /// Whether the pair was a self-pair (`origin == target`) and was short-circuited:
    /// no snapshot was taken and no pull iteration ran — there are no paths from an AS to
    /// itself to discover, and before the short-circuit such pairs burned a full snapshot
    /// plus `max_empty_iterations` rounds of pull traffic to conclude exactly that.
    pub self_pair: bool,
    /// Wall-clock time of the pair's run, snapshot setup included (feeds the fig8c
    /// per-pair throughput table; **not** part of the deterministic fingerprint).
    pub elapsed: Duration,
}

/// The Fig. 8 disjointness campaign: N independent `(origin, target)` pull workflows,
/// each on its own snapshot of a warmed-up base simulation, fanned out over an
/// engine-style scoped worker pool.
///
/// **Snapshots.** By default each pair runs on a copy-on-write
/// [`Simulation::snapshot_reachable_from`] of the base — O(shards) pointer copies at
/// setup, restricted to the origin's connected component, with shards materialized only
/// as the pair's own pull traffic touches them. [`PdCampaign::with_deep_clone`] switches
/// back to the full per-pair `Simulation::clone`; the two modes produce byte-identical
/// campaign output (pinned by `tests/pd_determinism.rs`), differing only in setup cost —
/// the `pd_snapshot_cost` benchmark tracks the gap.
///
/// **Determinism.** Pairs never share mutable state: each workflow owns a full
/// [`Simulation`] snapshot, and the only shared structure — the on-demand algorithm
/// store — is partitioned by giving every pair a disjoint algorithm-id range
/// ([`PdWorkflow::with_algorithm_id_base`]). Results land in per-pair slots and are
/// merged in pair order, so a run with any `parallelism` value is byte-identical to the
/// sequential pair-by-pair loop; errors surface deterministically (first failing pair in
/// pair order wins). `tests/pd_determinism.rs` and the CI determinism job enforce this
/// for `--pd-parallelism {1,4}` stacked with every other parallelism knob.
///
/// Self-pairs (`origin == target`) are short-circuited without taking a snapshot — their
/// [`PdPairResult::self_pair`] flag is set and their result is empty.
///
/// ```
/// use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
/// use irec_sim::{PdCampaign, Simulation, SimulationConfig};
/// use irec_topology::builder::{figure1, figure1_topology};
/// use std::sync::Arc;
///
/// // Warm a base simulation so HD has seeded paths for the workflows to start from.
/// let mut base = Simulation::new(
///     Arc::new(figure1_topology()),
///     SimulationConfig::default(),
///     |_| {
///         NodeConfig::default()
///             .with_policy(PropagationPolicy::All)
///             .with_racs(vec![
///                 RacConfig::static_rac("HD", "HD"),
///                 RacConfig::on_demand_rac("on-demand"),
///             ])
///     },
/// ).unwrap();
/// base.run_rounds(4).unwrap();
///
/// // Two pairs, two workers, one COW snapshot per pair; the base is never mutated.
/// let results = PdCampaign::new(
///     vec![(figure1::SRC, figure1::DST), (figure1::DST, figure1::SRC)],
///     4,
/// )
/// .with_rounds_per_iteration(3)
/// .with_parallelism(2)
/// .run(&base)
/// .unwrap();
/// assert_eq!(results.len(), 2);
/// assert!(results.iter().all(|r| !r.result.paths.is_empty()));
/// assert_eq!(base.rounds_run(), 4);
/// ```
pub struct PdCampaign {
    pairs: Vec<(AsId, AsId)>,
    max_paths: usize,
    rounds_per_iteration: usize,
    parallelism: usize,
    deep_clone: bool,
}

impl PdCampaign {
    /// Creates a campaign discovering up to `max_paths` disjoint paths for every pair.
    pub fn new(pairs: Vec<(AsId, AsId)>, max_paths: usize) -> Self {
        PdCampaign {
            pairs,
            max_paths,
            rounds_per_iteration: 6,
            parallelism: 1,
            deep_clone: false,
        }
    }

    /// Switches the per-pair snapshot strategy back to the deep `Simulation::clone`
    /// (`true`) instead of the default copy-on-write
    /// [`Simulation::snapshot_reachable_from`] (`false`). Campaign output is
    /// byte-identical in both modes; deep cloning only costs more setup time per pair.
    /// Kept as the reference implementation for the determinism suite and the
    /// `pd_snapshot_cost` benchmark.
    #[must_use]
    pub fn with_deep_clone(mut self, deep_clone: bool) -> Self {
        self.deep_clone = deep_clone;
        self
    }

    /// Overrides the number of beaconing rounds each workflow runs per pull iteration.
    #[must_use]
    pub fn with_rounds_per_iteration(mut self, rounds: usize) -> Self {
        self.rounds_per_iteration = rounds.max(1);
        self
    }

    /// Sets the campaign's worker count (clamped to `1..=`[`MAX_CAMPAIGN_WORKERS`]).
    /// `1` runs the pairs sequentially; the output is byte-identical either way.
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.clamp(1, MAX_CAMPAIGN_WORKERS);
        self
    }

    /// The campaign's `(origin, target)` pairs, in run order.
    pub fn pairs(&self) -> &[(AsId, AsId)] {
        &self.pairs
    }

    /// The algorithm-id range pair `index` publishes its per-iteration programs under.
    /// Ranges are disjoint across pairs (1M ids apiece — orders of magnitude beyond any
    /// plausible iteration count), which keeps concurrently-running workflows of the same
    /// origin from overwriting each other in the shared algorithm store.
    fn algorithm_id_base(index: usize) -> u64 {
        1_000 + index as u64 * 1_000_000
    }

    /// Runs every pair's workflow against its own snapshot of `base` and returns the
    /// results in pair order. `base` itself is never mutated.
    pub fn run(&self, base: &Simulation) -> Result<Vec<PdPairResult>> {
        let run_pair = |index: usize, origin: AsId, target: AsId| -> Result<PdPairResult> {
            let start = Instant::now();
            if origin == target {
                // There are no origin→origin paths to discover: without this
                // short-circuit a self-pair paid for a full snapshot and
                // `max_empty_iterations` iterations of pull traffic to itself before
                // concluding exactly that.
                return Ok(PdPairResult {
                    origin,
                    target,
                    result: PdResult::default(),
                    pull_overhead: Vec::new(),
                    self_pair: true,
                    elapsed: start.elapsed(),
                });
            }
            let mut sim = if self.deep_clone {
                base.clone()
            } else {
                base.snapshot_reachable_from(origin).into_simulation()
            };
            let mut workflow = PdWorkflow::new(origin, target, self.max_paths)
                .with_rounds_per_iteration(self.rounds_per_iteration)
                .with_algorithm_id_base(Self::algorithm_id_base(index));
            let result = workflow.run(&mut sim)?;
            Ok(PdPairResult {
                origin,
                target,
                result,
                pull_overhead: sim.overhead_pull().nonzero_samples(),
                self_pair: false,
                elapsed: start.elapsed(),
            })
        };

        let workers = self.parallelism.min(self.pairs.len()).max(1);
        if workers <= 1 {
            return self
                .pairs
                .iter()
                .enumerate()
                .map(|(index, &(origin, target))| run_pair(index, origin, target))
                .collect();
        }

        // Fan the pairs out over the shared work-stealing executor: an edgeless DAG with
        // one node per pair makes every pair immediately ready, and work stealing keeps
        // all workers busy even when pair runtimes are skewed (a long pull workflow no
        // longer starves the tail as the old strict claim-order cursor could). Results
        // land in slots indexed by pair, so the merge order is independent of scheduling.
        let mut dag = crate::dag::Dag::with_capacity(self.pairs.len());
        for _ in &self.pairs {
            dag.add_node();
        }
        let slots: Vec<Mutex<Option<Result<PdPairResult>>>> =
            self.pairs.iter().map(|_| Mutex::new(None)).collect();
        crate::dag::DagExecutor::new(workers).run(&dag, |index| {
            let (origin, target) = self.pairs[index];
            *slots[index].lock() = Some(run_pair(index, origin, target));
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every pair slot is filled once the scope joins")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimulationConfig;
    use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
    use irec_topology::builder::{figure1, figure1_topology};
    use std::sync::Arc;

    fn sim_with_hd_and_on_demand() -> Simulation {
        let topology = Arc::new(figure1_topology());
        Simulation::new(topology, SimulationConfig::default(), |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![
                    RacConfig::static_rac("HD", "HD"),
                    RacConfig::on_demand_rac("on-demand"),
                ])
        })
        .unwrap()
    }

    #[test]
    fn pd_workflow_discovers_disjoint_paths_on_figure1() {
        let mut sim = sim_with_hd_and_on_demand();
        // Warm up so HD has seeded paths from Src to Dst.
        sim.run_rounds(6).unwrap();

        let mut workflow =
            PdWorkflow::new(figure1::SRC, figure1::DST, 3).with_rounds_per_iteration(4);
        let result = workflow.run(&mut sim).unwrap();

        assert!(
            !result.paths.is_empty(),
            "PD must at least keep the HD seeds"
        );
        // Figure 1 has two fully link-disjoint Src->Dst routes (via X and via Y); PD should
        // find at least two mutually disjoint paths.
        let tlf = irec_metrics::tlf::min_links_to_disconnect(
            &result
                .paths
                .iter()
                .map(|p| p.links.clone())
                .collect::<Vec<_>>(),
        );
        assert!(
            tlf >= 2,
            "expected at least 2 disjoint paths, TLF was {tlf}"
        );
    }

    #[test]
    fn pull_based_on_demand_beacons_return_to_the_origin() {
        // Exercise the full pull + on-demand pipeline without HD seeds: the source
        // originates targeted beacons carrying an IRVM algorithm; every on-path AS runs it;
        // the target returns matching beacons; the source registers them as PD paths.
        let topology = Arc::new(figure1_topology());
        let mut sim = Simulation::new(topology, SimulationConfig::default(), |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![RacConfig::on_demand_rac("on-demand")])
        })
        .unwrap();
        let program = pd_round_program([], 20);
        let reference = sim
            .node(figure1::SRC)
            .unwrap()
            .publish_algorithm(AlgorithmId(1), &program);
        let interfaces: Vec<IfId> = sim
            .topology()
            .as_node(figure1::SRC)
            .unwrap()
            .interfaces
            .keys()
            .copied()
            .collect();
        sim.node_mut(figure1::SRC).unwrap().add_origination(
            OriginationSpec::plain(interfaces).with_extensions(
                PcbExtensions::none()
                    .with_target(figure1::DST)
                    .with_algorithm(reference),
            ),
        );
        sim.run_rounds(6).unwrap();
        let pd_paths: Vec<_> = sim
            .registered_paths_by("PD")
            .into_iter()
            .filter(|p| p.holder == figure1::SRC && p.origin == figure1::DST)
            .collect();
        assert!(
            !pd_paths.is_empty(),
            "pull-based beacons must be returned and registered at the origin"
        );
        // Pull beacons also show up in the pull-overhead counter.
        assert!(sim.overhead_pull().total() > 0);
    }

    #[test]
    fn pd_workflow_terminates_when_no_more_disjoint_paths_exist() {
        let mut sim = sim_with_hd_and_on_demand();
        sim.run_rounds(6).unwrap();
        // Ask for far more paths than the topology can provide.
        let mut workflow =
            PdWorkflow::new(figure1::SRC, figure1::DST, 20).with_rounds_per_iteration(3);
        let result = workflow.run(&mut sim).unwrap();
        assert!(result.paths.len() < 20);
        assert!(
            result.empty_iterations >= 1,
            "must stop via empty iterations"
        );
        // All discovered paths connect the right pair.
        for p in &result.paths {
            assert_eq!(p.holder, figure1::SRC);
            assert_eq!(p.origin, figure1::DST);
        }
    }

    #[test]
    fn covered_links_union() {
        let result = PdResult {
            paths: vec![],
            iterations: 0,
            empty_iterations: 0,
        };
        assert!(result.covered_links().is_empty());
    }

    fn harvest_path(latency_ms: u64, links: &[(u64, u32)]) -> RegisteredPath {
        RegisteredPath {
            holder: AsId(1),
            origin: AsId(9),
            algorithm: "PD".to_string(),
            group: irec_types::InterfaceGroupId::DEFAULT,
            origin_interface: IfId(1),
            holder_interface: IfId(2),
            metrics: irec_types::PathMetrics {
                latency: irec_types::Latency::from_millis(latency_ms),
                bandwidth: irec_types::Bandwidth::from_mbps(100),
                hops: links.len() as u32,
            },
            links: links.iter().map(|&(a, i)| (AsId(a), IfId(i))).collect(),
        }
    }

    /// Regression for the empty-iteration accounting edge: an iteration whose only
    /// returns duplicate already-known paths yields no progress — `first_new_path` must
    /// return `None` so the iteration counts toward `max_empty_iterations`.
    #[test]
    fn duplicate_only_returns_are_not_progress() {
        let known_path = harvest_path(10, &[(2, 1), (9, 3)]);
        let known: HashSet<Vec<(AsId, IfId)>> = [known_path.links.clone()].into();
        let avoid = HashSet::new();
        assert_eq!(
            first_new_path(vec![known_path.clone(), known_path], &known, &avoid),
            None
        );
    }

    /// Regression for the positional-skip bug the set-based harvest replaces: a fresh
    /// path must be found even when a duplicate registration shifted the registration
    /// order so that the fresh path sorts *before* the already-known ones (the old
    /// `skip(count)` harvest would skip the fresh path and resurrect a known one).
    #[test]
    fn fresh_path_is_found_regardless_of_registration_order() {
        let known_path = harvest_path(5, &[(2, 1), (9, 3)]);
        let fresh = harvest_path(20, &[(4, 2), (5, 1), (9, 7)]);
        let known: HashSet<Vec<(AsId, IfId)>> = [known_path.links.clone()].into();
        let avoid = HashSet::new();
        for candidates in [
            vec![fresh.clone(), known_path.clone()],
            vec![known_path.clone(), fresh.clone()],
        ] {
            assert_eq!(
                first_new_path(candidates, &known, &avoid),
                Some(fresh.clone())
            );
        }
        // A fresh link sequence touching the avoid set is still rejected.
        let avoid: HashSet<(AsId, IfId)> = [(AsId(4), IfId(2))].into();
        assert_eq!(first_new_path(vec![fresh], &known, &avoid), None);
    }

    /// End-to-end: a second workflow over an already-exhausted pair receives only
    /// duplicate returns, and every such iteration counts as empty.
    #[test]
    fn duplicate_only_iterations_count_toward_termination() {
        let mut sim = sim_with_hd_and_on_demand();
        sim.run_rounds(6).unwrap();
        let mut first =
            PdWorkflow::new(figure1::SRC, figure1::DST, 20).with_rounds_per_iteration(3);
        first.run(&mut sim).unwrap();

        // The topology is exhausted: the second workflow's pulls can only re-deliver
        // paths the first one already registered (a disjoint id range keeps its published
        // programs from clobbering the first workflow's modules in the shared store).
        let mut second = PdWorkflow::new(figure1::SRC, figure1::DST, 20)
            .with_rounds_per_iteration(3)
            .with_algorithm_id_base(500_000);
        let result = second.run(&mut sim).unwrap();
        assert!(
            result.empty_iterations >= 1,
            "duplicate-only iterations must count as empty"
        );
        assert_eq!(
            result.iterations, result.empty_iterations,
            "every iteration of the exhausted pair must be empty, got {result:?}"
        );
    }

    fn pair_fingerprint(results: &[PdPairResult]) -> Vec<(AsId, AsId, PdResult, Vec<u64>)> {
        results
            .iter()
            .map(|r| {
                (
                    r.origin,
                    r.target,
                    r.result.clone(),
                    r.pull_overhead.clone(),
                )
            })
            .collect()
    }

    #[test]
    fn campaign_is_byte_identical_across_worker_counts_and_leaves_base_untouched() {
        let mut base = sim_with_hd_and_on_demand();
        base.run_rounds(6).unwrap();
        let base_paths = base.registered_paths();
        let base_rounds = base.rounds_run();

        let pairs = vec![
            (figure1::SRC, figure1::DST),
            (figure1::DST, figure1::SRC),
            (figure1::SRC, figure1::DST), // a duplicate pair must also be safe
        ];
        // `max_paths` above the HD seed count, so the workflows actually iterate and the
        // comparison covers the pull pipeline, not just snapshot cloning.
        let sequential = PdCampaign::new(pairs.clone(), 6)
            .with_rounds_per_iteration(3)
            .run(&base)
            .unwrap();
        assert_eq!(sequential.len(), pairs.len());
        assert!(sequential.iter().any(|r| !r.result.paths.is_empty()));
        assert!(
            sequential
                .iter()
                .any(|r| r.result.iterations > 0 && !r.pull_overhead.is_empty()),
            "no pair ran a pull iteration — the campaign comparison would be vacuous"
        );

        for parallelism in [2usize, 4, 8] {
            let parallel = PdCampaign::new(pairs.clone(), 6)
                .with_rounds_per_iteration(3)
                .with_parallelism(parallelism)
                .run(&base)
                .unwrap();
            assert_eq!(
                pair_fingerprint(&parallel),
                pair_fingerprint(&sequential),
                "campaign diverged at parallelism {parallelism}"
            );
        }

        // The base simulation is a read-only template: no clock movement, no new paths.
        assert_eq!(base.rounds_run(), base_rounds);
        assert_eq!(base.registered_paths(), base_paths);
    }

    #[test]
    fn cow_and_deep_clone_campaigns_are_byte_identical() {
        let mut base = sim_with_hd_and_on_demand();
        base.run_rounds(6).unwrap();
        let pairs = vec![(figure1::SRC, figure1::DST), (figure1::DST, figure1::SRC)];
        for parallelism in [1usize, 4] {
            let cow = PdCampaign::new(pairs.clone(), 6)
                .with_rounds_per_iteration(3)
                .with_parallelism(parallelism)
                .run(&base)
                .unwrap();
            let deep = PdCampaign::new(pairs.clone(), 6)
                .with_rounds_per_iteration(3)
                .with_parallelism(parallelism)
                .with_deep_clone(true)
                .run(&base)
                .unwrap();
            assert_eq!(
                pair_fingerprint(&cow),
                pair_fingerprint(&deep),
                "COW and deep-clone campaigns diverged at parallelism {parallelism}"
            );
            assert!(cow.iter().any(|r| r.result.iterations > 0));
        }
    }

    /// Regression: self-pairs must be short-circuited with explicit accounting instead of
    /// burning a snapshot plus `max_empty_iterations` iterations of pull traffic.
    #[test]
    fn self_pairs_short_circuit_with_explicit_accounting() {
        let mut base = sim_with_hd_and_on_demand();
        base.run_rounds(6).unwrap();
        let results = PdCampaign::new(
            vec![
                (figure1::SRC, figure1::SRC), // self-pair
                (figure1::SRC, figure1::DST),
                (figure1::DST, figure1::DST), // self-pair
            ],
            6,
        )
        .with_rounds_per_iteration(3)
        .run(&base)
        .unwrap();

        assert_eq!(results.len(), 3);
        for r in [&results[0], &results[2]] {
            assert!(r.self_pair, "self-pair must be flagged");
            assert_eq!(r.result, PdResult::default(), "no iterations may run");
            assert!(r.pull_overhead.is_empty(), "no pull traffic may be sent");
        }
        // The real pair still runs normally, with the same disjoint id range it would get
        // in a self-pair-free campaign (index-based, so accounting stays per-slot).
        assert!(!results[1].self_pair);
        assert!(!results[1].result.paths.is_empty());
        // Parallel runs agree byte-for-byte on the mixed pair list too.
        let parallel = PdCampaign::new(
            vec![
                (figure1::SRC, figure1::SRC),
                (figure1::SRC, figure1::DST),
                (figure1::DST, figure1::DST),
            ],
            6,
        )
        .with_rounds_per_iteration(3)
        .with_parallelism(4)
        .run(&base)
        .unwrap();
        assert_eq!(pair_fingerprint(&parallel), pair_fingerprint(&results));
        assert_eq!(
            parallel.iter().map(|r| r.self_pair).collect::<Vec<_>>(),
            vec![true, false, true]
        );
    }
}
