//! The churn engine: applies generated deltas between rounds and settles the plane.

use super::generator::MIN_LIVE_NODES;
use super::invariants::InvariantChecker;
use super::{ChurnConfig, ChurnDelta, ChurnGenerator};
use crate::simulation::Simulation;
use irec_algorithms::incremental::SelectionDelta;
use irec_core::{NodeConfig, RacConfig};
use irec_types::{AsId, IrecError, Result};

/// The outcome of one churn step: the deltas applied and how the plane absorbed them.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnStep {
    /// Zero-based step index.
    pub step: usize,
    /// Simulation round count when the step's deltas were applied.
    pub round: u64,
    /// The deltas applied, in application order.
    pub deltas: Vec<ChurnDelta>,
    /// Rounds the settle loop ran before the registered-path set reached steady state and
    /// the no-blackhole check passed. `1` means the plane was already steady.
    pub settle_rounds: usize,
    /// Messages dropped during the step (purged or addressed to a missing node).
    pub dropped_no_node: u64,
    /// Messages dropped during the step because their emitting link endpoint was down.
    pub dropped_link_down: u64,
    /// Messages delivered during the step.
    pub delivered: u64,
}

impl ChurnStep {
    /// All messages lost to churn during this step.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_no_node + self.dropped_link_down
    }
}

/// The outcome of a full churn run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnReport {
    /// Per-step records, in order.
    pub steps: Vec<ChurnStep>,
}

impl ChurnReport {
    /// Total deltas applied across all steps.
    pub fn total_deltas(&self) -> usize {
        self.steps.iter().map(|step| step.deltas.len()).sum()
    }

    /// Total messages lost to churn across all steps.
    pub fn total_dropped(&self) -> u64 {
        self.steps.iter().map(ChurnStep::dropped_total).sum()
    }
}

/// Applies a seeded churn timeline to a simulation, one step at a time: draw the step's
/// deltas from the [`ChurnGenerator`], execute them between rounds, then run settle rounds
/// until the registered-path set is steady *and* the [`InvariantChecker`]'s no-blackhole
/// invariant holds — or fail once the config's convergence budget is exhausted.
///
/// The engine needs two pieces of configuration beyond the [`ChurnConfig`]: a node-config
/// factory (what a re-joining AS boots with, for `NodeJoin`) and an optional cycle of RAC
/// catalogs (what a `CatalogSwap` installs; with no catalogs the swap rebuilds the node's
/// current catalog — caches reset, behavior unchanged).
pub struct ChurnEngine<F>
where
    F: Fn(AsId) -> NodeConfig,
{
    generator: ChurnGenerator,
    node_config: F,
    catalogs: Vec<Vec<RacConfig>>,
    catalog_cursor: usize,
}

impl<F> ChurnEngine<F>
where
    F: Fn(AsId) -> NodeConfig,
{
    /// Creates an engine for `config`; `node_config` builds the configuration of any AS
    /// the timeline re-adds.
    pub fn new(config: ChurnConfig, node_config: F) -> Self {
        ChurnEngine {
            generator: ChurnGenerator::new(config),
            node_config,
            catalogs: Vec::new(),
            catalog_cursor: 0,
        }
    }

    /// Builder-style: the RAC catalogs `CatalogSwap` deltas cycle through, in order.
    #[must_use]
    pub fn with_catalogs(mut self, catalogs: Vec<Vec<RacConfig>>) -> Self {
        self.catalogs = catalogs;
        self
    }

    /// The engine's churn config.
    pub fn config(&self) -> &ChurnConfig {
        self.generator.config()
    }

    /// Runs `steps` churn steps against `sim`: warmup rounds first (so churn hits a
    /// converged plane and the no-blackhole baseline is meaningful), then per step
    /// draw → apply → settle → check. Returns the per-step report, or the first invariant
    /// violation as an error.
    pub fn run(&mut self, sim: &mut Simulation, steps: usize) -> Result<ChurnReport> {
        let config = *self.generator.config();
        sim.run_rounds(config.warmup_rounds)?;
        let checker = InvariantChecker::capture(sim);
        let mut report = ChurnReport { steps: Vec::new() };
        for step in 0..steps {
            let round = sim.rounds_run();
            let stats_before = sim.delivery_stats();
            let count = self.generator.step_delta_count();
            let mut deltas = Vec::with_capacity(count);
            for _ in 0..count {
                let Some(delta) = self.generator.draw_delta(sim) else {
                    break;
                };
                self.apply_delta(sim, delta)?;
                deltas.push(delta);
            }
            let settle_rounds = self.settle(sim, &checker, &config)?;
            let stats_after = sim.delivery_stats();
            report.steps.push(ChurnStep {
                step,
                round,
                deltas,
                settle_rounds,
                dropped_no_node: stats_after.dropped_no_node - stats_before.dropped_no_node,
                dropped_link_down: stats_after.dropped_link_down - stats_before.dropped_link_down,
                delivered: stats_after.delivered - stats_before.delivered,
            });
        }
        Ok(report)
    }

    /// Executes one delta against the simulation. Generated deltas are applicable by
    /// construction; this also accepts hand-built timelines (the staged-migration tests)
    /// and surfaces their errors.
    ///
    /// Returns the [`SelectionDelta`] describing the delta's blast radius on cached
    /// selections, for feeding an
    /// [`IncrementalSelection`](irec_algorithms::incremental::IncrementalSelection) table
    /// so only candidate batches crossing the change get re-scored. The live node round's
    /// own tables no longer depend on this return: every structural hook the arms below
    /// call ([`Simulation::set_link_down`], [`Simulation::remove_node`], ...) fans the
    /// same delta out to node tables and [`crate::SelectionInvalidation`] observers
    /// itself, making this engine one subscriber among any number.
    pub fn apply_delta(
        &mut self,
        sim: &mut Simulation,
        delta: ChurnDelta,
    ) -> Result<SelectionDelta> {
        match delta {
            ChurnDelta::LinkDown(link) => {
                let l = sim.topology().link(link)?;
                let endpoints = vec![(l.a.asn, l.a.interface), (l.b.asn, l.b.interface)];
                sim.set_link_down(link)?;
                // Withdraw the stale beacons, or selection keeps re-picking them and the
                // plane stays blackholed past any budget (see
                // `Simulation::withdraw_traversing_link`).
                sim.withdraw_traversing_link(link)?;
                Ok(SelectionDelta::Link(endpoints))
            }
            ChurnDelta::LinkUp(link) => {
                sim.set_link_up(link)?;
                // Re-sync the restored adjacency: messages emitted while the link was
                // down were dropped *after* the egress dedup marked them sent, so without
                // forgetting those marks current selections would never be re-sent across
                // the link and it would stay unused forever.
                let l = sim.topology().link(link)?;
                let endpoints = [(l.a.asn, l.a.interface), (l.b.asn, l.b.interface)];
                for (asn, ifid) in endpoints {
                    if let Ok(node) = sim.node_mut(asn) {
                        node.forget_egress(ifid);
                    }
                }
                Ok(SelectionDelta::Link(endpoints.to_vec()))
            }
            ChurnDelta::NodeLeave(asn) => {
                if sim.live_ases().len() <= MIN_LIVE_NODES {
                    return Err(IrecError::config(format!(
                        "refusing to remove {asn}: only {MIN_LIVE_NODES} nodes left"
                    )));
                }
                sim.remove_node(asn)
                    .map(|_| ())
                    .ok_or_else(|| IrecError::not_found(format!("no node to remove for {asn}")))?;
                sim.withdraw_traversing_as(asn);
                Ok(SelectionDelta::As(asn))
            }
            ChurnDelta::NodeJoin(asn) => {
                sim.add_node(asn, (self.node_config)(asn))?;
                Ok(SelectionDelta::As(asn))
            }
            ChurnDelta::CatalogSwap(asn) => {
                let catalog = if self.catalogs.is_empty() {
                    sim.node(asn)?.config().racs.clone()
                } else {
                    let catalog = self.catalogs[self.catalog_cursor % self.catalogs.len()].clone();
                    self.catalog_cursor += 1;
                    catalog
                };
                sim.swap_rac_catalog(asn, catalog)?;
                Ok(SelectionDelta::All)
            }
        }
    }

    /// Runs rounds until the registered-path set is identical between two consecutive
    /// rounds *and* the no-blackhole invariant holds, returning how many rounds that took.
    /// A plane that is stable but still blackholed keeps settling — stale paths age out
    /// and fresh propagation repairs it — until the budget declares the step failed.
    fn settle(
        &self,
        sim: &mut Simulation,
        checker: &InvariantChecker,
        config: &ChurnConfig,
    ) -> Result<usize> {
        let mut previous = sim.registered_paths();
        for settle_round in 1..=config.convergence_budget {
            sim.run_rounds(1)?;
            let current = sim.registered_paths();
            let steady = current == previous;
            if steady && checker.check_no_blackhole(sim).is_ok() {
                return Ok(settle_round);
            }
            previous = current;
        }
        // Distinguish the two failure modes in the error: a plane that never went steady
        // versus one that is steady but blackholed.
        checker.check_no_blackhole(sim)?;
        Err(IrecError::internal(format!(
            "convergence violated: registered paths still changing after {} settle rounds",
            config.convergence_budget
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnKinds;
    use crate::simulation::SimulationConfig;
    use irec_core::PropagationPolicy;
    use irec_topology::builder::{figure1, figure1_topology};
    use std::sync::Arc;

    fn node_config(_: AsId) -> NodeConfig {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
    }

    fn sim() -> Simulation {
        Simulation::new(
            Arc::new(figure1_topology()),
            SimulationConfig::default(),
            node_config,
        )
        .unwrap()
    }

    #[test]
    fn full_timeline_converges_with_invariants() {
        let mut sim = sim();
        let config = ChurnConfig::default().with_rate(1.0).with_seed(3);
        let mut engine = ChurnEngine::new(config, node_config);
        let report = engine.run(&mut sim, 6).unwrap();
        assert_eq!(report.steps.len(), 6);
        assert!(report.total_deltas() >= 1);
        for step in &report.steps {
            assert!(step.settle_rounds <= config.convergence_budget);
        }
    }

    #[test]
    fn zero_rate_applies_no_deltas_and_stays_steady() {
        let mut sim = sim();
        let mut engine = ChurnEngine::new(ChurnConfig::default().with_rate(0.0), node_config);
        let report = engine.run(&mut sim, 3).unwrap();
        assert_eq!(report.total_deltas(), 0);
        assert_eq!(report.total_dropped(), 0);
        for step in &report.steps {
            assert_eq!(
                step.settle_rounds, 1,
                "an unchurned plane is already steady"
            );
        }
    }

    #[test]
    fn node_flap_restores_reachability() {
        let mut sim = sim();
        let mut engine = ChurnEngine::new(ChurnConfig::default().with_rate(0.0), node_config);
        sim.run_rounds(6).unwrap();
        let checker = InvariantChecker::capture(&sim);
        engine
            .apply_delta(&mut sim, ChurnDelta::NodeLeave(figure1::X))
            .unwrap();
        engine
            .apply_delta(&mut sim, ChurnDelta::NodeJoin(figure1::X))
            .unwrap();
        sim.run_rounds(8).unwrap();
        checker.check_no_blackhole(&sim).unwrap();
        assert!((sim.connectivity() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn catalog_swaps_cycle_and_leave_paths_usable() {
        let mut sim = sim();
        let config = ChurnConfig::default()
            .with_rate(1.0)
            .with_kinds("catalog-swap".parse::<ChurnKinds>().unwrap());
        let mut engine = ChurnEngine::new(config, node_config).with_catalogs(vec![
            vec![RacConfig::static_rac("5SP", "5SP")],
            vec![
                RacConfig::static_rac("5SP", "5SP"),
                RacConfig::static_rac("widest", "widest"),
            ],
        ]);
        let report = engine.run(&mut sim, 4).unwrap();
        assert_eq!(report.total_deltas(), 4);
        assert!(report
            .steps
            .iter()
            .all(|step| matches!(step.deltas[..], [ChurnDelta::CatalogSwap(_)])));
    }

    #[test]
    fn apply_delta_surfaces_bad_timelines() {
        let mut sim = sim();
        let mut engine = ChurnEngine::new(ChurnConfig::default(), node_config);
        assert!(engine
            .apply_delta(&mut sim, ChurnDelta::NodeJoin(figure1::X))
            .is_err());
        assert!(engine
            .apply_delta(&mut sim, ChurnDelta::LinkDown(irec_types::LinkId(u64::MAX)))
            .is_err());
        sim.remove_node(figure1::X).unwrap();
        assert!(engine
            .apply_delta(&mut sim, ChurnDelta::CatalogSwap(figure1::X))
            .is_err());
    }
}
