//! The churn invariants: convergence and no-blackhole, checked between steps.

use crate::simulation::Simulation;
use irec_types::{AsId, IrecError, Result};
use std::collections::{BTreeSet, VecDeque};

/// Checks the two churn invariants against a settled simulation.
///
/// * **Convergence** is checked by the engine's settle loop (registered-path steady state
///   within the config's budget); this type supplies the no-blackhole half and the
///   baseline it is judged against.
/// * **No-blackhole**: for every baseline pair `(a, b)` — pairs that held at least one
///   registered path when the checker was captured — where both ASes are still live *and*
///   `b` is still physically reachable from `a` (BFS over up links and live nodes), `a`
///   must hold at least one *usable* registered path towards `b`: a path whose recorded
///   links avoid every downed endpoint and whose traversed ASes are all live. Pairs whose
///   physical route was severed are excused — dropping them is a topology fact, not a
///   blackhole.
///
/// The baseline is captured once, after warmup, so the invariant is judged against what
/// the converged plane actually achieved (policy-reachable pairs), not against an
/// assumption that physical reachability implies policy reachability.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    /// Ordered AS pairs `(holder, origin)` that held ≥ 1 registered path at capture time.
    baseline: Vec<(AsId, AsId)>,
}

impl InvariantChecker {
    /// Captures the no-blackhole baseline: every ordered pair with a registered path.
    pub fn capture(sim: &Simulation) -> Self {
        let mut pairs: BTreeSet<(AsId, AsId)> = BTreeSet::new();
        for path in sim.registered_paths() {
            pairs.insert((path.holder, path.origin));
        }
        InvariantChecker {
            baseline: pairs.into_iter().collect(),
        }
    }

    /// The captured baseline pairs, in order.
    pub fn baseline(&self) -> &[(AsId, AsId)] {
        &self.baseline
    }

    /// The ASes physically reachable from `from` over up links and live nodes, `from`
    /// included (empty if `from` itself is not live).
    pub fn live_reachable(sim: &Simulation, from: AsId) -> BTreeSet<AsId> {
        let mut reachable = BTreeSet::new();
        if !sim.has_node(from) {
            return reachable;
        }
        reachable.insert(from);
        let mut frontier = VecDeque::from([from]);
        while let Some(asn) = frontier.pop_front() {
            for link_id in sim.topology().links_of(asn) {
                if sim.is_link_down(link_id) {
                    continue;
                }
                let Ok(link) = sim.topology().link(link_id) else {
                    continue;
                };
                let other = if link.a.asn == asn {
                    link.b.asn
                } else {
                    link.a.asn
                };
                if sim.has_node(other) && reachable.insert(other) {
                    frontier.push_back(other);
                }
            }
        }
        reachable
    }

    /// Verifies the no-blackhole invariant, returning the first violated pair as an error.
    pub fn check_no_blackhole(&self, sim: &Simulation) -> Result<()> {
        let paths = sim.registered_paths();
        let mut holder: Option<(AsId, BTreeSet<AsId>)> = None;
        for &(a, b) in &self.baseline {
            if !sim.has_node(a) || !sim.has_node(b) {
                continue;
            }
            // The baseline is sorted by holder, so one BFS per holder suffices.
            if holder.as_ref().map(|(cached, _)| *cached) != Some(a) {
                holder = Some((a, Self::live_reachable(sim, a)));
            }
            let reachable = &holder.as_ref().expect("computed above").1;
            if !reachable.contains(&b) {
                continue;
            }
            let usable = paths.iter().any(|path| {
                path.holder == a
                    && path.origin == b
                    && path
                        .links
                        .iter()
                        .all(|&(asn, ifid)| sim.has_node(asn) && !sim.is_endpoint_down(asn, ifid))
            });
            if !usable {
                return Err(IrecError::internal(format!(
                    "no-blackhole violated: {a} has no usable registered path to live, \
                     reachable {b}"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulation::SimulationConfig;
    use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
    use irec_topology::builder::{figure1, figure1_topology};
    use std::sync::Arc;

    fn ten_ms() -> irec_types::Latency {
        irec_types::Latency::from_millis(10)
    }

    fn mbps100() -> irec_types::Bandwidth {
        irec_types::Bandwidth::from_mbps(100)
    }

    fn warmed_sim_with(rac: &str) -> Simulation {
        let rac = rac.to_string();
        let mut sim = Simulation::new(
            Arc::new(figure1_topology()),
            SimulationConfig::default(),
            move |_| {
                NodeConfig::default()
                    .with_policy(PropagationPolicy::All)
                    .with_racs(vec![RacConfig::static_rac(&rac, &rac)])
            },
        )
        .unwrap();
        sim.run_rounds(6).unwrap();
        sim
    }

    fn warmed_sim() -> Simulation {
        warmed_sim_with("5SP")
    }

    #[test]
    fn baseline_covers_all_connected_pairs() {
        let sim = warmed_sim();
        let checker = InvariantChecker::capture(&sim);
        let n = sim.live_ases().len();
        assert_eq!(checker.baseline().len(), n * (n - 1), "full connectivity");
        checker.check_no_blackhole(&sim).unwrap();
    }

    #[test]
    fn reachability_respects_downed_links_and_dead_nodes() {
        let mut sim = warmed_sim();
        let all: BTreeSet<AsId> = sim.topology().as_ids().into_iter().collect();
        assert_eq!(InvariantChecker::live_reachable(&sim, figure1::SRC), all);
        sim.remove_node(figure1::X).unwrap();
        let without_x = InvariantChecker::live_reachable(&sim, figure1::SRC);
        assert!(!without_x.contains(&figure1::X));
        assert_eq!(
            InvariantChecker::live_reachable(&sim, figure1::X),
            BTreeSet::new()
        );
        // Downing every SRC link isolates it.
        for link in sim.topology().links_of(figure1::SRC) {
            sim.set_link_down(link).unwrap();
        }
        assert_eq!(
            InvariantChecker::live_reachable(&sim, figure1::SRC),
            BTreeSet::from([figure1::SRC])
        );
    }

    #[test]
    fn severed_pairs_are_excused_but_stale_paths_are_not() {
        let mut sim = warmed_sim();
        let checker = InvariantChecker::capture(&sim);
        // Isolating SRC physically excuses all its pairs: no violation even though its
        // registered paths all became unusable.
        for link in sim.topology().links_of(figure1::SRC) {
            sim.set_link_down(link).unwrap();
        }
        checker.check_no_blackhole(&sim).unwrap();
        // But a genuine blackhole must be flagged. Under valley-free policy, AS1 and AS3
        // share a provider (AS2) and a peer detour (AS1–AS4–AS3) that export rules forbid
        // beacons from taking: AS1's only stored paths to AS3 run through AS2. Downing the
        // AS2–AS3 link leaves AS3 *physically* reachable over the peer detour, yet every
        // stored path is stale — exactly the registered-paths-blackhole the checker exists
        // to catch.
        let mut sim = Simulation::new(
            Arc::new(
                irec_topology::TopologyBuilder::new()
                    .with_ases([1, 2, 3, 4])
                    .provider_link(2, 1, ten_ms(), mbps100())
                    .provider_link(2, 3, ten_ms(), mbps100())
                    .link(1, 4, ten_ms(), mbps100())
                    .link(4, 3, ten_ms(), mbps100())
                    .build(),
            ),
            SimulationConfig::default(),
            |_| {
                NodeConfig::default()
                    .with_policy(PropagationPolicy::ValleyFree)
                    .with_racs(vec![RacConfig::static_rac("1SP", "1SP")])
            },
        )
        .unwrap();
        sim.run_rounds(6).unwrap();
        let checker = InvariantChecker::capture(&sim);
        let stored = sim.node(AsId(1)).unwrap().path_service().paths_to(AsId(3));
        assert!(!stored.is_empty(), "warmup must register provider paths");
        assert!(
            stored
                .iter()
                .all(|p| p.links.iter().any(|&(asn, _)| asn == AsId(2))),
            "valley-free exports must keep every stored path on the provider route"
        );
        let links3: BTreeSet<_> = sim.topology().links_of(AsId(3)).into_iter().collect();
        let provider_link = *sim
            .topology()
            .links_of(AsId(2))
            .iter()
            .find(|id| links3.contains(id))
            .expect("AS2-AS3 link exists");
        sim.set_link_down(provider_link).unwrap();
        assert!(
            InvariantChecker::live_reachable(&sim, AsId(1)).contains(&AsId(3)),
            "AS3 must stay physically reachable over the peer detour"
        );
        assert!(
            checker.check_no_blackhole(&sim).is_err(),
            "stale paths over the downed provider link must not count as usable"
        );
    }
}
