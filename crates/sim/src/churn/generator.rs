//! The seeded churn generator: a deterministic delta timeline drawn from the live
//! simulation state.

use super::{ChurnConfig, ChurnDelta};
use crate::simulation::Simulation;
use irec_types::AsId;
use std::collections::BTreeSet;

/// Smallest number of live nodes a `NodeLeave` draw must preserve: with fewer than two
/// nodes there is no control plane left to converge.
pub const MIN_LIVE_NODES: usize = 2;

/// A self-contained splitmix64 stream. The sim crate deliberately carries no `rand`
/// dependency; splitmix64 is tiny, passes BigCrush as a 64-bit mixer, and — most
/// importantly here — is trivially reproducible from a single `u64` seed forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// An unbiased-enough draw in `[0, bound)` for workload generation (`bound` is tiny
    /// compared to 2^64, so the modulo bias is negligible and, crucially, deterministic).
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Emits a deterministic timeline of [`ChurnDelta`]s from a [`ChurnConfig`].
///
/// The generator is driven by the [`super::ChurnEngine`] one delta at a time: each draw
/// inspects the simulation's current observables (live ASes, downed links) so that every
/// emitted delta is applicable — a `LinkUp` is only drawn when a link is down, a
/// `NodeJoin` only when an AS is offline, and a `NodeLeave` never shrinks the plane below
/// [`MIN_LIVE_NODES`]. When the drawn kind has no valid target, the generator falls back
/// through the remaining kinds in their fixed order (see [`super::ChurnKinds::entries`])
/// and emits nothing if none applies. All candidate lists are sorted (`AsId` / `LinkId`
/// order), so draws depend only on the PRNG stream and deterministic simulation outputs.
#[derive(Debug, Clone)]
pub struct ChurnGenerator {
    config: ChurnConfig,
    rng: SplitMix64,
    /// Fractional-rate accumulator: `rate` is added per step, the integer part is drawn.
    carry: f64,
}

impl ChurnGenerator {
    /// Creates a generator for `config`, seeding the stream from `config.seed`.
    pub fn new(config: ChurnConfig) -> Self {
        ChurnGenerator {
            config,
            rng: SplitMix64::new(config.seed),
            carry: 0.0,
        }
    }

    /// The config this generator draws from.
    pub fn config(&self) -> &ChurnConfig {
        &self.config
    }

    /// Advances the rate accumulator by one step and returns how many deltas the step
    /// should apply. At rate 0.5 this yields `0, 1, 0, 1, …`; at 2.25 it yields `2` three
    /// times out of four and `3` on the fourth.
    pub fn step_delta_count(&mut self) -> usize {
        self.carry += self.config.rate;
        let n = self.carry.floor();
        self.carry -= n;
        n as usize
    }

    /// Draws one applicable delta against the simulation's current state, or `None` if no
    /// enabled kind has a valid target. The engine applies the delta before the next draw,
    /// so successive draws within a step see each other's effects (a link downed by this
    /// step is a candidate for the step's next `LinkUp`).
    pub fn draw_delta(&mut self, sim: &Simulation) -> Option<ChurnDelta> {
        let entries = self.config.kinds.entries();
        let total = self.config.kinds.total_weight();
        if total == 0 {
            return None;
        }
        let mut pick = self.rng.below(total);
        let mut start = 0;
        for (position, (_, weight)) in entries.iter().enumerate() {
            let weight = *weight as u64;
            if pick < weight {
                start = position;
                break;
            }
            pick -= weight;
        }
        // Fall back through the kinds in fixed order, starting at the drawn one, skipping
        // disabled kinds. The stream stays deterministic either way: which kinds have
        // targets is itself a deterministic function of the timeline so far.
        for offset in 0..entries.len() {
            let position = (start + offset) % entries.len();
            if entries[position].1 == 0 {
                continue;
            }
            let delta = match position {
                0 => self.draw_link_down(sim),
                1 => self.draw_link_up(sim),
                2 => self.draw_node_leave(sim),
                3 => self.draw_node_join(sim),
                _ => self.draw_catalog_swap(sim),
            };
            if delta.is_some() {
                return delta;
            }
        }
        None
    }

    fn draw_link_down(&mut self, sim: &Simulation) -> Option<ChurnDelta> {
        let downed: BTreeSet<_> = sim.downed_links().into_iter().collect();
        let up: Vec<_> = sim
            .topology()
            .link_ids()
            .into_iter()
            .filter(|id| !downed.contains(id))
            .collect();
        self.pick(&up).map(ChurnDelta::LinkDown)
    }

    fn draw_link_up(&mut self, sim: &Simulation) -> Option<ChurnDelta> {
        self.pick(&sim.downed_links()).map(ChurnDelta::LinkUp)
    }

    fn draw_node_leave(&mut self, sim: &Simulation) -> Option<ChurnDelta> {
        let live = sim.live_ases();
        if live.len() <= MIN_LIVE_NODES {
            return None;
        }
        self.pick(&live).map(ChurnDelta::NodeLeave)
    }

    fn draw_node_join(&mut self, sim: &Simulation) -> Option<ChurnDelta> {
        let offline: Vec<AsId> = sim
            .topology()
            .as_ids()
            .into_iter()
            .filter(|asn| !sim.has_node(*asn))
            .collect();
        self.pick(&offline).map(ChurnDelta::NodeJoin)
    }

    fn draw_catalog_swap(&mut self, sim: &Simulation) -> Option<ChurnDelta> {
        self.pick(&sim.live_ases()).map(ChurnDelta::CatalogSwap)
    }

    fn pick<T: Copy>(&mut self, candidates: &[T]) -> Option<T> {
        if candidates.is_empty() {
            return None;
        }
        Some(candidates[self.rng.below(candidates.len() as u64) as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::ChurnKinds;
    use crate::simulation::SimulationConfig;
    use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
    use irec_topology::builder::figure1_topology;
    use std::sync::Arc;

    fn sim() -> Simulation {
        Simulation::new(
            Arc::new(figure1_topology()),
            SimulationConfig::default(),
            |_| {
                NodeConfig::default()
                    .with_policy(PropagationPolicy::All)
                    .with_racs(vec![RacConfig::static_rac("1SP", "1SP")])
            },
        )
        .unwrap()
    }

    #[test]
    fn splitmix_is_reproducible() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn rate_accumulator_carries_fractions() {
        let mut generator = ChurnGenerator::new(ChurnConfig::default().with_rate(0.5));
        let counts: Vec<usize> = (0..6).map(|_| generator.step_delta_count()).collect();
        assert_eq!(counts.iter().sum::<usize>(), 3);
        let mut generator = ChurnGenerator::new(ChurnConfig::default().with_rate(2.0));
        assert_eq!(generator.step_delta_count(), 2);
    }

    #[test]
    fn same_seed_same_timeline() {
        let sim = sim();
        let config = ChurnConfig::default().with_seed(7);
        let draw = |mut generator: ChurnGenerator| -> Vec<ChurnDelta> {
            (0..20).filter_map(|_| generator.draw_delta(&sim)).collect()
        };
        let a = draw(ChurnGenerator::new(config));
        let b = draw(ChurnGenerator::new(config));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = draw(ChurnGenerator::new(config.with_seed(8)));
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn draws_respect_applicability() {
        let sim = sim();
        // Only link-up enabled, but nothing is down: every draw falls back to nothing.
        let only_up = ChurnConfig::default().with_kinds("link-up".parse::<ChurnKinds>().unwrap());
        let mut generator = ChurnGenerator::new(only_up);
        assert_eq!(generator.draw_delta(&sim), None);
        // Only node-join enabled, but every AS is live.
        let only_join =
            ChurnConfig::default().with_kinds("node-join".parse::<ChurnKinds>().unwrap());
        let mut generator = ChurnGenerator::new(only_join);
        assert_eq!(generator.draw_delta(&sim), None);
        // All weights zero draws nothing.
        let mut generator =
            ChurnGenerator::new(ChurnConfig::default().with_kinds(ChurnKinds::NONE));
        assert_eq!(generator.draw_delta(&sim), None);
    }

    #[test]
    fn node_leave_preserves_a_minimum_plane() {
        let mut sim = sim();
        let only_leave =
            ChurnConfig::default().with_kinds("node-leave".parse::<ChurnKinds>().unwrap());
        let mut generator = ChurnGenerator::new(only_leave);
        // Drain the topology down to the floor; every draw until then must name a live AS.
        while sim.live_ases().len() > MIN_LIVE_NODES {
            let Some(ChurnDelta::NodeLeave(asn)) = generator.draw_delta(&sim) else {
                panic!("expected a node-leave draw");
            };
            assert!(sim.has_node(asn));
            sim.remove_node(asn).unwrap();
        }
        assert_eq!(generator.draw_delta(&sim), None);
        assert_eq!(sim.live_ases().len(), MIN_LIVE_NODES);
    }
}
