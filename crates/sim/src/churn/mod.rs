//! The churn & live-reconfiguration scenario engine: seeded topology deltas between
//! rounds, with convergence and no-blackhole invariants checked after every step.
//!
//! Every other scenario in the repo runs a fixed topology; real control planes must absorb
//! link flaps, AS joins/leaves and staged configuration migrations without blackholing
//! traffic. This module turns the ad-hoc failure-injection tests into a first-class
//! subsystem, mirroring the [`crate::dag`] layout:
//!
//! * [`generator::ChurnGenerator`] — a seeded generator emitting a deterministic timeline
//!   of [`ChurnDelta`]s from a [`ChurnConfig`] (rate, seed, per-kind weights, warmup). It
//!   draws targets from the *live* simulation state (up links, live nodes), so every
//!   emitted delta is applicable by construction;
//! * [`engine::ChurnEngine`] — the delta applicator: executes each step's deltas between
//!   rounds (via `Simulation::{set_link_down,set_link_up,remove_node,add_node}` and
//!   `IrecNode::swap_rac_catalog`), then runs settle rounds until the control plane
//!   re-converges;
//! * [`invariants::InvariantChecker`] — verifies **convergence** (the registered-path set
//!   reaches a steady state within a bounded number of rounds after each delta batch) and
//!   **no-blackhole** (every baseline AS pair that is still live and physically reachable
//!   holds at least one usable registered path) between steps.
//!
//! # Determinism
//!
//! A churn run is a pure function of `(topology, node configs, ChurnConfig)`. The
//! generator's PRNG is a self-contained splitmix64 stream seeded from the config; its
//! draws consume only the stream and the simulation's *deterministic* observables (live
//! ASes in `AsId` order, downed links in `LinkId` order, topology link ids in sorted
//! order). The engine applies deltas between rounds — where both schedulers quiesce with
//! identical state — and its settle loop advances on registered-path equality, itself a
//! deterministic output. Therefore the whole timeline, and everything downstream of it, is
//! byte-identical across `--round-scheduler {barrier,dag}` and all parallelism/shard
//! knobs, like every other plane: `tests/churn_determinism.rs` and the CI determinism
//! matrix enforce the bar.

pub mod engine;
pub mod generator;
pub mod invariants;

pub use engine::{ChurnEngine, ChurnReport, ChurnStep};
pub use generator::ChurnGenerator;
pub use invariants::InvariantChecker;
pub use irec_algorithms::incremental::SelectionDelta;

use irec_types::{AsId, IrecError, LinkId, Result};

/// One topology/configuration delta the churn engine can apply between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnDelta {
    /// Mark a link down: PCBs emitted over either endpoint drop at delivery time.
    LinkDown(LinkId),
    /// Bring a previously downed link back up.
    LinkUp(LinkId),
    /// Remove an AS's node (the AS goes offline; queued events to it are purged).
    NodeLeave(AsId),
    /// Re-add a node for an AS currently without one (empty state, idempotent
    /// re-registration).
    NodeJoin(AsId),
    /// Swap an AS's RAC catalog live (staged configuration migration).
    CatalogSwap(AsId),
}

impl std::fmt::Display for ChurnDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChurnDelta::LinkDown(link) => write!(f, "link-down({})", link.0),
            ChurnDelta::LinkUp(link) => write!(f, "link-up({})", link.0),
            ChurnDelta::NodeLeave(asn) => write!(f, "node-leave({asn})"),
            ChurnDelta::NodeJoin(asn) => write!(f, "node-join({asn})"),
            ChurnDelta::CatalogSwap(asn) => write!(f, "catalog-swap({asn})"),
        }
    }
}

/// The delta-kind weights of a churn workload. A kind with weight 0 is never drawn; the
/// generator picks among the enabled kinds proportionally to their weights, in the fixed
/// order link-down, link-up, node-leave, node-join, catalog-swap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnKinds {
    /// Weight of [`ChurnDelta::LinkDown`].
    pub link_down: u32,
    /// Weight of [`ChurnDelta::LinkUp`].
    pub link_up: u32,
    /// Weight of [`ChurnDelta::NodeLeave`].
    pub node_leave: u32,
    /// Weight of [`ChurnDelta::NodeJoin`].
    pub node_join: u32,
    /// Weight of [`ChurnDelta::CatalogSwap`].
    pub catalog_swap: u32,
}

impl Default for ChurnKinds {
    /// Every kind enabled with weight 1 (the `all` spelling).
    fn default() -> Self {
        ChurnKinds {
            link_down: 1,
            link_up: 1,
            node_leave: 1,
            node_join: 1,
            catalog_swap: 1,
        }
    }
}

impl ChurnKinds {
    /// No kind enabled; combine with the field syntax or [`std::str::FromStr`] to opt in.
    pub const NONE: ChurnKinds = ChurnKinds {
        link_down: 0,
        link_up: 0,
        node_leave: 0,
        node_join: 0,
        catalog_swap: 0,
    };

    /// The kinds in their fixed draw/fallback order, as `(name, weight)` pairs.
    pub fn entries(&self) -> [(&'static str, u32); 5] {
        [
            ("link-down", self.link_down),
            ("link-up", self.link_up),
            ("node-leave", self.node_leave),
            ("node-join", self.node_join),
            ("catalog-swap", self.catalog_swap),
        ]
    }

    /// Sum of all weights; 0 means churn draws nothing.
    pub fn total_weight(&self) -> u64 {
        self.entries().iter().map(|(_, w)| *w as u64).sum()
    }

    fn weight_mut(&mut self, name: &str) -> Option<&mut u32> {
        match name {
            "link-down" => Some(&mut self.link_down),
            "link-up" => Some(&mut self.link_up),
            "node-leave" => Some(&mut self.node_leave),
            "node-join" => Some(&mut self.node_join),
            "catalog-swap" => Some(&mut self.catalog_swap),
            _ => None,
        }
    }
}

impl std::str::FromStr for ChurnKinds {
    type Err = IrecError;

    /// Parses a `--churn-kinds` spec: `all` (every kind, weight 1), or a comma-separated
    /// list of kind names with optional `=N` weights, e.g. `link-down=3,node-leave`.
    fn from_str(s: &str) -> Result<Self> {
        if s == "all" {
            return Ok(ChurnKinds::default());
        }
        let mut kinds = ChurnKinds::NONE;
        for part in s.split(',') {
            let part = part.trim();
            let (name, weight) = match part.split_once('=') {
                Some((name, weight)) => {
                    let weight: u32 = weight.parse().map_err(|_| {
                        IrecError::config(format!("bad churn-kind weight in {part:?}"))
                    })?;
                    (name, weight)
                }
                None => (part, 1),
            };
            let slot = kinds.weight_mut(name).ok_or_else(|| {
                IrecError::config(format!(
                    "unknown churn kind {name:?} (expected all, link-down, link-up, \
                     node-leave, node-join or catalog-swap)"
                ))
            })?;
            *slot = weight;
        }
        Ok(kinds)
    }
}

impl std::fmt::Display for ChurnKinds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == ChurnKinds::default() {
            return f.write_str("all");
        }
        let mut first = true;
        for (name, weight) in self.entries() {
            if weight == 0 {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            first = false;
            if weight == 1 {
                write!(f, "{name}")?;
            } else {
                write!(f, "{name}={weight}")?;
            }
        }
        if first {
            f.write_str("none")?;
        }
        Ok(())
    }
}

/// Parameters of a churn workload. These are *workload* knobs: unlike the parallelism
/// knobs they change the simulation's output (deliberately so) — but the output is still a
/// pure function of this config, byte-identical across schedulers and worker counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Expected number of deltas per churn step. Fractional rates accumulate: at 0.5,
    /// every other step applies one delta.
    pub rate: f64,
    /// PRNG seed of the delta timeline.
    pub seed: u64,
    /// Per-kind weights.
    pub kinds: ChurnKinds,
    /// Beaconing rounds run before the first delta, so churn hits a converged plane.
    pub warmup_rounds: usize,
    /// Maximum settle rounds after a delta batch before the convergence invariant fails.
    /// Must exceed the topology diameter, or a re-joining node (whose beacons re-propagate
    /// one hop per round) can be declared non-convergent spuriously.
    pub convergence_budget: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            rate: 1.0,
            seed: 11,
            kinds: ChurnKinds::default(),
            warmup_rounds: 6,
            convergence_budget: 16,
        }
    }
}

impl ChurnConfig {
    /// Builder-style: set the expected deltas-per-step rate (clamped to ≥ 0).
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate.max(0.0);
        self
    }

    /// Builder-style: set the timeline seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the delta-kind weights.
    #[must_use]
    pub fn with_kinds(mut self, kinds: ChurnKinds) -> Self {
        self.kinds = kinds;
        self
    }

    /// Builder-style: set the warmup round count.
    #[must_use]
    pub fn with_warmup_rounds(mut self, warmup_rounds: usize) -> Self {
        self.warmup_rounds = warmup_rounds;
        self
    }

    /// Builder-style: set the convergence budget.
    #[must_use]
    pub fn with_convergence_budget(mut self, convergence_budget: usize) -> Self {
        self.convergence_budget = convergence_budget.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_parse_and_display_round_trip() {
        let all: ChurnKinds = "all".parse().unwrap();
        assert_eq!(all, ChurnKinds::default());
        assert_eq!(all.to_string(), "all");

        let subset: ChurnKinds = "link-down=3,node-leave".parse().unwrap();
        assert_eq!(subset.link_down, 3);
        assert_eq!(subset.node_leave, 1);
        assert_eq!(subset.link_up, 0);
        assert_eq!(subset.to_string(), "link-down=3,node-leave");
        assert_eq!(subset.to_string().parse::<ChurnKinds>().unwrap(), subset);

        assert!("flap".parse::<ChurnKinds>().is_err());
        assert!("link-down=x".parse::<ChurnKinds>().is_err());
        assert_eq!(ChurnKinds::NONE.to_string(), "none");
        assert_eq!(ChurnKinds::NONE.total_weight(), 0);
    }

    #[test]
    fn config_builders_clamp() {
        let config = ChurnConfig::default()
            .with_rate(-2.0)
            .with_convergence_budget(0);
        assert_eq!(config.rate, 0.0);
        assert_eq!(config.convergence_budget, 1);
    }

    #[test]
    fn deltas_display() {
        assert_eq!(ChurnDelta::LinkDown(LinkId(3)).to_string(), "link-down(3)");
        assert_eq!(
            ChurnDelta::NodeJoin(AsId(7)).to_string(),
            format!("node-join({})", AsId(7))
        );
    }
}
