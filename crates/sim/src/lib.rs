//! # irec-sim
//!
//! The discrete-event control-plane simulator — this reproduction's substitute for the
//! ns-3-based SCION simulator the paper uses for its large-scale evaluation (§VIII).
//!
//! The simulator drives one [`irec_core::IrecNode`] per AS of an [`irec_topology::Topology`]:
//!
//! * every AS runs a **beaconing round** periodically (every 10 simulated minutes in the
//!   paper's setup): it originates fresh PCBs, runs all its RACs over the ingress database,
//!   and hands the selections to the egress gateway;
//! * the resulting PCB messages are delivered to the neighboring ASes through the
//!   [`delivery::DeliveryPlane`] — a discrete [`event::EventQueue`] drained in time epochs
//!   with per-destination-AS inboxes and a parallel-verify / serial-apply pipeline —
//!   delayed by the propagation latency of the traversed link (plus a small processing
//!   delay);
//! * pull-based beacons reaching their target are returned to the origin AS as
//!   [`irec_core::PullReturn`] events, delayed by the latency of the discovered path;
//! * per-interface, per-period send counters feed the Fig. 8c overhead metric, and the
//!   registered paths of every node feed the Fig. 8a/8b metrics.
//!
//! [`pd::PdWorkflow`] implements the iterative pull-based disjointness (PD) workflow of
//! §VIII-B on top of the simulator: seed with HD paths, then repeatedly originate on-demand +
//! pull-based beacons that avoid all links discovered so far, adding one new disjoint path
//! per iteration. [`pd::PdCampaign`] fans N independent `(origin, target)` workflows out
//! over a scoped worker pool — each on its own copy-on-write [`SimSnapshot`] (restricted
//! to the origin's reachable component; see [`Simulation::snapshot_reachable_from`]) —
//! with results merged in pair order, byte-identical to the sequential loop and to the
//! deep-clone reference implementation.
//!
//! [`churn::ChurnEngine`] layers live reconfiguration on top: a seeded generator emits a
//! deterministic timeline of topology deltas (link flaps, AS leaves/joins, RAC-catalog
//! swaps) applied between rounds, with convergence and no-blackhole invariants checked
//! after every step (see [`churn`]). Every structural mutation also fans a
//! [`irec_algorithms::incremental::SelectionDelta`] out to the nodes'
//! incremental-selection tables and to subscribed [`SelectionInvalidation`] observers —
//! the plumbing behind [`SimulationConfig::with_incremental_selection`], which lets live
//! rounds reuse RAC selections for batches a reconfiguration did not touch, byte-identical
//! to the from-scratch reference.
//!
//! Rounds execute under one of two schedulers ([`simulation::RoundScheduler`]): the
//! **barrier** reference path (deliver → node phase → housekeeping, each a strict phase)
//! or the **dependency-DAG** scheduler ([`dag`]), which dissolves the phase barriers into
//! a work-item graph — verifies, shard applies, node rounds, accounting, speculative
//! next-round verification and housekeeping all run the moment their inputs are ready on
//! a work-stealing pool, with byte-identical output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod dag;
pub mod delivery;
pub mod event;
pub mod pd;
pub mod simulation;

pub use churn::{
    ChurnConfig, ChurnDelta, ChurnEngine, ChurnGenerator, ChurnKinds, ChurnReport, ChurnStep,
    InvariantChecker,
};
pub use dag::{Dag, DagExecutor, ExecReport, RoundDagBuilder, RoundItem, SchedulerStats};
pub use delivery::{DeliveryPlane, DeliveryStats};
pub use event::{Event, EventQueue};
pub use pd::{PdCampaign, PdPairResult, PdResult, PdWorkflow};
pub use simulation::{
    IncrementalSelectionMode, RoundScheduler, SelectionInvalidation, SimSnapshot, Simulation,
    SimulationConfig,
};
