//! The work-item DAG store: nodes, directed edges, in-degree tracking and the ready set.
//!
//! A [`Dag`] is a plain adjacency structure over `usize` item ids — it knows nothing about
//! what an item *does* (see [`crate::dag::dependency_builder`] for the round-specific item
//! kinds and edge rules, and [`crate::dag::executor`] for running one). Ids are assigned
//! densely in insertion order, which the round builder exploits: the canonical merge order
//! of the barrier scheduler is exactly the id order of the corresponding DAG items.

/// A directed acyclic graph of work items, stored as successor lists plus per-node
/// in-degrees.
///
/// Edges express "must happen before": `add_edge(a, b)` means item `b` may only start once
/// item `a` has finished. The structure itself does not forbid cycles at insertion time —
/// [`Dag::topological_order`] / [`Dag::is_acyclic`] validate, and the executor refuses to
/// run a cyclic graph.
#[derive(Debug, Clone, Default)]
pub struct Dag {
    /// `successors[i]` = items that depend on item `i`, in edge-insertion order.
    successors: Vec<Vec<usize>>,
    /// `in_degrees[i]` = number of items that must finish before item `i` may start.
    in_degrees: Vec<usize>,
    /// Total number of edges.
    edges: usize,
}

impl Dag {
    /// Creates an empty DAG.
    pub fn new() -> Self {
        Dag::default()
    }

    /// Creates an empty DAG with room for `nodes` items.
    pub fn with_capacity(nodes: usize) -> Self {
        Dag {
            successors: Vec::with_capacity(nodes),
            in_degrees: Vec::with_capacity(nodes),
            edges: 0,
        }
    }

    /// Adds a new item and returns its id (ids are dense, in insertion order).
    pub fn add_node(&mut self) -> usize {
        self.successors.push(Vec::new());
        self.in_degrees.push(0);
        self.successors.len() - 1
    }

    /// Adds the edge `from → to` ("`to` may only start once `from` has finished").
    ///
    /// # Panics
    /// If either id is out of range or the edge is a self-loop.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < self.len() && to < self.len(), "edge id out of range");
        assert_ne!(from, to, "self-edges are never satisfiable");
        self.successors[from].push(to);
        self.in_degrees[to] += 1;
        self.edges += 1;
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// Whether the DAG has no items.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// The number of unfinished predecessors item `id` starts with.
    pub fn in_degree(&self, id: usize) -> usize {
        self.in_degrees[id]
    }

    /// The items that depend on item `id`.
    pub fn successors(&self, id: usize) -> &[usize] {
        &self.successors[id]
    }

    /// The initial ready set: every item with no in-edges, in id order. This is what the
    /// executor seeds its worker queues with.
    pub fn ready_set(&self) -> Vec<usize> {
        self.in_degrees
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| id)
            .collect()
    }

    /// Kahn's algorithm: a topological order of all items, or `None` if the graph has a
    /// cycle (in which case no schedule can satisfy every edge and the executor would
    /// stall).
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let mut in_degrees = self.in_degrees.clone();
        let mut order = Vec::with_capacity(self.len());
        let mut frontier: std::collections::VecDeque<usize> = self.ready_set().into();
        while let Some(id) = frontier.pop_front() {
            order.push(id);
            for &succ in &self.successors[id] {
                in_degrees[succ] -= 1;
                if in_degrees[succ] == 0 {
                    frontier.push_back(succ);
                }
            }
        }
        (order.len() == self.len()).then_some(order)
    }

    /// Whether every item is reachable through a valid schedule (no cycles).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dag_is_trivially_acyclic() {
        let dag = Dag::new();
        assert!(dag.is_empty());
        assert_eq!(dag.edge_count(), 0);
        assert!(dag.ready_set().is_empty());
        assert_eq!(dag.topological_order(), Some(Vec::new()));
    }

    #[test]
    fn ready_set_tracks_in_degrees() {
        let mut dag = Dag::new();
        let a = dag.add_node();
        let b = dag.add_node();
        let c = dag.add_node();
        let d = dag.add_node();
        dag.add_edge(a, c);
        dag.add_edge(b, c);
        dag.add_edge(c, d);
        assert_eq!(dag.ready_set(), vec![a, b]);
        assert_eq!(dag.in_degree(c), 2);
        assert_eq!(dag.in_degree(d), 1);
        assert_eq!(dag.successors(c), &[d]);
        assert_eq!(dag.edge_count(), 3);
    }

    #[test]
    fn topological_order_respects_every_edge() {
        let mut dag = Dag::new();
        let ids: Vec<usize> = (0..6).map(|_| dag.add_node()).collect();
        // A diamond plus a tail: 0 → {1, 2} → 3 → 4, and 5 independent.
        dag.add_edge(ids[0], ids[1]);
        dag.add_edge(ids[0], ids[2]);
        dag.add_edge(ids[1], ids[3]);
        dag.add_edge(ids[2], ids[3]);
        dag.add_edge(ids[3], ids[4]);
        let order = dag.topological_order().expect("acyclic");
        assert_eq!(order.len(), dag.len());
        let position = |id: usize| order.iter().position(|&x| x == id).unwrap();
        for from in 0..dag.len() {
            for &to in dag.successors(from) {
                assert!(position(from) < position(to), "edge {from}->{to} violated");
            }
        }
    }

    #[test]
    fn cycles_are_detected() {
        let mut dag = Dag::new();
        let a = dag.add_node();
        let b = dag.add_node();
        let c = dag.add_node();
        dag.add_edge(a, b);
        dag.add_edge(b, c);
        assert!(dag.is_acyclic());
        dag.add_edge(c, a);
        assert!(!dag.is_acyclic());
        assert_eq!(dag.topological_order(), None);
        // A cyclic graph can still report a (now empty) ready set.
        assert!(dag.ready_set().is_empty());
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edges_panic() {
        let mut dag = Dag::new();
        let a = dag.add_node();
        dag.add_edge(a, a);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edges_panic() {
        let mut dag = Dag::new();
        let a = dag.add_node();
        dag.add_edge(a, 7);
    }
}
