//! The dependency-DAG round scheduler: dissolve the phase barriers.
//!
//! The barrier scheduler runs every round as three strict phases (deliver → node/RAC →
//! housekeeping), so a message whose content is final at scheduling time still waits for
//! the next phase boundary before verification even starts, and a straggler node idles
//! every worker at each phase join. This module replaces the barriers with a **work-item
//! DAG** executed by a work-stealing pool the moment each item's in-edges are satisfied:
//!
//! * [`dag::Dag`] — the node/edge store with in-degree tracking, ready-set computation
//!   and cycle detection;
//! * [`dependency_builder::RoundDagBuilder`] — derives the edges from the simulator's
//!   existing determinism invariants (committed ingress shards before a node's RAC work;
//!   speculative verify after only the sender's output; `(SimTime, seq)`-ordered verdicts
//!   before a shard-level apply);
//! * [`executor::DagExecutor`] — the scoped work-stealing thread pool with slot-indexed
//!   result merge and busy/idle accounting.
//!
//! The scheduler is selected per simulation via
//! [`crate::simulation::SimulationConfig::with_round_scheduler`] (the `--round-scheduler`
//! knob); the barrier path remains the reference implementation, and every DAG run is
//! byte-identical to it — `tests/dag_determinism.rs` and the CI determinism matrix
//! enforce the bar.

// The store is the module the directory is named for; `dag::dag::Dag` is never
// written out — the type is re-exported at this level.
#[allow(clippy::module_inception)]
pub mod dag;
pub mod dependency_builder;
pub mod executor;

pub use dag::Dag;
pub use dependency_builder::{RoundDagBuilder, RoundItem, RoundPlan};
pub use executor::{DagExecutor, ExecReport, MAX_WORKERS};

/// Scheduler-quality accounting, accumulated per round by both schedulers with the same
/// formula: `idle = workers × round_wall − Σ busy`, where `busy` sums the instrumented
/// payload work (node rounds, verifies, applies, accounting) and `workers` is the round
/// pool width (`max(parallelism, delivery_parallelism)`). Serial sections therefore count
/// `workers − 1` idle lanes in *both* modes, which is what makes the two numbers
/// comparable: the `dag_scheduler_scaling` benchmark asserts the DAG scheduler's idle
/// time is strictly below the barrier's at pool widths ≥ 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Rounds accounted.
    pub rounds: u64,
    /// Work items executed (DAG mode) or payload units timed (barrier mode).
    pub items: u64,
    /// Items stolen across executor workers (always 0 in barrier mode).
    pub steals: u64,
    /// Wall-clock nanoseconds spent inside accounted rounds.
    pub wall_nanos: u64,
    /// Worker-nanoseconds spent executing payload work.
    pub busy_nanos: u64,
    /// Worker-nanoseconds not spent executing payload work while a round was in progress.
    pub idle_nanos: u64,
}

impl SchedulerStats {
    /// Folds one round into the totals: `wall_nanos` elapsed on the driving thread with
    /// `workers` nominal lanes, of which `busy_nanos` worker-nanoseconds did payload work.
    pub fn record_round(&mut self, workers: usize, wall_nanos: u64, busy_nanos: u64) {
        self.rounds += 1;
        self.wall_nanos += wall_nanos;
        self.busy_nanos += busy_nanos;
        self.idle_nanos += (workers as u64 * wall_nanos).saturating_sub(busy_nanos);
    }

    /// Adds executed-item and steal counts (DAG mode).
    pub fn record_items(&mut self, items: u64, steals: u64) {
        self.items += items;
        self.steals += steals;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_is_wall_minus_busy_over_the_pool() {
        let mut stats = SchedulerStats::default();
        stats.record_round(4, 1_000, 2_500);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.idle_nanos, 4 * 1_000 - 2_500);
        // Busy exceeding workers × wall (clock skew across cores) saturates to zero idle.
        stats.record_round(1, 100, 1_000);
        assert_eq!(stats.idle_nanos, 4 * 1_000 - 2_500);
        assert_eq!(stats.wall_nanos, 1_100);
        stats.record_items(42, 7);
        assert_eq!(stats.items, 42);
        assert_eq!(stats.steals, 7);
    }
}
