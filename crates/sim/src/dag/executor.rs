//! The work-stealing DAG executor: runs items the moment their in-edges are satisfied.
//!
//! Each worker owns a deque of ready item ids. Finishing an item atomically decrements the
//! in-degree of its successors; an item whose last in-edge was just satisfied is pushed
//! onto the *finishing* worker's deque (locality: a node round unlocked by its last apply
//! tends to stay on the worker that ran that apply). A worker whose own deque is empty
//! steals from its neighbours. There is no barrier anywhere — the pool runs until every
//! item has executed.
//!
//! **Determinism is the caller's job, by construction.** The executor makes no ordering
//! promise beyond the DAG's edges, so callers must arrange (as the round builder does)
//! that any two unordered items touch disjoint state — then the execution order is
//! unobservable and a run is byte-identical to the barrier reference for any worker count.
//!
//! The report's [`ExecReport::idle_nanos`] is the scheduler-quality metric the
//! `dag_scheduler_scaling` benchmark compares against the barrier path: worker-nanoseconds
//! spent spinning for work while the DAG still had unfinished items.

use super::dag::Dag;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Hard cap on executor workers, matching the engine's and the delivery plane's caps.
pub const MAX_WORKERS: usize = 64;

/// What one [`DagExecutor::run`] did, for scheduler-quality accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Items executed (always the DAG's full item count on return).
    pub executed: u64,
    /// Items a worker popped from another worker's deque.
    pub steals: u64,
    /// Total worker-nanoseconds spent executing items.
    pub busy_nanos: u64,
    /// Total worker-nanoseconds spent waiting for an item to become ready.
    pub idle_nanos: u64,
}

/// A fixed-width work-stealing pool over one [`Dag`].
///
/// The pool is scoped: [`DagExecutor::run`] spawns its workers, drives the DAG to
/// completion and joins them before returning, so the work closure may borrow from the
/// caller's stack.
#[derive(Debug, Clone, Copy)]
pub struct DagExecutor {
    workers: usize,
}

impl DagExecutor {
    /// Creates an executor with `workers` threads (clamped to `1..=`[`MAX_WORKERS`]).
    pub fn new(workers: usize) -> Self {
        DagExecutor {
            workers: workers.clamp(1, MAX_WORKERS),
        }
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every item of `dag`, calling `work(id)` exactly once per item, never before
    /// all of the item's in-edges are satisfied.
    ///
    /// `work` is infallible by signature: callers route errors through result slots
    /// indexed by item id (exactly like the barrier engine's slot merge), which keeps
    /// error propagation deterministic and independent of execution order.
    ///
    /// # Panics
    /// If `dag` has a cycle (no schedule could ever satisfy its edges).
    pub fn run<F>(&self, dag: &Dag, work: F) -> ExecReport
    where
        F: Fn(usize) + Sync,
    {
        let total = dag.len();
        if total == 0 {
            return ExecReport::default();
        }
        assert!(dag.is_acyclic(), "cannot execute a cyclic work graph");

        let workers = self.workers.min(total).max(1);
        if workers == 1 {
            return run_sequential(dag, &work);
        }

        let in_degrees: Vec<AtomicUsize> = (0..total)
            .map(|id| AtomicUsize::new(dag.in_degree(id)))
            .collect();
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        // Seed the initial ready set round-robin so every worker starts with work.
        for (position, id) in dag.ready_set().into_iter().enumerate() {
            queues[position % workers].lock().push_back(id);
        }
        let remaining = AtomicUsize::new(total);
        let steals = AtomicU64::new(0);
        let busy = AtomicU64::new(0);
        let idle = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let in_degrees = &in_degrees;
                let remaining = &remaining;
                let steals = &steals;
                let busy = &busy;
                let idle = &idle;
                let work = &work;
                scope.spawn(move || loop {
                    // Own deque first (LIFO: freshly-unlocked successors are cache-hot),
                    // then steal oldest items from the neighbours.
                    let mut item = queues[me].lock().pop_back();
                    if item.is_none() {
                        for offset in 1..workers {
                            let victim = (me + offset) % workers;
                            item = queues[victim].lock().pop_front();
                            if item.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    match item {
                        Some(id) => {
                            let started = Instant::now();
                            work(id);
                            busy.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            for &succ in dag.successors(id) {
                                if in_degrees[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                                    queues[me].lock().push_back(succ);
                                }
                            }
                            remaining.fetch_sub(1, Ordering::AcqRel);
                        }
                        None => {
                            if remaining.load(Ordering::Acquire) == 0 {
                                break;
                            }
                            // Every ready item is claimed and in flight on some other
                            // worker; spin until one of them unlocks a successor.
                            let waited = Instant::now();
                            std::thread::yield_now();
                            idle.fetch_add(waited.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                    }
                });
            }
        });

        ExecReport {
            executed: total as u64,
            steals: steals.into_inner(),
            busy_nanos: busy.into_inner(),
            idle_nanos: idle.into_inner(),
        }
    }
}

/// The single-worker path: a plain ready-queue walk on the calling thread — no spawns, no
/// spinning, zero idle by definition.
fn run_sequential<F: Fn(usize)>(dag: &Dag, work: &F) -> ExecReport {
    let mut in_degrees: Vec<usize> = (0..dag.len()).map(|id| dag.in_degree(id)).collect();
    let mut frontier: VecDeque<usize> = dag.ready_set().into();
    let mut executed = 0u64;
    let started = Instant::now();
    while let Some(id) = frontier.pop_front() {
        work(id);
        executed += 1;
        for &succ in dag.successors(id) {
            in_degrees[succ] -= 1;
            if in_degrees[succ] == 0 {
                frontier.push_back(succ);
            }
        }
    }
    debug_assert_eq!(executed as usize, dag.len(), "acyclic DAG fully executed");
    ExecReport {
        executed,
        steals: 0,
        busy_nanos: started.elapsed().as_nanos() as u64,
        idle_nanos: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A linear chain plus a wide fan-in, executed at several widths: every item runs
    /// exactly once, and no item runs before its predecessors.
    fn check_execution(workers: usize) {
        let mut dag = Dag::new();
        let head = dag.add_node();
        let mids: Vec<usize> = (0..10).map(|_| dag.add_node()).collect();
        let tail = dag.add_node();
        for &mid in &mids {
            dag.add_edge(head, mid);
            dag.add_edge(mid, tail);
        }
        let done: Vec<AtomicBool> = (0..dag.len()).map(|_| AtomicBool::new(false)).collect();
        let order_ok = AtomicBool::new(true);
        let report = DagExecutor::new(workers).run(&dag, |id| {
            if id != head && !done[head].load(Ordering::Acquire) {
                order_ok.store(false, Ordering::Release);
            }
            if id == tail && !mids.iter().all(|&m| done[m].load(Ordering::Acquire)) {
                order_ok.store(false, Ordering::Release);
            }
            assert!(
                !done[id].swap(true, Ordering::AcqRel),
                "item {id} ran twice"
            );
        });
        assert!(
            order_ok.load(Ordering::Acquire),
            "edge violated at {workers} workers"
        );
        assert_eq!(report.executed as usize, dag.len());
        assert!(done.iter().all(|d| d.load(Ordering::Acquire)));
    }

    #[test]
    fn executes_every_item_exactly_once_at_any_width() {
        for workers in [1, 2, 4, 8] {
            check_execution(workers);
        }
    }

    #[test]
    fn empty_dag_is_a_no_op() {
        let report = DagExecutor::new(4).run(&Dag::new(), |_| panic!("no items to run"));
        assert_eq!(report, ExecReport::default());
    }

    #[test]
    fn independent_items_all_run() {
        let mut dag = Dag::new();
        for _ in 0..100 {
            dag.add_node();
        }
        let count = AtomicUsize::new(0);
        let report = DagExecutor::new(4).run(&dag, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.into_inner(), 100);
        assert_eq!(report.executed, 100);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cyclic_graph_is_refused() {
        let mut dag = Dag::new();
        let a = dag.add_node();
        let b = dag.add_node();
        dag.add_edge(a, b);
        dag.add_edge(b, a);
        DagExecutor::new(2).run(&dag, |_| {});
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(DagExecutor::new(0).workers(), 1);
        assert_eq!(DagExecutor::new(1_000).workers(), MAX_WORKERS);
    }
}
