//! Derives the edges of one round's work-item DAG from the simulator's existing
//! determinism invariants.
//!
//! The barrier scheduler proves its determinism with three facts (see the
//! [`crate::delivery`] module docs); the builder turns each fact into an edge rule
//! instead of a barrier:
//!
//! 1. **A node's RAC work depends on its committed ingress shards.** Every apply item
//!    targeting `(destination AS, shard)` precedes that destination's node-round item —
//!    and nothing else does, so an AS with no due traffic starts its round immediately.
//! 2. **Speculative verify of a scheduled message depends only on its sender's output.**
//!    A sender's speculative-verify item follows its own accounting item (which assigns
//!    the messages' delivery times and sequence numbers) — verification is pure, so it
//!    needs no edge to the destination's state at all.
//! 3. **A shard-level apply depends on all earlier verdicts targeting that
//!    `(destination AS, shard)` in `(SimTime, seq)` order.** The round drains due events
//!    as one epoch, so all of a destination's due verdicts come from the destination's
//!    single verify item: one edge per apply inbox.
//!
//! Two serial chains keep the counters byte-identical to the barrier path: the delivery
//! accounting item follows every verify item (outcome counters accumulate in epoch
//! order), and the per-node accounting items form one chain in `AsId` order (overhead
//! counters and event sequence numbers are assigned exactly as the barrier's `AsId`-order
//! merge assigns them).

use super::dag::Dag;
use irec_types::AsId;
use std::collections::BTreeMap;

/// What one work item of a round DAG does. The driver in [`crate::simulation`] maps each
/// kind back to the state it operates on (inboxes, node cells, counter slots).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundItem {
    /// Verify every due, not-yet-cached PCB addressed to `dest` (pure; writes verdict
    /// slots).
    Verify {
        /// The destination AS whose inbox this item verifies.
        dest: AsId,
    },
    /// Account delivered/rejected/dropped outcomes of the whole epoch, in epoch order.
    Account,
    /// Commit the due PCBs of one `(destination AS, ingress shard)` inbox, in
    /// `(SimTime, seq)` order.
    ApplyPcb {
        /// The destination AS.
        dest: AsId,
        /// The destination's ingress-database shard.
        shard: usize,
    },
    /// Commit the due pull returns of one `(destination AS, path shard)` inbox, in
    /// `(SimTime, seq)` order.
    ApplyReturn {
        /// The destination AS.
        dest: AsId,
        /// The destination's path-service shard.
        shard: usize,
    },
    /// One AS's beaconing round core: origination, RAC execution, egress processing.
    NodeRound {
        /// The AS running its round.
        asn: AsId,
    },
    /// Account one AS's round output (overhead counters) and stage its outgoing messages
    /// with delivery times and sequence numbers. Chained in `AsId` order.
    AccountRound {
        /// The AS whose output is accounted.
        asn: AsId,
    },
    /// Speculatively verify the messages `asn` just scheduled, caching verdicts for the
    /// round that will deliver them.
    SpeculativeVerify {
        /// The AS whose scheduled messages are verified.
        asn: AsId,
    },
    /// One AS's round housekeeping: expiry eviction sweeps and send-counter reset.
    Housekeeping {
        /// The AS running housekeeping.
        asn: AsId,
    },
}

/// A built round plan: the DAG plus the item table mapping ids back to [`RoundItem`]s.
#[derive(Debug, Clone, Default)]
pub struct RoundPlan {
    /// The dependency graph over `items` (ids index into `items`).
    pub dag: Dag,
    /// What each DAG node does, indexed by item id.
    pub items: Vec<RoundItem>,
}

/// Builds one round's [`RoundPlan`], wiring the edge rules above as items are added.
///
/// The driver adds items in the canonical barrier order — verify inboxes (destination
/// ascending), the epoch accounting item, apply inboxes (key ascending), node rounds,
/// accounting chain, speculative verifies, housekeeping (each `AsId` ascending) — so item
/// ids are a stable function of the round's inputs.
#[derive(Debug, Default)]
pub struct RoundDagBuilder {
    dag: Dag,
    items: Vec<RoundItem>,
    verify_by_dest: BTreeMap<AsId, usize>,
    applies_by_dest: BTreeMap<AsId, Vec<usize>>,
    round_by_node: BTreeMap<AsId, usize>,
    account_round_by_node: BTreeMap<AsId, usize>,
    last_account_round: Option<usize>,
}

impl RoundDagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        RoundDagBuilder::default()
    }

    fn push(&mut self, item: RoundItem) -> usize {
        let id = self.dag.add_node();
        debug_assert_eq!(id, self.items.len());
        self.items.push(item);
        id
    }

    /// Adds the verify item for `dest`'s due PCB inbox. No in-edges: verification is pure,
    /// so it is ready the moment the round starts.
    pub fn add_verify(&mut self, dest: AsId) -> usize {
        let id = self.push(RoundItem::Verify { dest });
        self.verify_by_dest.insert(dest, id);
        id
    }

    /// Adds the epoch's outcome-accounting item, depending on every verify item added so
    /// far (counters accumulate in epoch order, over complete verdicts).
    pub fn add_account(&mut self) -> usize {
        let id = self.push(RoundItem::Account);
        let edges: Vec<usize> = self.verify_by_dest.values().copied().collect();
        for from in edges {
            self.dag.add_edge(from, id);
        }
        id
    }

    /// Adds the apply item for one `(dest, ingress shard)` PCB inbox: edge rule 3 — it
    /// depends on `dest`'s verify item (when one exists; an inbox whose verdicts were all
    /// cached by speculative verification has no verify item and starts immediately).
    pub fn add_apply_pcb(&mut self, dest: AsId, shard: usize) -> usize {
        let id = self.push(RoundItem::ApplyPcb { dest, shard });
        if let Some(&verify) = self.verify_by_dest.get(&dest) {
            self.dag.add_edge(verify, id);
        }
        self.applies_by_dest.entry(dest).or_default().push(id);
        id
    }

    /// Adds the apply item for one `(dest, path shard)` pull-return inbox. Pull returns
    /// need no verification, so the item has no in-edges — only the destination's node
    /// round waits for it.
    pub fn add_apply_return(&mut self, dest: AsId, shard: usize) -> usize {
        let id = self.push(RoundItem::ApplyReturn { dest, shard });
        self.applies_by_dest.entry(dest).or_default().push(id);
        id
    }

    /// Adds `asn`'s node-round item: edge rule 1 — it depends on every apply item
    /// targeting `asn` (its committed ingress shards and path shards), and nothing else.
    pub fn add_node_round(&mut self, asn: AsId) -> usize {
        let id = self.push(RoundItem::NodeRound { asn });
        if let Some(applies) = self.applies_by_dest.get(&asn) {
            for from in applies.clone() {
                self.dag.add_edge(from, id);
            }
        }
        self.round_by_node.insert(asn, id);
        id
    }

    /// Adds `asn`'s round-accounting item: depends on `asn`'s node round and on the
    /// previously added accounting item, forming one chain in insertion (= `AsId`) order
    /// so overhead counters and event sequence numbers are assigned exactly as the
    /// barrier's `AsId`-order merge assigns them.
    pub fn add_account_round(&mut self, asn: AsId) -> usize {
        let id = self.push(RoundItem::AccountRound { asn });
        if let Some(&round) = self.round_by_node.get(&asn) {
            self.dag.add_edge(round, id);
        }
        if let Some(prev) = self.last_account_round {
            self.dag.add_edge(prev, id);
        }
        self.last_account_round = Some(id);
        self.account_round_by_node.insert(asn, id);
        id
    }

    /// Adds `asn`'s speculative-verify item: edge rule 2 — it depends only on the sender's
    /// own accounting item (which fixed the messages' delivery times and sequence
    /// numbers), never on the destinations' state.
    pub fn add_speculative_verify(&mut self, asn: AsId) -> usize {
        let id = self.push(RoundItem::SpeculativeVerify { asn });
        if let Some(&account) = self.account_round_by_node.get(&asn) {
            self.dag.add_edge(account, id);
        }
        id
    }

    /// Adds `asn`'s housekeeping item, depending on `asn`'s node round (eviction sweeps
    /// run on the post-round databases, exactly as the barrier's phase 4 does).
    pub fn add_housekeeping(&mut self, asn: AsId) -> usize {
        let id = self.push(RoundItem::Housekeeping { asn });
        if let Some(&round) = self.round_by_node.get(&asn) {
            self.dag.add_edge(round, id);
        }
        id
    }

    /// Finishes the plan.
    ///
    /// # Panics
    /// If the edge rules produced a cycle — impossible for any input (every rule points
    /// from an earlier stage to a later one), so a panic here means the builder itself is
    /// broken.
    pub fn build(self) -> RoundPlan {
        assert!(self.dag.is_acyclic(), "round edge rules produced a cycle");
        RoundPlan {
            dag: self.dag,
            items: self.items,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asid(n: u64) -> AsId {
        AsId(n)
    }

    /// A representative round: two destinations with due PCB traffic (one across two
    /// shards), one pull return, three nodes.
    fn representative_plan() -> RoundPlan {
        let mut b = RoundDagBuilder::new();
        b.add_verify(asid(1));
        b.add_verify(asid(2));
        b.add_account();
        b.add_apply_pcb(asid(1), 0);
        b.add_apply_pcb(asid(1), 3);
        b.add_apply_pcb(asid(2), 1);
        b.add_apply_return(asid(2), 0);
        for n in 1..=3 {
            b.add_node_round(asid(n));
        }
        for n in 1..=3 {
            b.add_account_round(asid(n));
        }
        for n in 1..=3 {
            b.add_speculative_verify(asid(n));
        }
        for n in 1..=3 {
            b.add_housekeeping(asid(n));
        }
        b.build()
    }

    #[test]
    fn representative_round_is_acyclic_with_expected_ready_set() {
        let plan = representative_plan();
        assert!(plan.dag.is_acyclic());
        // Initially ready: both verify items, the pull-return apply, and node 3's round
        // (no due traffic targets AS3).
        let ready: Vec<RoundItem> = plan
            .dag
            .ready_set()
            .into_iter()
            .map(|id| plan.items[id])
            .collect();
        assert!(ready.contains(&RoundItem::Verify { dest: asid(1) }));
        assert!(ready.contains(&RoundItem::Verify { dest: asid(2) }));
        assert!(ready.contains(&RoundItem::ApplyReturn {
            dest: asid(2),
            shard: 0
        }));
        assert!(ready.contains(&RoundItem::NodeRound { asn: asid(3) }));
        // Not ready: anything depending on verification or node rounds.
        assert!(!ready.contains(&RoundItem::Account));
        assert!(!ready.contains(&RoundItem::ApplyPcb {
            dest: asid(1),
            shard: 0
        }));
        assert!(!ready.contains(&RoundItem::NodeRound { asn: asid(1) }));
        assert!(!ready.contains(&RoundItem::AccountRound { asn: asid(1) }));
    }

    #[test]
    fn edge_rules_point_where_the_invariants_say() {
        let plan = representative_plan();
        let id_of = |item: RoundItem| plan.items.iter().position(|&i| i == item).unwrap();
        let has_edge =
            |from: RoundItem, to: RoundItem| plan.dag.successors(id_of(from)).contains(&id_of(to));
        // Rule 3: each PCB apply inbox hangs off its destination's verify item.
        assert!(has_edge(
            RoundItem::Verify { dest: asid(1) },
            RoundItem::ApplyPcb {
                dest: asid(1),
                shard: 0
            }
        ));
        assert!(has_edge(
            RoundItem::Verify { dest: asid(1) },
            RoundItem::ApplyPcb {
                dest: asid(1),
                shard: 3
            }
        ));
        assert!(!has_edge(
            RoundItem::Verify { dest: asid(2) },
            RoundItem::ApplyPcb {
                dest: asid(1),
                shard: 0
            }
        ));
        // Rule 1: a node round waits for exactly its own applies (both kinds).
        assert!(has_edge(
            RoundItem::ApplyPcb {
                dest: asid(2),
                shard: 1
            },
            RoundItem::NodeRound { asn: asid(2) }
        ));
        assert!(has_edge(
            RoundItem::ApplyReturn {
                dest: asid(2),
                shard: 0
            },
            RoundItem::NodeRound { asn: asid(2) }
        ));
        assert!(!has_edge(
            RoundItem::ApplyPcb {
                dest: asid(1),
                shard: 0
            },
            RoundItem::NodeRound { asn: asid(2) }
        ));
        // Rule 2: speculative verify hangs off the sender's accounting item only.
        assert!(has_edge(
            RoundItem::AccountRound { asn: asid(2) },
            RoundItem::SpeculativeVerify { asn: asid(2) }
        ));
        assert_eq!(
            plan.dag
                .in_degree(id_of(RoundItem::SpeculativeVerify { asn: asid(2) })),
            1
        );
        // Epoch accounting follows every verify.
        assert!(has_edge(
            RoundItem::Verify { dest: asid(1) },
            RoundItem::Account
        ));
        assert!(has_edge(
            RoundItem::Verify { dest: asid(2) },
            RoundItem::Account
        ));
        // The accounting chain is AsId-ordered.
        assert!(has_edge(
            RoundItem::AccountRound { asn: asid(1) },
            RoundItem::AccountRound { asn: asid(2) }
        ));
        assert!(has_edge(
            RoundItem::NodeRound { asn: asid(3) },
            RoundItem::Housekeeping { asn: asid(3) }
        ));
    }

    #[test]
    fn cached_only_inbox_has_no_verify_edge() {
        // All of AS1's verdicts were cached by speculative verification: no verify item
        // exists, and the apply inbox is ready immediately.
        let mut b = RoundDagBuilder::new();
        let apply = b.add_apply_pcb(asid(1), 0);
        b.add_node_round(asid(1));
        let plan = b.build();
        assert_eq!(plan.dag.in_degree(apply), 0);
        assert!(plan.dag.ready_set().contains(&apply));
    }

    #[test]
    fn delivery_only_plan_works_without_node_items() {
        // The final `deliver_until(MAX)` flush builds verify/account/apply items only.
        let mut b = RoundDagBuilder::new();
        b.add_verify(asid(1));
        b.add_account();
        b.add_apply_pcb(asid(1), 0);
        b.add_apply_return(asid(1), 0);
        let plan = b.build();
        assert!(plan.dag.is_acyclic());
        assert_eq!(plan.dag.len(), 4);
        assert_eq!(plan.dag.topological_order().unwrap().len(), 4);
    }
}
