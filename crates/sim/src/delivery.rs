//! The parallel message-delivery plane.
//!
//! `Simulation::deliver_until` used to drain the whole event queue on one thread — the last
//! big serial section on the round hot path after the RAC/node phase was parallelized. This
//! module replaces that monolithic drain with **time-epoch scheduling** and a two-stage
//! pipeline per epoch:
//!
//! 1. **Schedule.** Due events are popped from the deterministic [`EventQueue`] in
//!    `(SimTime, seq)` order and collected into a bounded *epoch*. Within the epoch the PCB
//!    messages are partitioned into **per-destination-AS inboxes** (one inbox per receiving
//!    node, in `AsId` order).
//! 2. **Verify (parallel).** The expensive per-message work — signature, expiry and policy
//!    checks via [`IrecNode::verify_message`] — runs over `std::thread::scope` workers, one
//!    inbox per work item, claimed through an atomic cursor exactly like the RAC execution
//!    engine (`irec_core::engine`). Verdicts land in per-event slots indexed by the event's
//!    epoch position, so the merge order is independent of scheduling.
//! 3. **Apply (sharded).** Verdicts are committed through the receiving nodes' ingress
//!    gateways: accepted beacons enter the destination's ingress database, rejects and
//!    missing-destination drops are accounted. With one worker the walk is fully serial in
//!    `(SimTime, seq)` order; with more, a serial accounting pass partitions the epoch's
//!    commits into per-`(destination AS, ingress shard)` inboxes — the ingress database is
//!    sharded by origin-AS hash (`irec_core::ShardedIngressDb`) — and the inboxes commit
//!    concurrently over scoped workers via [`IrecNode::apply_message_in_shard`]. Pull
//!    returns commit the same way: the path service is sharded by **destination-AS** hash
//!    (`irec_core::ShardedPathService`), so the accounting pass partitions them into
//!    per-`(destination AS, path shard)` inboxes committed concurrently via
//!    [`IrecNode::handle_pull_return_in_shard`] instead of serializing in the accounting
//!    pass.
//!
//! **Determinism.** The apply stage preserves `(SimTime, seq)` order *within* each
//! `(node, shard)` inbox, and commits across different inboxes touch disjoint state: the
//! dedup set and the statistics both live in the origin's shard, every beacon of one
//! origin lands in the same shard, and every pull return for one destination lands in the
//! same path shard (registrations for different path-service keys commute observably —
//! the map is key-sorted — and same-key registrations keep epoch order). The verify stage
//! is pure: a verdict depends only on the message, its delivery time, and immutable node
//! state (keys, policy) — never on what other in-flight messages of the same epoch
//! commit. Delivery counters are accounted in the serial pass in epoch order. A run with
//! any `parallelism` value — and any ingress/path shard count — is therefore
//! byte-identical to a sequential run, which `tests/delivery_determinism.rs`,
//! `tests/pd_determinism.rs` and the CI determinism job all enforce.
//!
//! **DAG scheduler mode.** Under `--round-scheduler dag` (see [`crate::dag`]) the plane is
//! not drained by `deliver_until` at all: the round driver pops the due epoch via
//! [`DeliveryPlane::drain_due`], turns the same verify/apply inboxes into work-DAG nodes
//! executed by a shared work-stealing pool, and merges the outcome back through
//! [`DeliveryPlane::add_stats`]. The plane additionally carries a speculative-verdict
//! cache ([`DeliveryPlane::cache_verdicts`]): verdicts for *next* round's events, computed
//! while the current round's node phase still runs (verify purity makes them valid early),
//! keyed by event sequence number and consumed when the event is drained. Barrier-mode
//! paths never populate or read the cache.

use crate::event::{Event, EventQueue};
use irec_core::{engine::run_claimed, IrecNode, PcbMessage, PullReturn};
use irec_types::{AsId, IfId, LinkId, Result, SimTime};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Hard cap on delivery workers, matching the RAC engine's cap.
pub const MAX_WORKERS: usize = 64;

/// Upper bound on the number of events collected into one epoch, bounding the memory held
/// outside the queue during a large drain (e.g. the final `deliver_until(SimTime::MAX)`
/// flush). Delivery cannot schedule new events, so draining in bounded chunks is exact.
pub const MAX_EPOCH_EVENTS: usize = 4096;

/// Delivery accounting, split by outcome.
///
/// The pre-delivery-plane simulator lumped the last two counters into one `dropped` figure;
/// they answer different questions (is the topology/failure model losing messages vs. is
/// the ingress gateway refusing them), so the plane tracks them separately.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Messages delivered to (and accepted or deduplicated by) their destination node.
    pub delivered: u64,
    /// Messages addressed to an AS that has no node (e.g. removed by failure injection),
    /// including pending events purged when their destination node was removed or before
    /// it was re-added (see `Simulation::remove_node` / `Simulation::add_node`).
    pub dropped_no_node: u64,
    /// PCB messages lost because the link they were sent over went down (churn injection)
    /// before their delivery time. Checked before the missing-node outcome, so a message
    /// over a downed link towards a removed AS counts here, not in `dropped_no_node`.
    pub dropped_link_down: u64,
    /// PCB messages rejected by the receiving ingress gateway (signature, expiry or policy
    /// failures).
    pub rejected: u64,
}

impl DeliveryStats {
    /// The legacy aggregate: everything that was not delivered.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_no_node + self.dropped_link_down + self.rejected
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: DeliveryStats) {
        self.delivered += other.delivered;
        self.dropped_no_node += other.dropped_no_node;
        self.dropped_link_down += other.dropped_link_down;
        self.rejected += other.rejected;
    }
}

/// The message-delivery plane: the deterministic event queue plus the epoch pipeline that
/// drains it. Cloning copies the pending events and accounting, so a cloned simulation
/// snapshot delivers identically.
#[derive(Debug, Clone)]
pub struct DeliveryPlane {
    queue: EventQueue,
    /// Worker threads for the verify stage; `<= 1` verifies inline during the apply walk.
    parallelism: usize,
    stats: DeliveryStats,
    /// Verdicts precomputed by the DAG scheduler's speculative-verify items, keyed by the
    /// event's queue sequence number (unique per plane lifetime, so a verdict can never be
    /// applied to the wrong event). Entries are consumed when their event is drained.
    /// Always empty under the barrier scheduler. Cloned with the plane: a snapshot's
    /// in-flight events replay with the same precomputed verdicts.
    verdict_cache: HashMap<u64, Result<()>>,
    /// Links currently down (churn injection), with the two `(AS, interface)` endpoints
    /// each was resolved to when it was taken down. A PCB whose `(from_as, from_if)`
    /// endpoint belongs to a downed link is dropped at delivery time — evaluated against
    /// the state at the drain, so in-flight messages scheduled before the flap drop too.
    /// Cloned with the plane: a snapshot replays the same link state.
    down_links: BTreeMap<LinkId, [(AsId, IfId); 2]>,
    /// The endpoint set derived from [`DeliveryPlane::down_links`], for O(log n) per-event
    /// checks. An `(AS, interface)` pair belongs to exactly one link, so membership is
    /// equivalent to "the message's egress link is down".
    down_endpoints: BTreeSet<(AsId, IfId)>,
}

impl Default for DeliveryPlane {
    /// A sequential plane (one verify worker), honouring the same clamp as
    /// [`DeliveryPlane::new`].
    fn default() -> Self {
        DeliveryPlane::new(1)
    }
}

impl DeliveryPlane {
    /// Creates an empty plane with the given verify-stage worker count (clamped to
    /// [`MAX_WORKERS`]).
    pub fn new(parallelism: usize) -> Self {
        DeliveryPlane {
            queue: EventQueue::new(),
            parallelism: parallelism.clamp(1, MAX_WORKERS),
            stats: DeliveryStats::default(),
            verdict_cache: HashMap::new(),
            down_links: BTreeMap::new(),
            down_endpoints: BTreeSet::new(),
        }
    }

    /// Marks `link` down: from now until [`DeliveryPlane::set_link_up`], every PCB whose
    /// `(from_as, from_if)` matches either endpoint drops at delivery time (counted in
    /// [`DeliveryStats::dropped_link_down`]). Idempotent; the caller resolves the
    /// endpoints from the topology (the plane deliberately has no topology access).
    pub fn set_link_down(&mut self, link: LinkId, endpoints: [(AsId, IfId); 2]) {
        if self.down_links.insert(link, endpoints).is_none() {
            for endpoint in endpoints {
                self.down_endpoints.insert(endpoint);
            }
        }
    }

    /// Brings `link` back up. Messages scheduled while it was down but delivered after
    /// this call are delivered normally — the drop check reads the state at drain time.
    /// Idempotent; unknown (or already-up) links are a no-op.
    pub fn set_link_up(&mut self, link: LinkId) {
        if let Some(endpoints) = self.down_links.remove(&link) {
            for endpoint in endpoints {
                self.down_endpoints.remove(&endpoint);
            }
        }
    }

    /// Whether `link` is currently down.
    pub fn is_link_down(&self, link: LinkId) -> bool {
        self.down_links.contains_key(&link)
    }

    /// Whether the `(AS, interface)` endpoint belongs to a currently-downed link.
    pub fn is_endpoint_down(&self, asn: AsId, ifid: IfId) -> bool {
        self.down_endpoints.contains(&(asn, ifid))
    }

    /// The currently-downed links, in `LinkId` order.
    pub fn downed_links(&self) -> Vec<LinkId> {
        self.down_links.keys().copied().collect()
    }

    /// Node-removal hygiene: purges every pending event addressed to `asn`, accounts each
    /// as [`DeliveryStats::dropped_no_node`], and drops any speculative verdicts cached
    /// for the purged events (they will never be drained, so the entries would leak).
    /// Returns the number of events purged.
    ///
    /// Called by `Simulation::remove_node` (messages in flight towards the removed AS)
    /// and by `Simulation::add_node` (messages sent while the AS had no node), so a node
    /// re-added under the same `AsId` can never observe pre-removal traffic.
    pub fn purge_addressed_to(&mut self, asn: AsId) -> u64 {
        let purged = self.queue.purge_addressed_to(asn);
        let count = purged.len() as u64;
        for (_, seq, _) in &purged {
            self.verdict_cache.remove(seq);
        }
        self.stats.dropped_no_node += count;
        count
    }

    /// Schedules `event` for delivery at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        self.queue.schedule(at, event);
    }

    /// Schedules `event` at `at` under a caller-assigned sequence number (see
    /// [`EventQueue::schedule_preassigned`]); the DAG scheduler's post-round push of its
    /// staged events.
    pub fn schedule_preassigned(&mut self, at: SimTime, seq: u64, event: Event) {
        self.queue.schedule_preassigned(at, seq, event);
    }

    /// The sequence number the next scheduled event will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.queue.next_seq()
    }

    /// Number of events still in flight.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The delivery accounting so far.
    pub fn stats(&self) -> DeliveryStats {
        self.stats
    }

    /// Folds a delivery-outcome delta into the accounting — the DAG scheduler computes
    /// each epoch's outcomes in its own work items and merges them here after the round's
    /// scope joins.
    pub fn add_stats(&mut self, delta: DeliveryStats) {
        self.stats.merge(delta);
    }

    /// The configured verify-stage worker count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Pops every event due at or before `until` — at most `max_events` of them — in
    /// `(SimTime, seq)` order, *without* delivering. The DAG scheduler drains the due
    /// epoch through this, partitions it into work items, and merges the outcome back via
    /// [`DeliveryPlane::add_stats`] / [`DeliveryPlane::schedule_preassigned`].
    pub fn drain_due(&mut self, until: SimTime, max_events: usize) -> Vec<(SimTime, u64, Event)> {
        let mut due = Vec::new();
        while due.len() < max_events {
            match self.queue.pop_entry_until(until) {
                Some(entry) => due.push(entry),
                None => break,
            }
        }
        due
    }

    /// Removes and returns the speculatively-computed verdict for the event with queue
    /// sequence number `seq`, if one was cached.
    pub fn take_cached_verdict(&mut self, seq: u64) -> Option<Result<()>> {
        self.verdict_cache.remove(&seq)
    }

    /// Caches speculatively-computed verdicts keyed by event sequence number, to be
    /// consumed by the epoch that drains those events.
    pub fn cache_verdicts(&mut self, verdicts: impl IntoIterator<Item = (u64, Result<()>)>) {
        self.verdict_cache.extend(verdicts);
    }

    /// Number of speculative verdicts currently cached (diagnostics and tests).
    pub fn cached_verdicts(&self) -> usize {
        self.verdict_cache.len()
    }

    /// Delivers every event due at or before `until` to `nodes`, in `(SimTime, seq)` order.
    pub fn deliver_until(&mut self, nodes: &mut BTreeMap<AsId, IrecNode>, until: SimTime) {
        let busy = AtomicU64::new(0);
        self.deliver_until_probed(nodes, until, &busy);
    }

    /// [`DeliveryPlane::deliver_until`] with a busy-time probe: every verify, apply and
    /// serial-walk payload unit's execution time accumulates into `busy_nanos`, feeding
    /// the barrier scheduler's per-round idle accounting (see
    /// [`crate::dag::SchedulerStats`]).
    pub fn deliver_until_probed(
        &mut self,
        nodes: &mut BTreeMap<AsId, IrecNode>,
        until: SimTime,
        busy_nanos: &AtomicU64,
    ) {
        loop {
            // Epoch collection: due events in (at, seq) order, bounded per pass.
            let mut epoch: Vec<(SimTime, Event)> = Vec::new();
            while epoch.len() < MAX_EPOCH_EVENTS {
                match self.queue.pop_until(until) {
                    Some(entry) => epoch.push(entry),
                    None => break,
                }
            }
            if epoch.is_empty() {
                return;
            }

            // Verify stage: fan the per-node inboxes out over workers. With one worker the
            // apply walk below verifies inline instead (identical verdicts either way).
            let mut verdicts = if self.parallelism > 1 {
                verify_epoch(
                    nodes,
                    &epoch,
                    &self.down_endpoints,
                    self.parallelism,
                    busy_nanos,
                )
            } else {
                Vec::new()
            };

            if self.parallelism > 1 {
                self.apply_epoch_sharded(nodes, epoch, verdicts, busy_nanos);
                continue;
            }

            // Sequential apply stage: commit in epoch (= delivery) order.
            for (index, (at, event)) in epoch.into_iter().enumerate() {
                let started = Instant::now();
                match event {
                    // The downed-link check precedes the missing-node check in every
                    // delivery path, so the counter split is identical across them.
                    Event::DeliverPcb(message)
                        if self.is_endpoint_down(message.from_as, message.from_if) =>
                    {
                        self.stats.dropped_link_down += 1;
                    }
                    Event::DeliverPcb(message) => match nodes.get_mut(&message.to_as) {
                        Some(node) => {
                            let verdict = verdicts
                                .get_mut(index)
                                .and_then(Option::take)
                                .unwrap_or_else(|| node.verify_message(&message, at));
                            match node.apply_message(message, at, verdict) {
                                Ok(()) => self.stats.delivered += 1,
                                Err(_) => self.stats.rejected += 1,
                            }
                        }
                        // The addressed AS has no node (e.g. removed by failure injection):
                        // the message is lost and must be accounted, not silently discarded.
                        None => self.stats.dropped_no_node += 1,
                    },
                    Event::DeliverPullReturn(ret) => match nodes.get_mut(&ret.to_as) {
                        Some(node) => {
                            node.handle_pull_return(ret, at);
                            self.stats.delivered += 1;
                        }
                        None => self.stats.dropped_no_node += 1,
                    },
                }
                busy_nanos.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }

    /// The sharded apply stage: one serial pass over the epoch in `(SimTime, seq)` order
    /// accounts every outcome (exactly as the sequential walk would) and partitions the
    /// commits into shard inboxes — PCB commits into per-`(destination AS, ingress shard)`
    /// inboxes, pull returns into per-`(destination AS, path shard)` inboxes; all inboxes
    /// then commit concurrently over one scoped worker pool. Each inbox preserves epoch
    /// order internally, and different inboxes touch disjoint node state (the origin's
    /// ingress shard owns the dedup set and stats; the destination's path shard owns the
    /// registrations), so the result is byte-identical to the sequential walk for any
    /// worker count and any shard count.
    ///
    /// Outcome accounting needs no commit result: `IrecNode::apply_message` fails exactly
    /// when the precomputed verdict is an error (duplicates commit as `Ok`), and pull
    /// returns count as delivered whether or not the beacon yields a registrable path, so
    /// delivered/rejected are known in the serial pass.
    fn apply_epoch_sharded(
        &mut self,
        nodes: &mut BTreeMap<AsId, IrecNode>,
        epoch: Vec<(SimTime, Event)>,
        mut verdicts: Vec<Option<Result<()>>>,
        busy_nanos: &AtomicU64,
    ) {
        /// One pending PCB commit: delivery time, message, precomputed verdict.
        type Commit = (SimTime, PcbMessage, Result<()>);
        /// One pending pull-return registration.
        type ReturnCommit = (SimTime, PullReturn);
        struct ShardInbox<T> {
            asn: AsId,
            shard: usize,
            items: Mutex<Vec<T>>,
        }
        fn into_inboxes<T>(map: BTreeMap<(AsId, usize), Vec<T>>) -> Vec<ShardInbox<T>> {
            map.into_iter()
                .map(|((asn, shard), items)| ShardInbox {
                    asn,
                    shard,
                    items: Mutex::new(items),
                })
                .collect()
        }
        let mut commits: BTreeMap<(AsId, usize), Vec<Commit>> = BTreeMap::new();
        let mut returns: BTreeMap<(AsId, usize), Vec<ReturnCommit>> = BTreeMap::new();
        for (index, (at, event)) in epoch.into_iter().enumerate() {
            match event {
                // Same check order as the sequential walk: downed link before missing
                // node, so the counter split matches byte for byte.
                Event::DeliverPcb(message)
                    if self.is_endpoint_down(message.from_as, message.from_if) =>
                {
                    self.stats.dropped_link_down += 1;
                }
                Event::DeliverPcb(message) => match nodes.get(&message.to_as) {
                    Some(node) => {
                        let verdict = verdicts
                            .get_mut(index)
                            .and_then(Option::take)
                            .unwrap_or_else(|| node.verify_message(&message, at));
                        match verdict {
                            Ok(()) => self.stats.delivered += 1,
                            Err(_) => self.stats.rejected += 1,
                        }
                        let shard = node.ingress_shard_of(message.pcb.origin);
                        commits
                            .entry((message.to_as, shard))
                            .or_default()
                            .push((at, message, verdict));
                    }
                    None => self.stats.dropped_no_node += 1,
                },
                Event::DeliverPullReturn(ret) => match nodes.get(&ret.to_as) {
                    Some(node) => {
                        self.stats.delivered += 1;
                        // The registered path's destination is the AS the return came
                        // from; that AS determines the path-service shard.
                        let shard = node.path_shard_of(ret.from_as);
                        returns
                            .entry((ret.to_as, shard))
                            .or_default()
                            .push((at, ret));
                    }
                    None => self.stats.dropped_no_node += 1,
                },
            }
        }
        if commits.is_empty() && returns.is_empty() {
            return;
        }
        let commits = into_inboxes(commits);
        let returns = into_inboxes(returns);
        let total_inboxes = commits.len() + returns.len();
        let nodes = &*nodes;
        // One claim space over both inbox kinds: PCB-commit inboxes first, then
        // pull-return inboxes.
        run_claimed(
            total_inboxes,
            self.parallelism,
            Some(busy_nanos),
            |claimed| {
                if let Some(inbox) = commits.get(claimed) {
                    let node = nodes
                        .get(&inbox.asn)
                        .expect("inbox destinations checked in the accounting pass");
                    let items = std::mem::take(&mut *inbox.items.lock());
                    for (at, message, verdict) in items {
                        // The outcome was already accounted; the commit mutates only
                        // the shard's dedup set, storage and gateway counters.
                        let _ = node.apply_message_in_shard(inbox.shard, message, at, verdict);
                    }
                } else {
                    let inbox = &returns[claimed - commits.len()];
                    let node = nodes
                        .get(&inbox.asn)
                        .expect("inbox destinations checked in the accounting pass");
                    let items = std::mem::take(&mut *inbox.items.lock());
                    for (at, ret) in items {
                        node.handle_pull_return_in_shard(inbox.shard, ret, at);
                    }
                }
            },
        );
    }
}

/// Runs the parallel verify stage over one epoch: partitions the PCB messages into
/// per-destination-AS inboxes and verifies each inbox on whatever worker claims it,
/// writing verdicts into slots indexed by epoch position.
///
/// Returns one slot per epoch event; `None` for events that need no verification (pull
/// returns, messages to missing nodes).
fn verify_epoch(
    nodes: &BTreeMap<AsId, IrecNode>,
    epoch: &[(SimTime, Event)],
    down_endpoints: &BTreeSet<(AsId, IfId)>,
    parallelism: usize,
    busy_nanos: &AtomicU64,
) -> Vec<Option<Result<()>>> {
    // Inboxes in AsId order; each holds the epoch indices addressed to that node.
    // Messages over downed links are skipped: the apply pass drops them unverified.
    let mut by_destination: BTreeMap<AsId, Vec<usize>> = BTreeMap::new();
    for (index, (_, event)) in epoch.iter().enumerate() {
        if let Event::DeliverPcb(message) = event {
            if nodes.contains_key(&message.to_as)
                && !down_endpoints.contains(&(message.from_as, message.from_if))
            {
                by_destination.entry(message.to_as).or_default().push(index);
            }
        }
    }
    if by_destination.is_empty() {
        // Nothing to verify (only pull returns / missing-node messages): skip the slot
        // allocation and worker spawn; the apply walk verifies inline on empty slots.
        return Vec::new();
    }
    let inboxes: Vec<(&IrecNode, Vec<usize>)> = by_destination
        .into_iter()
        .map(|(asn, indices)| (nodes.get(&asn).expect("destination checked above"), indices))
        .collect();

    let slots: Vec<Mutex<Option<Result<()>>>> = epoch.iter().map(|_| Mutex::new(None)).collect();
    run_claimed(inboxes.len(), parallelism, Some(busy_nanos), |claimed| {
        let (node, indices) = &inboxes[claimed];
        for &index in indices {
            let (at, event) = &epoch[index];
            let Event::DeliverPcb(message) = event else {
                unreachable!("inboxes hold only PCB deliveries");
            };
            *slots[index].lock() = Some(node.verify_message(message, *at));
        }
    });
    slots.into_iter().map(Mutex::into_inner).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_core::{NodeConfig, PcbMessage, SharedAlgorithmStore};
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{Pcb, PcbExtensions, StaticInfo};
    use irec_topology::builder::figure1_topology;
    use irec_types::{Bandwidth, IfId, Latency, SimDuration};
    use std::sync::Arc;

    fn nodes_with_registry() -> (BTreeMap<AsId, IrecNode>, KeyRegistry) {
        let topology = Arc::new(figure1_topology());
        let registry = KeyRegistry::with_ases(42, 64);
        let store = SharedAlgorithmStore::new();
        let mut nodes = BTreeMap::new();
        for asn in topology.as_ids() {
            registry.register(asn);
            let node = IrecNode::new(
                asn,
                NodeConfig::default(),
                Arc::clone(&topology),
                registry.clone(),
                store.clone(),
            )
            .unwrap();
            nodes.insert(asn, node);
        }
        (nodes, registry)
    }

    fn message(registry: &KeyRegistry, origin: u64, seq: u64, to: u64, tampered: bool) -> Event {
        let mut pcb = Pcb::originate(
            AsId(origin),
            seq,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none(),
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None),
            &Signer::new(AsId(origin), registry.clone()),
        )
        .unwrap();
        if tampered {
            pcb.entries[0].static_info.link_latency = Latency::from_millis(1);
        }
        Event::DeliverPcb(PcbMessage {
            from_as: AsId(origin),
            from_if: IfId(1),
            to_as: AsId(to),
            to_if: IfId(1),
            pcb,
        })
    }

    fn run_plane(parallelism: usize) -> (DeliveryStats, Vec<(AsId, usize)>) {
        let (mut nodes, registry) = nodes_with_registry();
        let mut plane = DeliveryPlane::new(parallelism);
        // A mix of valid, tampered and undeliverable messages across several epochs'
        // worth of timestamps. Origin AS5 never receives, so no loop rejections interfere
        // with the tampered-count assertion.
        for seq in 0..20u64 {
            let to = 1 + (seq % 4); // delivered round-robin to AS1..AS4
            let tampered = seq % 5 == 0;
            plane.schedule(
                SimTime::from_micros(100 + seq * 7),
                message(&registry, 5, seq, to, tampered),
            );
        }
        // A message to an AS that has no node.
        plane.schedule(
            SimTime::from_micros(130),
            message(&registry, 5, 100, 99, false),
        );
        plane.deliver_until(&mut nodes, SimTime::MAX);
        let occupancy: Vec<(AsId, usize)> = nodes
            .iter()
            .map(|(asn, node)| (*asn, node.ingress().db().len()))
            .collect();
        (plane.stats(), occupancy)
    }

    #[test]
    fn plane_accounts_outcomes_separately() {
        let (stats, _) = run_plane(1);
        assert_eq!(stats.rejected, 4, "tampered messages rejected");
        assert_eq!(stats.dropped_no_node, 1);
        assert_eq!(stats.delivered, 16);
        assert_eq!(stats.dropped_total(), 5);
    }

    #[test]
    fn parallel_delivery_is_byte_identical_to_sequential() {
        let (sequential_stats, sequential_occupancy) = run_plane(1);
        for parallelism in [2, 4, 8] {
            let (stats, occupancy) = run_plane(parallelism);
            assert_eq!(
                stats, sequential_stats,
                "stats at parallelism {parallelism}"
            );
            assert_eq!(
                occupancy, sequential_occupancy,
                "ingress occupancy at parallelism {parallelism}"
            );
        }
    }

    #[test]
    fn epoch_bound_does_not_lose_events() {
        let (mut nodes, registry) = nodes_with_registry();
        let mut plane = DeliveryPlane::new(2);
        // More events than one epoch holds, all due at once; sequence numbers keep them
        // distinct beacons (distinct digests), so everything must be delivered.
        let count = (MAX_EPOCH_EVENTS + 100) as u64;
        for seq in 0..count {
            plane.schedule(
                SimTime::from_micros(50),
                message(&registry, 3, seq, 1, false),
            );
        }
        plane.deliver_until(&mut nodes, SimTime::MAX);
        assert_eq!(plane.pending(), 0);
        assert_eq!(plane.stats().delivered, count);
        assert_eq!(nodes[&AsId(1)].ingress().db().len() as u64, count);
    }

    #[test]
    fn deliver_until_respects_horizon() {
        let (mut nodes, registry) = nodes_with_registry();
        let mut plane = DeliveryPlane::new(4);
        plane.schedule(SimTime::from_micros(10), message(&registry, 3, 0, 1, false));
        plane.schedule(
            SimTime::from_micros(500),
            message(&registry, 3, 1, 1, false),
        );
        plane.deliver_until(&mut nodes, SimTime::from_micros(100));
        assert_eq!(plane.stats().delivered, 1);
        assert_eq!(plane.pending(), 1);
    }
}
