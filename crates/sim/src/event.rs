//! The discrete-event queue driving the simulation.

use irec_core::{PcbMessage, PullReturn};
use irec_types::{AsId, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a point in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A PCB arriving at a neighbor's ingress gateway.
    DeliverPcb(PcbMessage),
    /// A pull-based beacon returned to its origin AS.
    DeliverPullReturn(PullReturn),
}

/// Internal heap entry; the sequence number makes ordering total and FIFO for equal times,
/// which keeps the simulation deterministic.
#[derive(Debug, Clone)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue. Cloning copies the pending events and the
/// sequence counter, so a cloned simulation snapshot replays in-flight deliveries
/// identically.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` for time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` for time `at` under a caller-assigned sequence number, bumping
    /// the internal counter past it.
    ///
    /// The DAG round scheduler assigns sequence numbers inside its accounting chain (in
    /// `AsId` order, from [`EventQueue::next_seq`]) and pushes the staged events after the
    /// round's scope joins — the queue contents end up identical to the barrier
    /// scheduler's inline [`EventQueue::schedule`] calls. Callers must keep assigned
    /// sequence numbers unique; reuse would break the FIFO tiebreak's totality.
    pub fn schedule_preassigned(&mut self, at: SimTime, seq: u64, event: Event) {
        self.next_seq = self.next_seq.max(seq + 1);
        self.heap.push(Scheduled { at, seq, event });
    }

    /// The sequence number the next scheduled event will be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The time of the next pending event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Pops the next event if it is scheduled at or before `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<(SimTime, Event)> {
        if self.next_time()? <= until {
            let s = self.heap.pop().expect("peeked element exists");
            Some((s.at, s.event))
        } else {
            None
        }
    }

    /// Pops the next event regardless of time.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Like [`EventQueue::pop_until`], but also yields the event's sequence number — the
    /// key the DAG scheduler's speculative-verdict cache is indexed by.
    pub fn pop_entry_until(&mut self, until: SimTime) -> Option<(SimTime, u64, Event)> {
        if self.next_time()? <= until {
            let s = self.heap.pop().expect("peeked element exists");
            Some((s.at, s.seq, s.event))
        } else {
            None
        }
    }

    /// Removes every pending event addressed to `asn` (PCB deliveries and pull returns
    /// alike) and returns them in `(SimTime, seq)` order. The sequence counter is left
    /// untouched, so surviving and future events keep their total order.
    ///
    /// This is the event-queue half of node-removal hygiene: without it, a node removed
    /// and later re-added under the same `AsId` would receive messages sent before its
    /// removal (see `Simulation::remove_node` / `Simulation::add_node`).
    pub fn purge_addressed_to(&mut self, asn: AsId) -> Vec<(SimTime, u64, Event)> {
        let drained = std::mem::take(&mut self.heap).into_vec();
        let mut purged = Vec::new();
        let mut kept = Vec::with_capacity(drained.len());
        for scheduled in drained {
            let addressed = match &scheduled.event {
                Event::DeliverPcb(message) => message.to_as == asn,
                Event::DeliverPullReturn(ret) => ret.to_as == asn,
            };
            if addressed {
                purged.push(scheduled);
            } else {
                kept.push(scheduled);
            }
        }
        self.heap = BinaryHeap::from(kept);
        purged.sort_by_key(|s| (s.at, s.seq));
        purged.into_iter().map(|s| (s.at, s.seq, s.event)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_pcb::{Pcb, PcbExtensions};
    use irec_types::{AsId, IfId, SimDuration};

    fn event(origin: u64) -> Event {
        Event::DeliverPcb(PcbMessage {
            from_as: AsId(origin),
            from_if: IfId(1),
            to_as: AsId(2),
            to_if: IfId(1),
            pcb: Pcb::originate(
                AsId(origin),
                0,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_hours(1),
                PcbExtensions::none(),
            ),
        })
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), event(3));
        q.schedule(SimTime::from_micros(10), event(1));
        q.schedule(SimTime::from_micros(20), event(2));
        assert_eq!(q.len(), 3);
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::DeliverPcb(m) => m.from_as.value(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.schedule(SimTime::from_micros(100), event(i));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::DeliverPcb(m) => m.from_as.value(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), event(1));
        q.schedule(SimTime::from_micros(50), event(2));
        assert!(q.pop_until(SimTime::from_micros(20)).is_some());
        assert!(q.pop_until(SimTime::from_micros(20)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_time(), Some(SimTime::from_micros(50)));
    }

    #[test]
    fn preassigned_seqs_interleave_with_assigned_ones() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(100), event(1)); // seq 0
        q.schedule_preassigned(SimTime::from_micros(100), 5, event(2));
        assert_eq!(q.next_seq(), 6);
        q.schedule(SimTime::from_micros(100), event(3)); // seq 6
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop_entry_until(SimTime::MAX))
            .map(|(_, seq, _)| seq)
            .collect();
        assert_eq!(seqs, vec![0, 5, 6]);
    }

    #[test]
    fn purge_removes_only_events_addressed_to_the_as() {
        let mut q = EventQueue::new();
        // `event(origin)` addresses AsId(2); craft one addressed elsewhere by reusing the
        // helper and patching the destination.
        q.schedule(SimTime::from_micros(10), event(1));
        q.schedule(SimTime::from_micros(30), event(3));
        let Event::DeliverPcb(mut other) = event(7) else {
            unreachable!()
        };
        other.to_as = AsId(9);
        q.schedule(SimTime::from_micros(20), Event::DeliverPcb(other));
        let purged = q.purge_addressed_to(AsId(2));
        assert_eq!(purged.len(), 2);
        // Purged entries come back in (time, seq) order.
        assert_eq!(purged[0].0, SimTime::from_micros(10));
        assert_eq!(purged[1].0, SimTime::from_micros(30));
        // The survivor still pops, and the seq counter kept advancing.
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_seq(), 3);
        let (_, _, survivor) = q.pop_entry_until(SimTime::MAX).unwrap();
        match survivor {
            Event::DeliverPcb(m) => assert_eq!(m.to_as, AsId(9)),
            _ => unreachable!(),
        }
        assert!(q.purge_addressed_to(AsId(2)).is_empty());
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        assert!(q.pop().is_none());
        assert!(q.pop_until(SimTime::MAX).is_none());
    }
}
