//! The simulation driver: periodic beaconing over a topology with event-based message
//! delivery.

use crate::delivery::{DeliveryPlane, DeliveryStats};
use crate::event::Event;
use irec_core::{IrecNode, NodeConfig, RoundOutput, SharedAlgorithmStore};
use irec_crypto::KeyRegistry;
use irec_metrics::overhead::OverheadCounter;
use irec_metrics::RegisteredPath;
use irec_topology::{GroupingConfig, InterfaceGroups, Topology};
use irec_types::{AsId, IrecError, Result, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Interval between beaconing rounds (the paper uses 10 simulated minutes).
    pub beacon_interval: SimDuration,
    /// Fixed per-message processing delay added on top of link propagation.
    pub processing_delay: SimDuration,
    /// Worker threads for the node phase of each round. `1` (the default) runs every node's
    /// beaconing round sequentially; `N > 1` runs them concurrently and merges the round
    /// outputs in `AsId` order before scheduling deliveries, so registered paths, overhead
    /// counters and event order are byte-identical to a sequential run.
    pub parallelism: usize,
    /// Worker threads for the delivery plane's verify stage (see [`crate::delivery`]).
    /// `1` (the default) verifies messages inline during the serial apply walk; `N > 1`
    /// fans per-destination inboxes out over that many workers. Either way the apply order
    /// is `(SimTime, seq)` and the simulation output is byte-identical.
    pub delivery_parallelism: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            beacon_interval: SimDuration::from_minutes(10),
            processing_delay: SimDuration::from_millis(5),
            parallelism: 1,
            delivery_parallelism: 1,
        }
    }
}

impl SimulationConfig {
    /// Builder-style: set the node-phase worker count (clamped to at least 1).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder-style: set the delivery plane's verify-stage worker count (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_delivery_parallelism(mut self, delivery_parallelism: usize) -> Self {
        self.delivery_parallelism = delivery_parallelism.max(1);
        self
    }
}

/// The discrete-event simulation of an IREC deployment.
pub struct Simulation {
    topology: Arc<Topology>,
    config: SimulationConfig,
    nodes: BTreeMap<AsId, IrecNode>,
    plane: DeliveryPlane,
    clock: SimTime,
    round: u64,
    overhead: OverheadCounter,
    overhead_pull: OverheadCounter,
}

impl Clone for Simulation {
    /// Snapshots the whole simulation: every node's databases, path services, RAC caches
    /// and counters, the in-flight event queue, the clock and the overhead accounting are
    /// deep-copied, so the clone evolves independently and deterministically from the
    /// moment of the snapshot. The topology, the control-plane PKI and the on-demand
    /// algorithm store stay shared (the first two are immutable after setup; the store is
    /// an append-only registry whose publishers must use distinct algorithm ids across
    /// concurrently-running clones — see [`crate::pd::PdCampaign`]).
    ///
    /// This is what powers the parallel PD campaign: each `(origin, target)` pair runs its
    /// pull workflow on its own clone of the warmed-up base simulation.
    fn clone(&self) -> Self {
        Simulation {
            topology: Arc::clone(&self.topology),
            config: self.config,
            nodes: self.nodes.clone(),
            plane: self.plane.clone(),
            clock: self.clock,
            round: self.round,
            overhead: self.overhead.clone(),
            overhead_pull: self.overhead_pull.clone(),
        }
    }
}

/// A structurally shared copy-on-write snapshot of a [`Simulation`].
///
/// Produced by [`Simulation::snapshot`] / [`Simulation::snapshot_reachable_from`]: every
/// node's ingress database and path service share their shards with the base simulation
/// (O(total shards) reference-count bumps instead of deep map copies), and a shard is
/// materialized lazily, only when the snapshot — or the base — first writes to it. The
/// remaining per-pair state (event queue, counters, RAC caches) is copied eagerly; it is
/// small compared to the beacon and path maps.
///
/// The snapshot wraps a full [`Simulation`] and dereferences to it, so everything that
/// works on a simulation — `run_rounds`, `node_mut`, the PD workflow — works on a
/// snapshot. The base simulation is never observably affected by anything the snapshot
/// does (and vice versa): whichever side touches a shared shard first pays for its own
/// private copy of just that shard. This is what makes the all-pairs PD campaign's
/// per-pair setup nearly free (see [`crate::pd::PdCampaign`]).
pub struct SimSnapshot {
    sim: Simulation,
}

impl SimSnapshot {
    /// Consumes the snapshot, yielding the underlying simulation.
    pub fn into_simulation(self) -> Simulation {
        self.sim
    }
}

impl std::ops::Deref for SimSnapshot {
    type Target = Simulation;
    fn deref(&self) -> &Simulation {
        &self.sim
    }
}

impl std::ops::DerefMut for SimSnapshot {
    fn deref_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }
}

impl Simulation {
    /// Builds a simulation with one node per AS, configured by `node_config`.
    pub fn new(
        topology: Arc<Topology>,
        config: SimulationConfig,
        node_config: impl Fn(AsId) -> NodeConfig,
    ) -> Result<Self> {
        let registry = KeyRegistry::with_ases(42, topology.num_ases() as u64 + 1);
        // Make sure every AS id present in the topology has a key (ids may be sparse).
        for asn in topology.as_ids() {
            registry.register(asn);
        }
        let store = SharedAlgorithmStore::new();
        let mut nodes = BTreeMap::new();
        let mut overhead = OverheadCounter::new();
        for asn in topology.as_ids() {
            let node = IrecNode::new(
                asn,
                node_config(asn),
                Arc::clone(&topology),
                registry.clone(),
                store.clone(),
            )?;
            for ifid in topology.as_node(asn)?.interfaces.keys() {
                overhead.register_interface(asn, *ifid);
            }
            nodes.insert(asn, node);
        }
        Ok(Simulation {
            topology,
            config,
            nodes,
            plane: DeliveryPlane::new(config.delivery_parallelism),
            clock: SimTime::ZERO,
            round: 0,
            overhead,
            overhead_pull: OverheadCounter::new(),
        })
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of completed beaconing rounds.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Number of control-plane messages delivered so far.
    pub fn delivered_messages(&self) -> u64 {
        self.plane.stats().delivered
    }

    /// Number of messages lost, for any reason: the sum of
    /// [`Simulation::dropped_no_node`] and [`Simulation::rejected_messages`]. Kept as the
    /// legacy aggregate; the split counters answer the more precise questions.
    pub fn dropped_messages(&self) -> u64 {
        self.plane.stats().dropped_total()
    }

    /// Number of messages addressed to an AS that has no node (e.g. one removed by failure
    /// injection).
    pub fn dropped_no_node(&self) -> u64 {
        self.plane.stats().dropped_no_node
    }

    /// Number of PCB messages rejected by the receiving ingress gateway (signature, expiry
    /// or policy failures).
    pub fn rejected_messages(&self) -> u64 {
        self.plane.stats().rejected
    }

    /// The full delivery accounting of the message plane.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.plane.stats()
    }

    /// Immutable access to a node.
    pub fn node(&self, asn: AsId) -> Result<&IrecNode> {
        self.nodes
            .get(&asn)
            .ok_or_else(|| IrecError::not_found(format!("no node for {asn}")))
    }

    /// Mutable access to a node (used by the PD workflow to add originations).
    pub fn node_mut(&mut self, asn: AsId) -> Result<&mut IrecNode> {
        self.nodes
            .get_mut(&asn)
            .ok_or_else(|| IrecError::not_found(format!("no node for {asn}")))
    }

    /// A structurally shared copy-on-write snapshot of the whole simulation: O(total
    /// shards) pointer copies instead of the deep per-node map copies [`Clone`] performs.
    /// Shards are materialized lazily on first write — by either side — so the base and
    /// the snapshot can never observe each other's subsequent mutations (see
    /// [`SimSnapshot`]).
    ///
    /// ```
    /// use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
    /// use irec_sim::{Simulation, SimulationConfig};
    /// use irec_topology::builder::figure1_topology;
    /// use std::sync::Arc;
    ///
    /// let mut base = Simulation::new(
    ///     Arc::new(figure1_topology()),
    ///     SimulationConfig::default(),
    ///     |_| {
    ///         NodeConfig::default()
    ///             .with_policy(PropagationPolicy::All)
    ///             .with_racs(vec![RacConfig::static_rac("1SP", "1SP")])
    ///     },
    /// ).unwrap();
    /// base.run_rounds(3).unwrap();
    ///
    /// // Snapshot setup is O(shards) pointer copies; the snapshot then evolves
    /// // independently — the base never observes its rounds.
    /// let mut snap = base.snapshot();
    /// snap.run_rounds(2).unwrap();
    /// assert_eq!(snap.rounds_run(), base.rounds_run() + 2);
    /// assert_eq!(base.rounds_run(), 3);
    /// ```
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            sim: self.cow_snapshot(None),
        }
    }

    /// Like [`Simulation::snapshot`], but restricted to the ASes in `origin`'s connected
    /// component of the topology: nodes outside it are left out of the snapshot entirely,
    /// so their beaconing rounds are never run and their databases never copied.
    ///
    /// Excluded ASes have no link path to the origin, so no beacon, pull return or path
    /// registration can cross between them and the origin's component — the origin's
    /// observable workflow output (discovered paths, iteration counts, pull overhead) is
    /// identical to a full snapshot, as long as the base simulation carries no pull-based
    /// originations outside the origin's component (delivery *statistics* may differ:
    /// in-flight events addressed to excluded ASes count as dropped). The PD campaign
    /// satisfies that precondition by construction — pull beacons are injected only by the
    /// per-pair workflows themselves — and `tests/pd_determinism.rs` pins the equivalence
    /// on a disconnected topology.
    pub fn snapshot_reachable_from(&self, origin: AsId) -> SimSnapshot {
        let component = self.reachable_component(origin);
        SimSnapshot {
            sim: self.cow_snapshot(Some(&component)),
        }
    }

    /// The ASes in `origin`'s connected component of the (undirected) topology, origin
    /// included — the node set a pull workflow rooted at `origin` can possibly traverse.
    /// Export policies can only shrink what beacons actually reach, never extend it.
    pub fn reachable_component(&self, origin: AsId) -> BTreeSet<AsId> {
        let mut component = BTreeSet::new();
        if !self.nodes.contains_key(&origin) {
            return component;
        }
        component.insert(origin);
        let mut frontier = VecDeque::from([origin]);
        while let Some(asn) = frontier.pop_front() {
            // `for_each_neighbor` may repeat a neighbor (parallel links); the visited set
            // dedups. Only ASes that still have a live node participate (failure
            // injection may have removed some); links to removed ASes dead-end.
            self.topology.for_each_neighbor(asn, |neighbor| {
                if self.nodes.contains_key(&neighbor) && component.insert(neighbor) {
                    frontier.push_back(neighbor);
                }
            });
        }
        component
    }

    /// The shared COW-snapshot core: per-node [`IrecNode::cow_clone`] over the kept node
    /// set, eager copies of the small simulation-level state.
    fn cow_snapshot(&self, keep: Option<&BTreeSet<AsId>>) -> Simulation {
        Simulation {
            topology: Arc::clone(&self.topology),
            config: self.config,
            nodes: self
                .nodes
                .iter()
                .filter(|(asn, _)| keep.is_none_or(|k| k.contains(asn)))
                .map(|(asn, node)| (*asn, node.cow_clone()))
                .collect(),
            plane: self.plane.clone(),
            clock: self.clock,
            round: self.round,
            overhead: self.overhead.clone(),
            overhead_pull: self.overhead_pull.clone(),
        }
    }

    /// Configures geographic interface groups (§IV-D) for every AS, as used by the DOB
    /// configurations of the paper's evaluation.
    pub fn set_geographic_interface_groups(&mut self, grouping: GroupingConfig) -> Result<()> {
        for (asn, node) in self.nodes.iter_mut() {
            let as_node = self.topology.as_node(*asn)?;
            node.set_interface_groups(Some(InterfaceGroups::by_geography(as_node, grouping)));
        }
        Ok(())
    }

    /// Removes interface-group origination from every AS (plain origination).
    pub fn clear_interface_groups(&mut self) {
        for node in self.nodes.values_mut() {
            node.set_interface_groups(None);
        }
    }

    /// The overall per-interface-per-period PCB overhead counter (Fig. 8c).
    pub fn overhead(&self) -> &OverheadCounter {
        &self.overhead
    }

    /// Overhead restricted to pull-based beacons (the PD series of Fig. 8c).
    pub fn overhead_pull(&self) -> &OverheadCounter {
        &self.overhead_pull
    }

    /// Runs `n` beaconing rounds.
    pub fn run_rounds(&mut self, n: usize) -> Result<()> {
        for _ in 0..n {
            self.run_single_round()?;
        }
        // Deliver whatever is still in flight so the final round's beacons are visible in the
        // receivers' databases (and path services at the next query).
        self.deliver_until(SimTime::MAX);
        Ok(())
    }

    fn run_single_round(&mut self) -> Result<()> {
        let now = SimTime::from_micros(self.round * self.config.beacon_interval.as_micros());
        self.clock = now;
        // Deliver everything that arrived before this round started.
        self.deliver_until(now);

        // Node phase: every AS runs its beaconing round. Nodes only touch their own state
        // here (messages are exchanged through the event queue afterwards), so the rounds
        // are independent and can run concurrently; the outputs are accounted and scheduled
        // in `AsId` order either way, which keeps the two modes byte-identical.
        let workers = self.config.parallelism.min(self.nodes.len()).max(1);
        if workers <= 1 {
            // Stream node by node: a failing node aborts the round before any later node
            // has run, so no node state mutates without its output being accounted.
            let as_ids: Vec<AsId> = self.nodes.keys().copied().collect();
            for asn in as_ids {
                let output = {
                    let node = self.nodes.get_mut(&asn).expect("node exists");
                    node.beaconing_round(now)?
                };
                self.account_and_schedule(now, output);
            }
        } else {
            // All nodes have necessarily executed by the time results are merged; surface
            // the first error in AsId order and account every output before it (outputs of
            // nodes after a failing one are discarded — an error aborts the run anyway).
            for (_, result) in self.run_node_phase_parallel(now, workers) {
                let output = result?;
                self.account_and_schedule(now, output);
            }
        }
        self.round += 1;
        Ok(())
    }

    /// Records one node's round output in the overhead counters and schedules its message
    /// deliveries.
    fn account_and_schedule(&mut self, now: SimTime, output: RoundOutput) {
        for message in &output.messages {
            self.overhead
                .record(message.from_as, message.from_if, self.round, 1);
            if message.pcb.extensions.target.is_some() {
                self.overhead_pull
                    .record(message.from_as, message.from_if, self.round, 1);
            }
        }
        for message in output.messages {
            let delay = self
                .topology
                .link_at(message.from_as, message.from_if)
                .map(|l| l.metrics.latency)
                .unwrap_or_default();
            let at =
                now + SimDuration::from_micros(delay.as_micros()) + self.config.processing_delay;
            self.plane.schedule(at, Event::DeliverPcb(message));
        }
        for ret in output.pull_returns {
            // The return travels over the discovered path itself.
            let delay = ret.pcb.path_metrics().latency;
            let at =
                now + SimDuration::from_micros(delay.as_micros()) + self.config.processing_delay;
            self.plane.schedule(at, Event::DeliverPullReturn(ret));
        }
    }

    /// Runs every node's beaconing round over `workers` scoped worker threads and returns
    /// the outputs in `AsId` order.
    fn run_node_phase_parallel(
        &mut self,
        now: SimTime,
        workers: usize,
    ) -> Vec<(AsId, Result<RoundOutput>)> {
        let mut entries: Vec<(AsId, &mut IrecNode)> = self
            .nodes
            .iter_mut()
            .map(|(asn, node)| (*asn, node))
            .collect();
        let chunk_size = entries.len().div_ceil(workers);
        let mut collected: Vec<(AsId, Result<RoundOutput>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for chunk in entries.chunks_mut(chunk_size) {
                handles.push(scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|(asn, node)| (*asn, node.beaconing_round(now)))
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("node-phase worker panicked"))
                .collect()
        });
        // Chunks preserve the BTreeMap's AsId order, but make the merge order explicit
        // rather than implied by chunk concatenation.
        collected.sort_by_key(|(asn, _)| *asn);
        collected
    }

    fn deliver_until(&mut self, until: SimTime) {
        self.plane.deliver_until(&mut self.nodes, until);
    }

    /// Removes an AS's node from the simulation (failure injection: the AS goes offline).
    /// In-flight events addressed to it are counted as dropped when their delivery time
    /// comes. Returns the removed node, or `None` if the AS had no node.
    pub fn remove_node(&mut self, asn: AsId) -> Option<IrecNode> {
        self.nodes.remove(&asn)
    }

    /// All registered paths across every node, converted to the evaluation record type.
    pub fn registered_paths(&self) -> Vec<RegisteredPath> {
        let mut out = Vec::new();
        for (asn, node) in &self.nodes {
            for p in node.path_service().all() {
                out.push(RegisteredPath {
                    holder: *asn,
                    origin: p.destination,
                    algorithm: p.algorithm,
                    group: p.group,
                    origin_interface: p.destination_interface,
                    holder_interface: p.local_interface,
                    metrics: p.metrics,
                    links: p.links,
                });
            }
        }
        out
    }

    /// Registered paths selected by a specific algorithm (RAC name).
    pub fn registered_paths_by(&self, algorithm: &str) -> Vec<RegisteredPath> {
        self.registered_paths()
            .into_iter()
            .filter(|p| p.algorithm == algorithm)
            .collect()
    }

    /// Total ingress-database occupancy across all nodes: beacons stored **and still valid**
    /// at the current simulated time. Built on [`irec_core::ShardedIngressDb::live_len`] so
    /// the figure does not overcount expired-but-unevicted beacons between eviction sweeps.
    pub fn ingress_occupancy(&self) -> usize {
        self.nodes
            .values()
            .map(|node| node.ingress().live_beacons(self.clock))
            .sum()
    }

    /// Fraction of ordered AS pairs `(a, b)` for which `a` has at least one registered path
    /// towards `b`. A value of 1.0 means full control-plane connectivity.
    pub fn connectivity(&self) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 1.0;
        }
        let mut reachable = 0usize;
        for (asn, node) in &self.nodes {
            let destinations = node.path_service().destinations();
            reachable += destinations.iter().filter(|d| *d != asn).count();
        }
        reachable as f64 / (n * (n - 1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_core::{PropagationPolicy, RacConfig};
    use irec_topology::builder::{figure1, figure1_topology};
    use irec_topology::{GeneratorConfig, TopologyGenerator};

    fn figure1_sim(racs: Vec<RacConfig>) -> Simulation {
        let topology = Arc::new(figure1_topology());
        Simulation::new(topology, SimulationConfig::default(), move |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(racs.clone())
        })
        .unwrap()
    }

    #[test]
    fn beacons_reach_every_as_after_enough_rounds() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("5SP", "5SP")]);
        sim.run_rounds(6).unwrap();
        assert_eq!(sim.rounds_run(), 6);
        assert!(sim.delivered_messages() > 0);
        // Every AS should know at least one path to every other AS.
        assert!(
            (sim.connectivity() - 1.0).abs() < f64::EPSILON,
            "connectivity {}",
            sim.connectivity()
        );
    }

    #[test]
    fn shortest_path_rac_finds_the_two_hop_path() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("1SP", "1SP")]);
        sim.run_rounds(6).unwrap();
        let src = sim.node(figure1::SRC).unwrap();
        let paths = src.path_service().paths_to(figure1::DST);
        assert!(!paths.is_empty());
        let best_hops = paths.iter().map(|p| p.metrics.hops).min().unwrap();
        assert_eq!(best_hops, 2, "Src-X-Dst is two hops");
    }

    #[test]
    fn widest_rac_finds_the_high_bandwidth_detour() {
        let mut sim = figure1_sim(vec![
            RacConfig::static_rac("1SP", "1SP"),
            RacConfig::static_rac("widest", "widest"),
        ]);
        sim.run_rounds(6).unwrap();
        let src = sim.node(figure1::SRC).unwrap();
        let widest = src.path_service().paths_to_by(figure1::DST, "widest");
        assert!(!widest.is_empty());
        let best_bw = widest.iter().map(|p| p.metrics.bandwidth).max().unwrap();
        // The Src-Y-Z-Dst detour is gigabit; the bottleneck ends up being the Src-Y link.
        assert!(best_bw >= irec_types::Bandwidth::from_mbps(100));
        // The widest RAC never does worse on bandwidth than the shortest-path RAC.
        let sp = src.path_service().paths_to_by(figure1::DST, "1SP");
        let sp_bw = sp.iter().map(|p| p.metrics.bandwidth).max().unwrap();
        assert!(best_bw >= sp_bw);
    }

    #[test]
    fn overhead_counters_accumulate_per_period() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("5SP", "5SP")]);
        sim.run_rounds(3).unwrap();
        assert!(sim.overhead().total() > 0);
        // No pull-based beacons in this setup.
        assert_eq!(sim.overhead_pull().total(), 0);
        // Samples include silent interface-periods.
        assert!(sim.overhead().samples().len() >= sim.overhead().active_cells());
    }

    #[test]
    fn generated_topology_converges_with_valley_free_policy() {
        let topology = Arc::new(TopologyGenerator::new(GeneratorConfig::tiny(3)).generate());
        let mut sim = Simulation::new(topology, SimulationConfig::default(), |_| {
            NodeConfig::default().with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
        })
        .unwrap();
        sim.run_rounds(8).unwrap();
        // Valley-free propagation on a tiered topology still reaches most AS pairs.
        assert!(
            sim.connectivity() > 0.8,
            "connectivity only {}",
            sim.connectivity()
        );
    }

    #[test]
    fn registered_paths_conversion_is_consistent() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("1SP", "1SP")]);
        sim.run_rounds(5).unwrap();
        let paths = sim.registered_paths();
        assert!(!paths.is_empty());
        for p in &paths {
            assert_ne!(p.holder, p.origin);
            assert_eq!(p.links.len() as u32, p.metrics.hops);
            assert_eq!(p.algorithm, "1SP");
        }
        assert_eq!(sim.registered_paths_by("1SP").len(), paths.len());
        assert!(sim.registered_paths_by("nonexistent").is_empty());
    }

    #[test]
    fn delivery_parallelism_preserves_simulation_output() {
        let run = |delivery_parallelism: usize| {
            let topology = Arc::new(figure1_topology());
            let mut sim = Simulation::new(
                topology,
                SimulationConfig::default().with_delivery_parallelism(delivery_parallelism),
                |_| {
                    NodeConfig::default()
                        .with_policy(PropagationPolicy::All)
                        .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
                },
            )
            .unwrap();
            sim.run_rounds(5).unwrap();
            (
                sim.registered_paths(),
                sim.delivery_stats(),
                sim.ingress_occupancy(),
            )
        };
        let (paths, stats, occupancy) = run(1);
        assert!(stats.delivered > 0);
        assert_eq!(
            stats.dropped_total(),
            stats.dropped_no_node + stats.rejected
        );
        for parallelism in [2, 4] {
            let (p_paths, p_stats, p_occupancy) = run(parallelism);
            assert_eq!(p_paths, paths);
            assert_eq!(p_stats, stats);
            assert_eq!(p_occupancy, occupancy);
        }
    }

    #[test]
    fn removed_node_losses_count_as_dropped_no_node() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("5SP", "5SP")]);
        sim.run_rounds(2).unwrap();
        // Remove an AS with in-flight state and keep beaconing: messages addressed to it
        // surface in the no-node counter, not the reject counter.
        sim.remove_node(figure1::X);
        sim.run_rounds(2).unwrap();
        assert!(sim.dropped_no_node() > 0);
        assert_eq!(
            sim.dropped_messages(),
            sim.dropped_no_node() + sim.rejected_messages()
        );
    }

    #[test]
    fn interface_groups_can_be_enabled_globally() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("DOB", "DO")
            .with_extended_paths(true)
            .with_interface_groups(true)]);
        sim.set_geographic_interface_groups(GroupingConfig::KM_300)
            .unwrap();
        sim.run_rounds(5).unwrap();
        assert!(sim.connectivity() > 0.9);
        sim.clear_interface_groups();
    }
}
