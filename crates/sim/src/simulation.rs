//! The simulation driver: periodic beaconing over a topology with event-based message
//! delivery.

use crate::dag::{DagExecutor, RoundDagBuilder, RoundItem, RoundPlan, SchedulerStats};
use crate::delivery::{DeliveryPlane, DeliveryStats, MAX_EPOCH_EVENTS};
use crate::event::Event;
use irec_algorithms::incremental::{IncrementalStats, SelectionDelta};
use irec_core::{IrecNode, NodeConfig, RacConfig, RoundOutput, SharedAlgorithmStore};
use irec_crypto::KeyRegistry;
use irec_metrics::overhead::OverheadCounter;
use irec_metrics::RegisteredPath;
use irec_topology::{GroupingConfig, InterfaceGroups, Topology};
use irec_types::{AsId, IrecError, LinkId, Result, SimDuration, SimTime};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which scheduler drives each beaconing round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoundScheduler {
    /// The reference implementation: strict deliver → node phase → housekeeping barriers.
    /// Every worker joins at each phase boundary before the next phase starts.
    #[default]
    Barrier,
    /// The work-item DAG scheduler (see [`crate::dag`]): the same work, decomposed into
    /// items executed by one work-stealing pool the moment their dependency edges are
    /// satisfied — a node with no due traffic starts its round while other inboxes still
    /// verify, and freshly scheduled messages are verified speculatively while the node
    /// phase is still running. Output is byte-identical to [`RoundScheduler::Barrier`].
    Dag,
}

impl std::str::FromStr for RoundScheduler {
    type Err = IrecError;
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "barrier" => Ok(RoundScheduler::Barrier),
            "dag" => Ok(RoundScheduler::Dag),
            other => Err(IrecError::config(format!(
                "unknown round scheduler {other:?} (expected \"barrier\" or \"dag\")"
            ))),
        }
    }
}

impl std::fmt::Display for RoundScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoundScheduler::Barrier => "barrier",
            RoundScheduler::Dag => "dag",
        })
    }
}

/// Whether nodes reuse per-batch RAC selections across rounds (see
/// [`irec_core::SelectionTables`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IncrementalSelectionMode {
    /// The reference path: every RAC recomputes every batch from scratch each round.
    #[default]
    Off,
    /// Static RACs keep a per-`(origin, group, target)` selection table and reuse the
    /// previous round's outputs for batches whose content fingerprint is unchanged.
    /// Output is byte-identical to [`IncrementalSelectionMode::Off`].
    On,
}

impl std::str::FromStr for IncrementalSelectionMode {
    type Err = IrecError;
    fn from_str(s: &str) -> Result<Self> {
        match s {
            "off" => Ok(IncrementalSelectionMode::Off),
            "on" => Ok(IncrementalSelectionMode::On),
            other => Err(IrecError::config(format!(
                "unknown incremental-selection mode {other:?} (expected \"off\" or \"on\")"
            ))),
        }
    }
}

impl std::fmt::Display for IncrementalSelectionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IncrementalSelectionMode::Off => "off",
            IncrementalSelectionMode::On => "on",
        })
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimulationConfig {
    /// Interval between beaconing rounds (the paper uses 10 simulated minutes).
    pub beacon_interval: SimDuration,
    /// Fixed per-message processing delay added on top of link propagation.
    pub processing_delay: SimDuration,
    /// Worker threads for the node phase of each round. `1` (the default) runs every node's
    /// beaconing round sequentially; `N > 1` runs them concurrently and merges the round
    /// outputs in `AsId` order before scheduling deliveries, so registered paths, overhead
    /// counters and event order are byte-identical to a sequential run.
    pub parallelism: usize,
    /// Worker threads for the delivery plane's verify stage (see [`crate::delivery`]).
    /// `1` (the default) verifies messages inline during the serial apply walk; `N > 1`
    /// fans per-destination inboxes out over that many workers. Either way the apply order
    /// is `(SimTime, seq)` and the simulation output is byte-identical.
    pub delivery_parallelism: usize,
    /// Which scheduler drives each round. Under [`RoundScheduler::Dag`] the two worker
    /// counts above fold into one shared pool of width
    /// `max(parallelism, delivery_parallelism)` — there are no phases left to give each
    /// knob its own pool.
    pub round_scheduler: RoundScheduler,
    /// Ingress-database shard count applied to every node's
    /// [`NodeConfig::ingress_shards`]. `0` (the default) leaves each node's own setting
    /// alone, which normally means "follow the node's `parallelism`".
    pub ingress_shards: usize,
    /// Path-service shard count applied to every node's [`NodeConfig::path_shards`].
    /// `0` (the default) leaves each node's own setting alone.
    pub path_shards: usize,
    /// Whether nodes reuse unchanged per-batch RAC selections across rounds.
    /// [`IncrementalSelectionMode::On`] sets every node's
    /// [`NodeConfig::incremental_selection`] flag; output stays byte-identical either way.
    pub incremental_selection: IncrementalSelectionMode,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            beacon_interval: SimDuration::from_minutes(10),
            processing_delay: SimDuration::from_millis(5),
            parallelism: 1,
            delivery_parallelism: 1,
            round_scheduler: RoundScheduler::Barrier,
            ingress_shards: 0,
            path_shards: 0,
            incremental_selection: IncrementalSelectionMode::Off,
        }
    }
}

impl SimulationConfig {
    /// Builder-style: set the node-phase worker count (clamped to at least 1).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder-style: set the delivery plane's verify-stage worker count (clamped to at
    /// least 1).
    #[must_use]
    pub fn with_delivery_parallelism(mut self, delivery_parallelism: usize) -> Self {
        self.delivery_parallelism = delivery_parallelism.max(1);
        self
    }

    /// Builder-style: select the round scheduler.
    #[must_use]
    pub fn with_round_scheduler(mut self, round_scheduler: RoundScheduler) -> Self {
        self.round_scheduler = round_scheduler;
        self
    }

    /// Builder-style: pin every node's ingress-database shard count (`0` = leave each
    /// node's own setting alone).
    #[must_use]
    pub fn with_ingress_shards(mut self, ingress_shards: usize) -> Self {
        self.ingress_shards = ingress_shards;
        self
    }

    /// Builder-style: pin every node's path-service shard count (`0` = leave each node's
    /// own setting alone).
    #[must_use]
    pub fn with_path_shards(mut self, path_shards: usize) -> Self {
        self.path_shards = path_shards;
        self
    }

    /// Builder-style: select the incremental-selection mode.
    #[must_use]
    pub fn with_incremental_selection(mut self, mode: IncrementalSelectionMode) -> Self {
        self.incremental_selection = mode;
        self
    }

    /// Applies the simulation-level node knobs to one node's config: nonzero shard counts
    /// override the node's own, and [`IncrementalSelectionMode::On`] switches the node's
    /// selection tables on. Used wherever the simulation builds a node
    /// ([`Simulation::new`] and [`Simulation::add_node`]), so mid-run joins get the same
    /// knobs as the initial population.
    fn apply_node_knobs(&self, mut config: NodeConfig) -> NodeConfig {
        if self.ingress_shards != 0 {
            config.ingress_shards = self.ingress_shards;
        }
        if self.path_shards != 0 {
            config.path_shards = self.path_shards;
        }
        if self.incremental_selection == IncrementalSelectionMode::On {
            config.incremental_selection = true;
        }
        config
    }
}

/// Observer of selection-invalidation events: every structural mutation of the simulation
/// (link state change, node churn, RAC catalog swap) is translated into a
/// [`SelectionDelta`] and fanned out — first to every live node's
/// [`irec_core::SelectionTables`], then to each subscribed observer, in subscription
/// order. Subscribe with [`Simulation::subscribe_invalidations`].
///
/// Observers are deliberately *not* carried across [`Simulation::clone`] or
/// [`Simulation::snapshot`]: a snapshot evolves independently and an observer boxed into
/// the base cannot be duplicated (nor would routing one clone's events into another's
/// observer make sense).
///
/// ```
/// use irec_algorithms::incremental::SelectionDelta;
/// use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
/// use irec_sim::{SelectionInvalidation, Simulation, SimulationConfig};
/// use irec_topology::builder::{figure1, figure1_topology};
/// use std::sync::Arc;
///
/// #[derive(Default)]
/// struct DeltaLog(Vec<SelectionDelta>);
/// impl SelectionInvalidation for DeltaLog {
///     fn on_invalidation(&mut self, delta: &SelectionDelta) {
///         self.0.push(delta.clone());
///     }
/// }
///
/// let mut sim = Simulation::new(
///     Arc::new(figure1_topology()),
///     SimulationConfig::default(),
///     |_| {
///         NodeConfig::default()
///             .with_policy(PropagationPolicy::All)
///             .with_racs(vec![RacConfig::static_rac("1SP", "1SP")])
///     },
/// ).unwrap();
/// sim.subscribe_invalidations(Box::new(DeltaLog::default()));
/// let link = sim.topology().links_of(figure1::SRC)[0];
/// sim.set_link_down(link).unwrap();  // fans a SelectionDelta::Link to the observer
/// ```
pub trait SelectionInvalidation: Send + Sync {
    /// Called once per structural mutation, after every node's tables saw `delta`.
    fn on_invalidation(&mut self, delta: &SelectionDelta);
}

/// The discrete-event simulation of an IREC deployment.
pub struct Simulation {
    topology: Arc<Topology>,
    config: SimulationConfig,
    nodes: BTreeMap<AsId, IrecNode>,
    plane: DeliveryPlane,
    clock: SimTime,
    round: u64,
    overhead: OverheadCounter,
    overhead_pull: OverheadCounter,
    /// Scheduler-quality accounting (wall/busy/idle). Deliberately *not* part of the
    /// simulation's deterministic output: it measures the host machine, not the model.
    scheduler: SchedulerStats,
    /// The shared control-plane PKI, retained so [`Simulation::add_node`] can build nodes
    /// mid-run (the registry handle is a cheap `Arc` clone; registration is idempotent).
    registry: KeyRegistry,
    /// The shared on-demand algorithm store, retained for the same reason.
    store: SharedAlgorithmStore,
    /// Selection-invalidation observers (see [`SelectionInvalidation`]). Not part of the
    /// simulation state proper: deliberately dropped by [`Clone`] and
    /// [`Simulation::snapshot`], and never consulted by the deterministic round paths.
    observers: Vec<Box<dyn SelectionInvalidation>>,
}

impl Clone for Simulation {
    /// Snapshots the whole simulation: every node's databases, path services, RAC caches
    /// and counters, the in-flight event queue, the clock and the overhead accounting are
    /// deep-copied, so the clone evolves independently and deterministically from the
    /// moment of the snapshot. The topology, the control-plane PKI and the on-demand
    /// algorithm store stay shared (the first two are immutable after setup; the store is
    /// an append-only registry whose publishers must use distinct algorithm ids across
    /// concurrently-running clones — see [`crate::pd::PdCampaign`]).
    ///
    /// This is what powers the parallel PD campaign: each `(origin, target)` pair runs its
    /// pull workflow on its own clone of the warmed-up base simulation.
    fn clone(&self) -> Self {
        Simulation {
            topology: Arc::clone(&self.topology),
            config: self.config,
            nodes: self.nodes.clone(),
            plane: self.plane.clone(),
            clock: self.clock,
            round: self.round,
            overhead: self.overhead.clone(),
            overhead_pull: self.overhead_pull.clone(),
            scheduler: self.scheduler,
            registry: self.registry.clone(),
            store: self.store.clone(),
            // Observers watch one simulation; a clone starts with none (see
            // [`SelectionInvalidation`]).
            observers: Vec::new(),
        }
    }
}

/// A structurally shared copy-on-write snapshot of a [`Simulation`].
///
/// Produced by [`Simulation::snapshot`] / [`Simulation::snapshot_reachable_from`]: every
/// node's ingress database and path service share their shards with the base simulation
/// (O(total shards) reference-count bumps instead of deep map copies), and a shard is
/// materialized lazily, only when the snapshot — or the base — first writes to it. The
/// remaining per-pair state (event queue, counters, RAC caches) is copied eagerly; it is
/// small compared to the beacon and path maps.
///
/// The snapshot wraps a full [`Simulation`] and dereferences to it, so everything that
/// works on a simulation — `run_rounds`, `node_mut`, the PD workflow — works on a
/// snapshot. The base simulation is never observably affected by anything the snapshot
/// does (and vice versa): whichever side touches a shared shard first pays for its own
/// private copy of just that shard. This is what makes the all-pairs PD campaign's
/// per-pair setup nearly free (see [`crate::pd::PdCampaign`]).
pub struct SimSnapshot {
    sim: Simulation,
}

impl SimSnapshot {
    /// Consumes the snapshot, yielding the underlying simulation.
    pub fn into_simulation(self) -> Simulation {
        self.sim
    }
}

impl std::ops::Deref for SimSnapshot {
    type Target = Simulation;
    fn deref(&self) -> &Simulation {
        &self.sim
    }
}

impl std::ops::DerefMut for SimSnapshot {
    fn deref_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }
}

impl Simulation {
    /// Builds a simulation with one node per AS, configured by `node_config`.
    pub fn new(
        topology: Arc<Topology>,
        config: SimulationConfig,
        node_config: impl Fn(AsId) -> NodeConfig,
    ) -> Result<Self> {
        let registry = KeyRegistry::with_ases(42, topology.num_ases() as u64 + 1);
        // Make sure every AS id present in the topology has a key (ids may be sparse).
        for asn in topology.as_ids() {
            registry.register(asn);
        }
        let store = SharedAlgorithmStore::new();
        let mut nodes = BTreeMap::new();
        let mut overhead = OverheadCounter::new();
        for asn in topology.as_ids() {
            let node = IrecNode::new(
                asn,
                config.apply_node_knobs(node_config(asn)),
                Arc::clone(&topology),
                registry.clone(),
                store.clone(),
            )?;
            for ifid in topology.as_node(asn)?.interfaces.keys() {
                overhead.register_interface(asn, *ifid);
            }
            nodes.insert(asn, node);
        }
        Ok(Simulation {
            topology,
            config,
            nodes,
            plane: DeliveryPlane::new(config.delivery_parallelism),
            clock: SimTime::ZERO,
            round: 0,
            overhead,
            overhead_pull: OverheadCounter::new(),
            scheduler: SchedulerStats::default(),
            registry,
            store,
            observers: Vec::new(),
        })
    }

    /// Subscribes a [`SelectionInvalidation`] observer: from now on every structural
    /// mutation's [`SelectionDelta`] is delivered to it, after the nodes' own tables.
    pub fn subscribe_invalidations(&mut self, observer: Box<dyn SelectionInvalidation>) {
        self.observers.push(observer);
    }

    /// Fans `delta` out to every live node's selection tables (in `AsId` order) and then
    /// to every subscribed observer (in subscription order). Returns the total number of
    /// table entries invalidated across nodes. The structural-mutation hooks
    /// ([`Simulation::set_link_down`], [`Simulation::set_link_up`],
    /// [`Simulation::remove_node`], [`Simulation::add_node`],
    /// [`Simulation::swap_rac_catalog`]) call this themselves; call it directly only for
    /// out-of-band mutations the simulation cannot see.
    pub fn invalidate_selections(&mut self, delta: &SelectionDelta) -> usize {
        let invalidated = self
            .nodes
            .values_mut()
            .map(|node| node.apply_selection_delta(delta))
            .sum();
        for observer in &mut self.observers {
            observer.on_invalidation(delta);
        }
        invalidated
    }

    /// Sum of every live node's [`irec_core::SelectionTables`] counters, in `AsId` order.
    /// All zeros when incremental selection is off. Like [`SchedulerStats`], this is
    /// reporting about how the run executed, not part of the deterministic output.
    pub fn incremental_stats(&self) -> IncrementalStats {
        let mut stats = IncrementalStats::default();
        for node in self.nodes.values() {
            stats.accumulate(node.incremental_stats());
        }
        stats
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Number of completed beaconing rounds.
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// Number of control-plane messages delivered so far.
    pub fn delivered_messages(&self) -> u64 {
        self.plane.stats().delivered
    }

    /// Number of messages lost, for any reason: the sum of
    /// [`Simulation::dropped_no_node`] and [`Simulation::rejected_messages`]. Kept as the
    /// legacy aggregate; the split counters answer the more precise questions.
    pub fn dropped_messages(&self) -> u64 {
        self.plane.stats().dropped_total()
    }

    /// Number of messages addressed to an AS that has no node (e.g. one removed by failure
    /// injection).
    pub fn dropped_no_node(&self) -> u64 {
        self.plane.stats().dropped_no_node
    }

    /// Number of PCB messages rejected by the receiving ingress gateway (signature, expiry
    /// or policy failures).
    pub fn rejected_messages(&self) -> u64 {
        self.plane.stats().rejected
    }

    /// The full delivery accounting of the message plane.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.plane.stats()
    }

    /// Immutable access to a node.
    pub fn node(&self, asn: AsId) -> Result<&IrecNode> {
        self.nodes
            .get(&asn)
            .ok_or_else(|| IrecError::not_found(format!("no node for {asn}")))
    }

    /// Mutable access to a node (used by the PD workflow to add originations).
    pub fn node_mut(&mut self, asn: AsId) -> Result<&mut IrecNode> {
        self.nodes
            .get_mut(&asn)
            .ok_or_else(|| IrecError::not_found(format!("no node for {asn}")))
    }

    /// A structurally shared copy-on-write snapshot of the whole simulation: O(total
    /// shards) pointer copies instead of the deep per-node map copies [`Clone`] performs.
    /// Shards are materialized lazily on first write — by either side — so the base and
    /// the snapshot can never observe each other's subsequent mutations (see
    /// [`SimSnapshot`]).
    ///
    /// ```
    /// use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
    /// use irec_sim::{Simulation, SimulationConfig};
    /// use irec_topology::builder::figure1_topology;
    /// use std::sync::Arc;
    ///
    /// let mut base = Simulation::new(
    ///     Arc::new(figure1_topology()),
    ///     SimulationConfig::default(),
    ///     |_| {
    ///         NodeConfig::default()
    ///             .with_policy(PropagationPolicy::All)
    ///             .with_racs(vec![RacConfig::static_rac("1SP", "1SP")])
    ///     },
    /// ).unwrap();
    /// base.run_rounds(3).unwrap();
    ///
    /// // Snapshot setup is O(shards) pointer copies; the snapshot then evolves
    /// // independently — the base never observes its rounds.
    /// let mut snap = base.snapshot();
    /// snap.run_rounds(2).unwrap();
    /// assert_eq!(snap.rounds_run(), base.rounds_run() + 2);
    /// assert_eq!(base.rounds_run(), 3);
    /// ```
    pub fn snapshot(&self) -> SimSnapshot {
        SimSnapshot {
            sim: self.cow_snapshot(None),
        }
    }

    /// Like [`Simulation::snapshot`], but restricted to the ASes in `origin`'s connected
    /// component of the topology: nodes outside it are left out of the snapshot entirely,
    /// so their beaconing rounds are never run and their databases never copied.
    ///
    /// Excluded ASes have no link path to the origin, so no beacon, pull return or path
    /// registration can cross between them and the origin's component — the origin's
    /// observable workflow output (discovered paths, iteration counts, pull overhead) is
    /// identical to a full snapshot, as long as the base simulation carries no pull-based
    /// originations outside the origin's component (delivery *statistics* may differ:
    /// in-flight events addressed to excluded ASes count as dropped). The PD campaign
    /// satisfies that precondition by construction — pull beacons are injected only by the
    /// per-pair workflows themselves — and `tests/pd_determinism.rs` pins the equivalence
    /// on a disconnected topology.
    pub fn snapshot_reachable_from(&self, origin: AsId) -> SimSnapshot {
        let component = self.reachable_component(origin);
        SimSnapshot {
            sim: self.cow_snapshot(Some(&component)),
        }
    }

    /// The ASes in `origin`'s connected component of the (undirected) topology, origin
    /// included — the node set a pull workflow rooted at `origin` can possibly traverse.
    /// Export policies can only shrink what beacons actually reach, never extend it.
    pub fn reachable_component(&self, origin: AsId) -> BTreeSet<AsId> {
        let mut component = BTreeSet::new();
        if !self.nodes.contains_key(&origin) {
            return component;
        }
        component.insert(origin);
        let mut frontier = VecDeque::from([origin]);
        while let Some(asn) = frontier.pop_front() {
            // `for_each_neighbor` may repeat a neighbor (parallel links); the visited set
            // dedups. Only ASes that still have a live node participate (failure
            // injection may have removed some); links to removed ASes dead-end.
            self.topology.for_each_neighbor(asn, |neighbor| {
                if self.nodes.contains_key(&neighbor) && component.insert(neighbor) {
                    frontier.push_back(neighbor);
                }
            });
        }
        component
    }

    /// The shared COW-snapshot core: per-node [`IrecNode::cow_clone`] over the kept node
    /// set, eager copies of the small simulation-level state.
    fn cow_snapshot(&self, keep: Option<&BTreeSet<AsId>>) -> Simulation {
        Simulation {
            topology: Arc::clone(&self.topology),
            config: self.config,
            nodes: self
                .nodes
                .iter()
                .filter(|(asn, _)| keep.is_none_or(|k| k.contains(asn)))
                .map(|(asn, node)| (*asn, node.cow_clone()))
                .collect(),
            plane: self.plane.clone(),
            clock: self.clock,
            round: self.round,
            overhead: self.overhead.clone(),
            overhead_pull: self.overhead_pull.clone(),
            scheduler: self.scheduler,
            registry: self.registry.clone(),
            store: self.store.clone(),
            // Snapshots evolve independently; the base's observers stay with the base.
            observers: Vec::new(),
        }
    }

    /// Configures geographic interface groups (§IV-D) for every AS, as used by the DOB
    /// configurations of the paper's evaluation.
    pub fn set_geographic_interface_groups(&mut self, grouping: GroupingConfig) -> Result<()> {
        for (asn, node) in self.nodes.iter_mut() {
            let as_node = self.topology.as_node(*asn)?;
            node.set_interface_groups(Some(InterfaceGroups::by_geography(as_node, grouping)));
        }
        Ok(())
    }

    /// Removes interface-group origination from every AS (plain origination).
    pub fn clear_interface_groups(&mut self) {
        for node in self.nodes.values_mut() {
            node.set_interface_groups(None);
        }
    }

    /// The overall per-interface-per-period PCB overhead counter (Fig. 8c).
    pub fn overhead(&self) -> &OverheadCounter {
        &self.overhead
    }

    /// Overhead restricted to pull-based beacons (the PD series of Fig. 8c).
    pub fn overhead_pull(&self) -> &OverheadCounter {
        &self.overhead_pull
    }

    /// The width of the shared round pool: the two phase-specific worker knobs folded into
    /// one (the DAG scheduler has no phases to give each knob its own pool, and the
    /// barrier's idle accounting uses the same width so the two numbers compare).
    fn round_pool_width(&self) -> usize {
        self.config
            .parallelism
            .max(self.config.delivery_parallelism)
            .clamp(1, crate::dag::MAX_WORKERS)
    }

    /// Scheduler-quality accounting accumulated over the rounds run so far (see
    /// [`SchedulerStats`]). Both schedulers use the same idle formula, so barrier and DAG
    /// figures are directly comparable. Not part of the deterministic simulation output.
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler
    }

    /// Runs `n` beaconing rounds.
    pub fn run_rounds(&mut self, n: usize) -> Result<()> {
        for _ in 0..n {
            self.run_single_round()?;
        }
        // Deliver whatever is still in flight so the final round's beacons are visible in the
        // receivers' databases (and path services at the next query).
        match self.config.round_scheduler {
            RoundScheduler::Barrier => self.deliver_until(SimTime::MAX),
            RoundScheduler::Dag => self.run_delivery_dag(SimTime::MAX),
        }
        Ok(())
    }

    fn run_single_round(&mut self) -> Result<()> {
        match self.config.round_scheduler {
            RoundScheduler::Barrier => self.run_single_round_barrier(),
            RoundScheduler::Dag => self.run_single_round_dag(),
        }
    }

    fn run_single_round_barrier(&mut self) -> Result<()> {
        let wall = Instant::now();
        let busy = AtomicU64::new(0);
        let now = SimTime::from_micros(self.round * self.config.beacon_interval.as_micros());
        self.clock = now;
        // Deliver everything that arrived before this round started.
        self.plane.deliver_until_probed(&mut self.nodes, now, &busy);

        // Node phase: every AS runs its beaconing round. Nodes only touch their own state
        // here (messages are exchanged through the event queue afterwards), so the rounds
        // are independent and can run concurrently; the outputs are accounted and scheduled
        // in `AsId` order either way, which keeps the two modes byte-identical.
        let workers = self.config.parallelism.min(self.nodes.len()).max(1);
        if workers <= 1 {
            // Stream node by node: a failing node aborts the round before any later node
            // has run, so no node state mutates without its output being accounted.
            let as_ids: Vec<AsId> = self.nodes.keys().copied().collect();
            for asn in as_ids {
                let output = {
                    let node = self.nodes.get_mut(&asn).expect("node exists");
                    let started = Instant::now();
                    let output = node.beaconing_round(now);
                    busy.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    output?
                };
                self.account_and_schedule(now, output);
            }
        } else {
            // All nodes have necessarily executed by the time results are merged; surface
            // the first error in AsId order and account every output before it (outputs of
            // nodes after a failing one are discarded — an error aborts the run anyway).
            for (_, result) in self.run_node_phase_parallel(now, workers, &busy) {
                let output = result?;
                self.account_and_schedule(now, output);
            }
        }
        self.round += 1;
        self.scheduler.record_round(
            self.round_pool_width(),
            wall.elapsed().as_nanos() as u64,
            busy.into_inner(),
        );
        Ok(())
    }

    /// One beaconing round under [`RoundScheduler::Dag`]: the round's due delivery epoch
    /// and the node phase become one work-item DAG executed by a single work-stealing pool
    /// (see [`crate::dag`]). On top of overlapping delivery with node rounds, each node's
    /// freshly scheduled messages are **speculatively verified** the moment its accounting
    /// item fixes their delivery times and sequence numbers — verification is pure, so the
    /// verdicts are valid before the destination ever sees the message — and cached on the
    /// plane for the round that drains them.
    ///
    /// Byte-identical to the barrier round for any pool width: apply order per
    /// `(destination, shard)` inbox is `(SimTime, seq)` (edge rule 3), node rounds start
    /// only after their ingress shards committed (edge rule 1), outcome counters accumulate
    /// in epoch order inside the single accounting item, and the per-node accounting chain
    /// reproduces the barrier's `AsId`-order merge — including its event sequence numbers,
    /// via [`DeliveryPlane::schedule_preassigned`] — and its first-error semantics.
    fn run_single_round_dag(&mut self) -> Result<()> {
        let wall = Instant::now();
        let now = SimTime::from_micros(self.round * self.config.beacon_interval.as_micros());
        self.clock = now;
        let round = self.round;
        let width = self.round_pool_width();

        // Drain the whole due epoch up front; delivery never schedules new events, so one
        // pass is exact, and a round's due traffic bounds the drained set naturally.
        let prep = self.prepare_delivery(now, usize::MAX);

        // Build the round plan in canonical order: item ids are a stable function of the
        // round's inputs, so error propagation and all merges are order-independent.
        let mut builder = RoundDagBuilder::new();
        for dest in prep.verify_inboxes.keys() {
            builder.add_verify(*dest);
        }
        builder.add_account();
        for (dest, shard) in prep.commit_inboxes.keys() {
            builder.add_apply_pcb(*dest, *shard);
        }
        for (dest, shard) in prep.return_inboxes.keys() {
            builder.add_apply_return(*dest, *shard);
        }
        let as_ids: Vec<AsId> = self.nodes.keys().copied().collect();
        for &asn in &as_ids {
            builder.add_node_round(asn);
        }
        for &asn in &as_ids {
            builder.add_account_round(asn);
        }
        for &asn in &as_ids {
            builder.add_speculative_verify(asn);
        }
        for &asn in &as_ids {
            builder.add_housekeeping(asn);
        }
        let plan = builder.build();

        // Move the nodes into per-AS cells so items can lock exactly the node they touch:
        // verify/apply items read-lock (they use the `&self` shard entry points), node
        // rounds and housekeeping write-lock. The cells are restored unconditionally after
        // the pool joins.
        let cells: Vec<(AsId, RwLock<IrecNode>)> = std::mem::take(&mut self.nodes)
            .into_iter()
            .map(|(asn, node)| (asn, RwLock::new(node)))
            .collect();
        let index_of: BTreeMap<AsId, usize> = cells
            .iter()
            .enumerate()
            .map(|(position, (asn, _))| (*asn, position))
            .collect();

        let outputs: Vec<Mutex<Option<Result<RoundOutput>>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let core_ok: Vec<AtomicBool> = cells.iter().map(|_| AtomicBool::new(false)).collect();
        let staged: Vec<Mutex<Vec<(SimTime, u64, Event)>>> =
            cells.iter().map(|_| Mutex::new(Vec::new())).collect();
        let spec_verdicts: Mutex<Vec<(u64, Result<()>)>> = Mutex::new(Vec::new());
        let topology = &self.topology;
        let processing_delay = self.config.processing_delay;
        let acct = Mutex::new(RoundAccounting {
            overhead: &mut self.overhead,
            overhead_pull: &mut self.overhead_pull,
            delta: prep.base_delta,
            next_seq: self.plane.next_seq(),
            error: None,
        });

        let prep = &prep;
        let report = DagExecutor::new(width).run(&plan.dag, |id| match plan.items[id] {
            RoundItem::Verify { dest } => {
                let node = cells[index_of[&dest]].1.read();
                verify_inbox(&node, prep, &prep.verify_inboxes[&dest]);
            }
            RoundItem::Account => {
                let epoch_delta = account_epoch(prep);
                acct.lock().delta.merge(epoch_delta);
            }
            RoundItem::ApplyPcb { dest, shard } => {
                let node = cells[index_of[&dest]].1.read();
                apply_pcb_inbox(&node, prep, shard, &prep.commit_inboxes[&(dest, shard)]);
            }
            RoundItem::ApplyReturn { dest, shard } => {
                let node = cells[index_of[&dest]].1.read();
                apply_return_inbox(&node, prep, shard, &prep.return_inboxes[&(dest, shard)]);
            }
            RoundItem::NodeRound { asn } => {
                let position = index_of[&asn];
                let result = cells[position].1.write().beaconing_round_core(now);
                if result.is_ok() {
                    core_ok[position].store(true, Ordering::Release);
                }
                *outputs[position].lock() = Some(result);
            }
            RoundItem::AccountRound { asn } => {
                let position = index_of[&asn];
                let output = outputs[position]
                    .lock()
                    .take()
                    .expect("node round precedes its accounting item");
                let mut acct = acct.lock();
                if acct.error.is_some() {
                    // A lower-AsId node already failed this round: discard this output,
                    // exactly as the barrier's merge loop stops accounting at the first
                    // error.
                    return;
                }
                let output = match output {
                    Ok(output) => output,
                    Err(error) => {
                        acct.error = Some((position, error));
                        return;
                    }
                };
                for message in &output.messages {
                    acct.overhead
                        .record(message.from_as, message.from_if, round, 1);
                    if message.pcb.extensions.target.is_some() {
                        acct.overhead_pull
                            .record(message.from_as, message.from_if, round, 1);
                    }
                }
                let mut events = staged[position].lock();
                for message in output.messages {
                    let delay = topology
                        .link_at(message.from_as, message.from_if)
                        .map(|l| l.metrics.latency)
                        .unwrap_or_default();
                    let at = now + SimDuration::from_micros(delay.as_micros()) + processing_delay;
                    let seq = acct.next_seq;
                    acct.next_seq += 1;
                    events.push((at, seq, Event::DeliverPcb(message)));
                }
                for ret in output.pull_returns {
                    // The return travels over the discovered path itself.
                    let delay = ret.pcb.path_metrics().latency;
                    let at = now + SimDuration::from_micros(delay.as_micros()) + processing_delay;
                    let seq = acct.next_seq;
                    acct.next_seq += 1;
                    events.push((at, seq, Event::DeliverPullReturn(ret)));
                }
            }
            RoundItem::SpeculativeVerify { asn } => {
                let position = index_of[&asn];
                let events = staged[position].lock();
                let mut local: Vec<(u64, Result<()>)> = Vec::new();
                for (at, seq, event) in events.iter() {
                    if let Event::DeliverPcb(message) = event {
                        // Verification is pure (verdict = f(message, delivery time,
                        // immutable keys/policy)), so reading the destination's cell
                        // concurrently with other rounds is safe — the verdict cannot
                        // depend on any state those rounds mutate.
                        if let Some(&target) = index_of.get(&message.to_as) {
                            let verdict = cells[target].1.read().verify_message(message, *at);
                            local.push((*seq, verdict));
                        }
                    }
                }
                drop(events);
                if !local.is_empty() {
                    spec_verdicts.lock().extend(local);
                }
            }
            RoundItem::Housekeeping { asn } => {
                let position = index_of[&asn];
                // Housekeeping runs only for nodes whose round core succeeded, matching
                // `IrecNode::beaconing_round` which never reaches it on error. The evicted
                // send counters are discarded exactly as `account_and_schedule` does.
                if core_ok[position].load(Ordering::Acquire) {
                    let _ = cells[position].1.write().round_housekeeping(now);
                }
            }
        });

        // Restore the nodes unconditionally before surfacing any error.
        self.nodes = cells
            .into_iter()
            .map(|(asn, cell)| (asn, cell.into_inner()))
            .collect();

        let acct = acct.into_inner();
        self.plane.add_stats(acct.delta);
        // Push the staged events in cell (= AsId) order: together with the preassigned
        // sequence numbers this leaves the queue byte-identical to the barrier's inline
        // scheduling. On error, only outputs before the failing node were accounted, so
        // only their events exist — later accounting items staged nothing.
        let error_position = acct
            .error
            .as_ref()
            .map(|(position, _)| *position)
            .unwrap_or(usize::MAX);
        for (position, events) in staged.into_iter().enumerate() {
            if position >= error_position {
                break;
            }
            for (at, seq, event) in events.into_inner() {
                self.plane.schedule_preassigned(at, seq, event);
            }
        }
        self.plane.cache_verdicts(spec_verdicts.into_inner());
        if let Some((_, error)) = acct.error {
            return Err(error);
        }
        self.round += 1;
        self.scheduler
            .record_round(width, wall.elapsed().as_nanos() as u64, report.busy_nanos);
        self.scheduler.record_items(report.executed, report.steals);
        Ok(())
    }

    /// Drains and partitions the due epoch into [`DeliveryPrep`] work-item inboxes,
    /// consuming cached speculative verdicts and accounting everything knowable at drain
    /// time (missing-node drops, pull-return deliveries) into the base delta — the same
    /// figures, in the same epoch order, as the barrier's serial accounting pass.
    fn prepare_delivery(&mut self, until: SimTime, max_events: usize) -> DeliveryPrep {
        let due = self.plane.drain_due(until, max_events);
        let mut prep = DeliveryPrep {
            ats: Vec::with_capacity(due.len()),
            events: Vec::with_capacity(due.len()),
            verdicts: Vec::with_capacity(due.len()),
            verify_inboxes: BTreeMap::new(),
            commit_inboxes: BTreeMap::new(),
            return_inboxes: BTreeMap::new(),
            pcb_outcomes: Vec::new(),
            base_delta: DeliveryStats::default(),
        };
        for (at, seq, event) in due {
            let index = prep.ats.len();
            prep.ats.push(at);
            let mut verdict = None;
            match &event {
                Event::DeliverPcb(message)
                    if self
                        .plane
                        .is_endpoint_down(message.from_as, message.from_if) =>
                {
                    // The downed-link check precedes the missing-node check in every
                    // delivery path, so the counter split is scheduler-independent.
                    // Consume any cached verdict so the cache never leaks entries for
                    // events that will never be applied.
                    let _ = self.plane.take_cached_verdict(seq);
                    prep.base_delta.dropped_link_down += 1;
                }
                Event::DeliverPcb(message) => match self.nodes.get(&message.to_as) {
                    Some(node) => {
                        prep.pcb_outcomes.push(index);
                        let shard = node.ingress_shard_of(message.pcb.origin);
                        prep.commit_inboxes
                            .entry((message.to_as, shard))
                            .or_default()
                            .push(index);
                        verdict = self.plane.take_cached_verdict(seq);
                        if verdict.is_none() {
                            prep.verify_inboxes
                                .entry(message.to_as)
                                .or_default()
                                .push(index);
                        }
                    }
                    None => {
                        // Consume any cached verdict so the cache never leaks entries for
                        // events that will never be applied.
                        let _ = self.plane.take_cached_verdict(seq);
                        prep.base_delta.dropped_no_node += 1;
                    }
                },
                Event::DeliverPullReturn(ret) => match self.nodes.get(&ret.to_as) {
                    Some(node) => {
                        prep.base_delta.delivered += 1;
                        // The registered path's destination is the AS the return came
                        // from; that AS determines the path-service shard.
                        let shard = node.path_shard_of(ret.from_as);
                        prep.return_inboxes
                            .entry((ret.to_as, shard))
                            .or_default()
                            .push(index);
                    }
                    None => prep.base_delta.dropped_no_node += 1,
                },
            }
            prep.verdicts.push(Mutex::new(verdict));
            prep.events.push(Mutex::new(Some(event)));
        }
        prep
    }

    /// The DAG scheduler's replacement for [`Simulation::deliver_until`]: drains the due
    /// events in bounded epochs and runs each epoch's verify/account/apply items — the
    /// delivery-only subset of the round plan — over the shared pool. Used for the final
    /// in-flight flush; in-round delivery goes through [`Simulation::run_single_round_dag`]
    /// so it can overlap with the node phase.
    fn run_delivery_dag(&mut self, until: SimTime) {
        loop {
            let prep = self.prepare_delivery(until, MAX_EPOCH_EVENTS);
            if prep.ats.is_empty() {
                return;
            }
            let mut builder = RoundDagBuilder::new();
            for dest in prep.verify_inboxes.keys() {
                builder.add_verify(*dest);
            }
            builder.add_account();
            for (dest, shard) in prep.commit_inboxes.keys() {
                builder.add_apply_pcb(*dest, *shard);
            }
            for (dest, shard) in prep.return_inboxes.keys() {
                builder.add_apply_return(*dest, *shard);
            }
            let plan: RoundPlan = builder.build();
            let delta = Mutex::new(prep.base_delta);
            let nodes = &self.nodes;
            let prep = &prep;
            DagExecutor::new(self.round_pool_width()).run(&plan.dag, |id| match plan.items[id] {
                RoundItem::Verify { dest } => {
                    let node = nodes.get(&dest).expect("verify inboxes target live nodes");
                    verify_inbox(node, prep, &prep.verify_inboxes[&dest]);
                }
                RoundItem::Account => delta.lock().merge(account_epoch(prep)),
                RoundItem::ApplyPcb { dest, shard } => {
                    let node = nodes.get(&dest).expect("commit inboxes target live nodes");
                    apply_pcb_inbox(node, prep, shard, &prep.commit_inboxes[&(dest, shard)]);
                }
                RoundItem::ApplyReturn { dest, shard } => {
                    let node = nodes.get(&dest).expect("return inboxes target live nodes");
                    apply_return_inbox(node, prep, shard, &prep.return_inboxes[&(dest, shard)]);
                }
                other => unreachable!("delivery-only plan holds no {other:?}"),
            });
            self.plane.add_stats(delta.into_inner());
        }
    }

    /// Records one node's round output in the overhead counters and schedules its message
    /// deliveries.
    fn account_and_schedule(&mut self, now: SimTime, output: RoundOutput) {
        for message in &output.messages {
            self.overhead
                .record(message.from_as, message.from_if, self.round, 1);
            if message.pcb.extensions.target.is_some() {
                self.overhead_pull
                    .record(message.from_as, message.from_if, self.round, 1);
            }
        }
        for message in output.messages {
            let delay = self
                .topology
                .link_at(message.from_as, message.from_if)
                .map(|l| l.metrics.latency)
                .unwrap_or_default();
            let at =
                now + SimDuration::from_micros(delay.as_micros()) + self.config.processing_delay;
            self.plane.schedule(at, Event::DeliverPcb(message));
        }
        for ret in output.pull_returns {
            // The return travels over the discovered path itself.
            let delay = ret.pcb.path_metrics().latency;
            let at =
                now + SimDuration::from_micros(delay.as_micros()) + self.config.processing_delay;
            self.plane.schedule(at, Event::DeliverPullReturn(ret));
        }
    }

    /// Runs every node's beaconing round over `workers` scoped worker threads and returns
    /// the outputs in `AsId` order. Per-node execution time accumulates into `busy_nanos`
    /// for the scheduler's idle accounting.
    fn run_node_phase_parallel(
        &mut self,
        now: SimTime,
        workers: usize,
        busy_nanos: &AtomicU64,
    ) -> Vec<(AsId, Result<RoundOutput>)> {
        let mut entries: Vec<(AsId, &mut IrecNode)> = self
            .nodes
            .iter_mut()
            .map(|(asn, node)| (*asn, node))
            .collect();
        let chunk_size = entries.len().div_ceil(workers);
        let mut collected: Vec<(AsId, Result<RoundOutput>)> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for chunk in entries.chunks_mut(chunk_size) {
                handles.push(scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|(asn, node)| {
                            let started = Instant::now();
                            let result = node.beaconing_round(now);
                            busy_nanos
                                .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            (*asn, result)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|handle| handle.join().expect("node-phase worker panicked"))
                .collect()
        });
        // Chunks preserve the BTreeMap's AsId order, but make the merge order explicit
        // rather than implied by chunk concatenation.
        collected.sort_by_key(|(asn, _)| *asn);
        collected
    }

    fn deliver_until(&mut self, until: SimTime) {
        self.plane.deliver_until(&mut self.nodes, until);
    }

    /// Removes an AS's node from the simulation (failure injection: the AS goes offline).
    /// Every queued event addressed to it is purged immediately and counted as
    /// `dropped_no_node` — so a later [`Simulation::add_node`] of the same `AsId` cannot
    /// receive stale pre-removal messages, and the accounting totals are identical to
    /// letting those events surface at their delivery times. Returns the removed node, or
    /// `None` if the AS had no node.
    pub fn remove_node(&mut self, asn: AsId) -> Option<IrecNode> {
        let node = self.nodes.remove(&asn)?;
        self.plane.purge_addressed_to(asn);
        self.invalidate_selections(&SelectionDelta::As(asn));
        Some(node)
    }

    /// Adds a node for `asn` mid-run — the dual of [`Simulation::remove_node`], used by
    /// the churn engine's `NodeJoin` delta. The AS must exist in the topology (links are
    /// immutable; a re-joining AS comes back with its original interfaces) and must not
    /// currently have a node. The new node starts from an empty state: messages in flight
    /// towards the AS while it was down are purged and counted as `dropped_no_node` (a
    /// node cannot receive traffic sent before it existed), its control-plane key is
    /// (re-)registered, and its interfaces are (re-)registered with the overhead counter —
    /// both registrations are idempotent, so remove → add round-trips keep exact
    /// accounting.
    pub fn add_node(&mut self, asn: AsId, config: NodeConfig) -> Result<()> {
        if self.nodes.contains_key(&asn) {
            return Err(IrecError::config(format!("{asn} already has a node")));
        }
        let as_node = self.topology.as_node(asn)?;
        self.registry.register(asn);
        let node = IrecNode::new(
            asn,
            self.config.apply_node_knobs(config),
            Arc::clone(&self.topology),
            self.registry.clone(),
            self.store.clone(),
        )?;
        for ifid in as_node.interfaces.keys() {
            self.overhead.register_interface(asn, *ifid);
        }
        // Purge anything addressed to the AS while it had no node: those messages were
        // sent to a dead AS and must not materialize in the newcomer's ingress.
        self.plane.purge_addressed_to(asn);
        // Neighbor-side rewiring: the neighbors' egress-dedup databases still remember
        // sends to the node that left, but the newcomer starts empty — reset their marks
        // for the interfaces facing this AS so steady-state selections are re-propagated
        // and the rejoined node relearns the control plane instead of staying blind until
        // the pre-leave beacons expire.
        for link_id in self.topology.links_of(asn) {
            let link = self.topology.link(link_id)?;
            let neighbor = if link.a.asn == asn { link.b } else { link.a };
            if let Some(node) = self.nodes.get_mut(&neighbor.asn) {
                node.forget_egress(neighbor.interface);
            }
        }
        self.nodes.insert(asn, node);
        // A (re-)joining AS changes which batches its neighbors will see; cached
        // selections whose footprint touches it are stale the moment it starts beaconing.
        self.invalidate_selections(&SelectionDelta::As(asn));
        Ok(())
    }

    /// Whether `asn` currently has a live node.
    pub fn has_node(&self, asn: AsId) -> bool {
        self.nodes.contains_key(&asn)
    }

    /// The ASes that currently have a live node, in `AsId` order.
    pub fn live_ases(&self) -> Vec<AsId> {
        self.nodes.keys().copied().collect()
    }

    /// Number of events still pending in the delivery plane's queue.
    pub fn pending_events(&self) -> usize {
        self.plane.pending()
    }

    /// Number of PCBs dropped at delivery time because their emitting link endpoint was
    /// administratively down (see [`Simulation::set_link_down`]).
    pub fn dropped_link_down(&self) -> u64 {
        self.plane.stats().dropped_link_down
    }

    /// Marks a topology link as down: from now on, any PCB emitted over either of its
    /// endpoints is dropped at delivery time and counted in
    /// [`Simulation::dropped_link_down`]. The topology itself stays immutable — nodes keep
    /// originating and propagating over the interface; the delivery plane absorbs the
    /// traffic, which is exactly how a silently failed link behaves. Pull returns travel
    /// the discovered path as one event and are not affected (path-level failure injection
    /// is node removal). Idempotent.
    pub fn set_link_down(&mut self, link: LinkId) -> Result<()> {
        let l = self.topology.link(link)?;
        let endpoints = [(l.a.asn, l.a.interface), (l.b.asn, l.b.interface)];
        self.plane.set_link_down(link, endpoints);
        self.invalidate_selections(&SelectionDelta::Link(endpoints.to_vec()));
        Ok(())
    }

    /// Brings a downed link back up. A no-op for links that are not down.
    pub fn set_link_up(&mut self, link: LinkId) -> Result<()> {
        // Resolve the id even though the plane keeps the endpoints, so an unknown link id
        // errors instead of silently doing nothing.
        let l = self.topology.link(link)?;
        let endpoints = [(l.a.asn, l.a.interface), (l.b.asn, l.b.interface)];
        self.plane.set_link_up(link);
        self.invalidate_selections(&SelectionDelta::Link(endpoints.to_vec()));
        Ok(())
    }

    /// Replaces one node's RAC catalog live (see [`IrecNode::swap_rac_catalog`]) and fans
    /// a [`SelectionDelta::All`] out to every node's selection tables and the subscribed
    /// observers. The swapped node's own tables are rebuilt empty by the node first (RAC
    /// indices change with the catalog), so the fan-out mainly informs observers and
    /// clears the *other* nodes' tables — a catalog swap is the one churn event whose
    /// blast radius the delta language cannot narrow.
    pub fn swap_rac_catalog(&mut self, asn: AsId, catalog: Vec<RacConfig>) -> Result<()> {
        self.node_mut(asn)?.swap_rac_catalog(catalog)?;
        self.invalidate_selections(&SelectionDelta::All);
        Ok(())
    }

    /// Whether `link` is currently marked down.
    pub fn is_link_down(&self, link: LinkId) -> bool {
        self.plane.is_link_down(link)
    }

    /// Withdraws from every node's ingress database the beacons whose recorded hops
    /// traverse either endpoint of `link`, returning the withdrawn count. This is the
    /// protocol reaction to a link going down (the churn engine runs it right after
    /// [`Simulation::set_link_down`]): steady-state RAC selections re-pick the oldest
    /// stored digests and the egress dedup suppresses their re-propagation, so without the
    /// sweep a plane whose stale winners traverse the downed link can stay blackholed
    /// forever — the sweep shifts selection to surviving detour candidates instead.
    pub fn withdraw_traversing_link(&mut self, link: LinkId) -> Result<u64> {
        let l = self.topology.link(link)?;
        let endpoints = [(l.a.asn, l.a.interface), (l.b.asn, l.b.interface)];
        let mut withdrawn = 0u64;
        for node in self.nodes.values() {
            withdrawn += node.ingress().db().purge_where(|stored| {
                stored.pcb.entries.iter().any(|entry| {
                    endpoints.iter().any(|&(asn, ifid)| {
                        entry.hop.asn == asn
                            && (entry.hop.ingress == ifid || entry.hop.egress == ifid)
                    })
                })
            }) as u64;
        }
        Ok(withdrawn)
    }

    /// Withdraws from every node's ingress database the beacons whose recorded hops
    /// traverse `asn`, returning the withdrawn count — the node-departure dual of
    /// [`Simulation::withdraw_traversing_link`], run by the churn engine right after
    /// [`Simulation::remove_node`].
    pub fn withdraw_traversing_as(&mut self, asn: AsId) -> u64 {
        self.nodes
            .values()
            .map(|node| {
                node.ingress()
                    .db()
                    .purge_where(|stored| stored.pcb.entries.iter().any(|e| e.hop.asn == asn))
                    as u64
            })
            .sum()
    }

    /// Whether `(asn, ifid)` is an endpoint of a downed link. Both endpoints of a downed
    /// link are down, so testing whichever side a path record stores is sufficient.
    pub fn is_endpoint_down(&self, asn: AsId, ifid: irec_types::IfId) -> bool {
        self.plane.is_endpoint_down(asn, ifid)
    }

    /// The links currently marked down, in `LinkId` order.
    pub fn downed_links(&self) -> Vec<LinkId> {
        self.plane.downed_links()
    }

    /// All registered paths across every node, converted to the evaluation record type.
    pub fn registered_paths(&self) -> Vec<RegisteredPath> {
        let mut out = Vec::new();
        for (asn, node) in &self.nodes {
            for p in node.path_service().all() {
                out.push(RegisteredPath {
                    holder: *asn,
                    origin: p.destination,
                    algorithm: p.algorithm,
                    group: p.group,
                    origin_interface: p.destination_interface,
                    holder_interface: p.local_interface,
                    metrics: p.metrics,
                    links: p.links,
                });
            }
        }
        out
    }

    /// Registered paths selected by a specific algorithm (RAC name).
    pub fn registered_paths_by(&self, algorithm: &str) -> Vec<RegisteredPath> {
        self.registered_paths()
            .into_iter()
            .filter(|p| p.algorithm == algorithm)
            .collect()
    }

    /// Total ingress-database occupancy across all nodes: beacons stored **and still valid**
    /// at the current simulated time. Built on [`irec_core::ShardedIngressDb::live_len`] so
    /// the figure does not overcount expired-but-unevicted beacons between eviction sweeps.
    pub fn ingress_occupancy(&self) -> usize {
        self.nodes
            .values()
            .map(|node| node.ingress().live_beacons(self.clock))
            .sum()
    }

    /// Fraction of ordered AS pairs `(a, b)` for which `a` has at least one registered path
    /// towards `b`. A value of 1.0 means full control-plane connectivity.
    pub fn connectivity(&self) -> f64 {
        let n = self.nodes.len();
        if n < 2 {
            return 1.0;
        }
        let mut reachable = 0usize;
        for (asn, node) in &self.nodes {
            let destinations = node.path_service().destinations();
            reachable += destinations.iter().filter(|d| *d != asn).count();
        }
        reachable as f64 / (n * (n - 1)) as f64
    }
}

/// One drained delivery epoch, partitioned into the DAG round's work-item inboxes. All
/// index vectors hold epoch positions (indices into `ats`/`events`/`verdicts`), in epoch
/// (= `(SimTime, seq)`) order.
struct DeliveryPrep {
    /// Delivery time of each drained event, by epoch position.
    ats: Vec<SimTime>,
    /// The drained events; taken (once) by the apply item that commits them.
    events: Vec<Mutex<Option<Event>>>,
    /// Verdict slots, one per event, prefilled from the speculative-verdict cache. Apply
    /// items clone (never take) so the epoch's accounting item can read every slot
    /// regardless of execution order.
    verdicts: Vec<Mutex<Option<Result<()>>>>,
    /// Positions needing verification, grouped per destination AS.
    verify_inboxes: BTreeMap<AsId, Vec<usize>>,
    /// PCB commits, grouped per `(destination AS, ingress shard)`.
    commit_inboxes: BTreeMap<(AsId, usize), Vec<usize>>,
    /// Pull-return commits, grouped per `(destination AS, path shard)`.
    return_inboxes: BTreeMap<(AsId, usize), Vec<usize>>,
    /// Positions of PCBs with a live destination, whose delivered/rejected outcome the
    /// accounting item reads off the verdict slots in epoch order.
    pcb_outcomes: Vec<usize>,
    /// Outcomes already known at drain time: missing-node drops and pull-return
    /// deliveries.
    base_delta: DeliveryStats,
}

/// The DAG round's serially-chained accounting state, guarded by one mutex and visited in
/// `AsId` order by the accounting-chain items.
struct RoundAccounting<'a> {
    overhead: &'a mut OverheadCounter,
    overhead_pull: &'a mut OverheadCounter,
    /// Delivery outcomes of the round's epoch (base delta plus the accounting item's
    /// verdict counts).
    delta: DeliveryStats,
    /// Next event sequence number to assign; starts at the plane's counter so the staged
    /// events replicate the barrier's inline assignment exactly.
    next_seq: u64,
    /// First error in `AsId` order, with the failing node's cell position. Later
    /// accounting items discard their outputs, as the barrier's merge loop does.
    error: Option<(usize, IrecError)>,
}

/// Verifies one destination's due inbox, writing verdicts into the epoch's slots.
fn verify_inbox(node: &IrecNode, prep: &DeliveryPrep, indices: &[usize]) {
    for &index in indices {
        let guard = prep.events[index].lock();
        let Some(Event::DeliverPcb(message)) = guard.as_ref() else {
            unreachable!("verify inboxes hold only undelivered PCB events");
        };
        let verdict = node.verify_message(message, prep.ats[index]);
        drop(guard);
        *prep.verdicts[index].lock() = Some(verdict);
    }
}

/// Counts the epoch's delivered/rejected PCB outcomes off the (complete) verdict slots,
/// in epoch order — the DAG equivalent of the barrier's serial accounting pass.
fn account_epoch(prep: &DeliveryPrep) -> DeliveryStats {
    let mut delta = DeliveryStats::default();
    for &index in &prep.pcb_outcomes {
        match prep.verdicts[index]
            .lock()
            .as_ref()
            .expect("every verify item precedes the accounting item")
        {
            Ok(()) => delta.delivered += 1,
            Err(_) => delta.rejected += 1,
        }
    }
    delta
}

/// Commits one `(destination, ingress shard)` PCB inbox in epoch order.
fn apply_pcb_inbox(node: &IrecNode, prep: &DeliveryPrep, shard: usize, indices: &[usize]) {
    for &index in indices {
        let event = prep.events[index]
            .lock()
            .take()
            .expect("each event is committed exactly once");
        let Event::DeliverPcb(message) = event else {
            unreachable!("commit inboxes hold only PCB events");
        };
        let verdict = prep.verdicts[index]
            .lock()
            .clone()
            .expect("the destination's verify item precedes its applies");
        // The outcome is accounted by the accounting item; the commit mutates only the
        // shard's dedup set, storage and gateway counters.
        let _ = node.apply_message_in_shard(shard, message, prep.ats[index], verdict);
    }
}

/// Commits one `(destination, path shard)` pull-return inbox in epoch order.
fn apply_return_inbox(node: &IrecNode, prep: &DeliveryPrep, shard: usize, indices: &[usize]) {
    for &index in indices {
        let event = prep.events[index]
            .lock()
            .take()
            .expect("each event is committed exactly once");
        let Event::DeliverPullReturn(ret) = event else {
            unreachable!("return inboxes hold only pull-return events");
        };
        node.handle_pull_return_in_shard(shard, ret, prep.ats[index]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_core::{PropagationPolicy, RacConfig};
    use irec_topology::builder::{figure1, figure1_topology};
    use irec_topology::{GeneratorConfig, TopologyGenerator};

    fn figure1_sim(racs: Vec<RacConfig>) -> Simulation {
        let topology = Arc::new(figure1_topology());
        Simulation::new(topology, SimulationConfig::default(), move |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(racs.clone())
        })
        .unwrap()
    }

    #[test]
    fn beacons_reach_every_as_after_enough_rounds() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("5SP", "5SP")]);
        sim.run_rounds(6).unwrap();
        assert_eq!(sim.rounds_run(), 6);
        assert!(sim.delivered_messages() > 0);
        // Every AS should know at least one path to every other AS.
        assert!(
            (sim.connectivity() - 1.0).abs() < f64::EPSILON,
            "connectivity {}",
            sim.connectivity()
        );
    }

    #[test]
    fn shortest_path_rac_finds_the_two_hop_path() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("1SP", "1SP")]);
        sim.run_rounds(6).unwrap();
        let src = sim.node(figure1::SRC).unwrap();
        let paths = src.path_service().paths_to(figure1::DST);
        assert!(!paths.is_empty());
        let best_hops = paths.iter().map(|p| p.metrics.hops).min().unwrap();
        assert_eq!(best_hops, 2, "Src-X-Dst is two hops");
    }

    #[test]
    fn widest_rac_finds_the_high_bandwidth_detour() {
        let mut sim = figure1_sim(vec![
            RacConfig::static_rac("1SP", "1SP"),
            RacConfig::static_rac("widest", "widest"),
        ]);
        sim.run_rounds(6).unwrap();
        let src = sim.node(figure1::SRC).unwrap();
        let widest = src.path_service().paths_to_by(figure1::DST, "widest");
        assert!(!widest.is_empty());
        let best_bw = widest.iter().map(|p| p.metrics.bandwidth).max().unwrap();
        // The Src-Y-Z-Dst detour is gigabit; the bottleneck ends up being the Src-Y link.
        assert!(best_bw >= irec_types::Bandwidth::from_mbps(100));
        // The widest RAC never does worse on bandwidth than the shortest-path RAC.
        let sp = src.path_service().paths_to_by(figure1::DST, "1SP");
        let sp_bw = sp.iter().map(|p| p.metrics.bandwidth).max().unwrap();
        assert!(best_bw >= sp_bw);
    }

    #[test]
    fn overhead_counters_accumulate_per_period() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("5SP", "5SP")]);
        sim.run_rounds(3).unwrap();
        assert!(sim.overhead().total() > 0);
        // No pull-based beacons in this setup.
        assert_eq!(sim.overhead_pull().total(), 0);
        // Samples include silent interface-periods.
        assert!(sim.overhead().samples().len() >= sim.overhead().active_cells());
    }

    #[test]
    fn generated_topology_converges_with_valley_free_policy() {
        let topology = Arc::new(TopologyGenerator::new(GeneratorConfig::tiny(3)).generate());
        let mut sim = Simulation::new(topology, SimulationConfig::default(), |_| {
            NodeConfig::default().with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
        })
        .unwrap();
        sim.run_rounds(8).unwrap();
        // Valley-free propagation on a tiered topology still reaches most AS pairs.
        assert!(
            sim.connectivity() > 0.8,
            "connectivity only {}",
            sim.connectivity()
        );
    }

    #[test]
    fn registered_paths_conversion_is_consistent() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("1SP", "1SP")]);
        sim.run_rounds(5).unwrap();
        let paths = sim.registered_paths();
        assert!(!paths.is_empty());
        for p in &paths {
            assert_ne!(p.holder, p.origin);
            assert_eq!(p.links.len() as u32, p.metrics.hops);
            assert_eq!(p.algorithm, "1SP");
        }
        assert_eq!(sim.registered_paths_by("1SP").len(), paths.len());
        assert!(sim.registered_paths_by("nonexistent").is_empty());
    }

    #[test]
    fn delivery_parallelism_preserves_simulation_output() {
        let run = |delivery_parallelism: usize| {
            let topology = Arc::new(figure1_topology());
            let mut sim = Simulation::new(
                topology,
                SimulationConfig::default().with_delivery_parallelism(delivery_parallelism),
                |_| {
                    NodeConfig::default()
                        .with_policy(PropagationPolicy::All)
                        .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
                },
            )
            .unwrap();
            sim.run_rounds(5).unwrap();
            (
                sim.registered_paths(),
                sim.delivery_stats(),
                sim.ingress_occupancy(),
            )
        };
        let (paths, stats, occupancy) = run(1);
        assert!(stats.delivered > 0);
        assert_eq!(
            stats.dropped_total(),
            stats.dropped_no_node + stats.dropped_link_down + stats.rejected
        );
        for parallelism in [2, 4] {
            let (p_paths, p_stats, p_occupancy) = run(parallelism);
            assert_eq!(p_paths, paths);
            assert_eq!(p_stats, stats);
            assert_eq!(p_occupancy, occupancy);
        }
    }

    #[test]
    fn dag_scheduler_matches_barrier_output() {
        let run = |scheduler: RoundScheduler, parallelism: usize, delivery: usize| {
            let topology = Arc::new(figure1_topology());
            let mut sim = Simulation::new(
                topology,
                SimulationConfig::default()
                    .with_round_scheduler(scheduler)
                    .with_parallelism(parallelism)
                    .with_delivery_parallelism(delivery),
                |_| {
                    NodeConfig::default()
                        .with_policy(PropagationPolicy::All)
                        .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
                },
            )
            .unwrap();
            sim.run_rounds(3).unwrap();
            // Fail an AS mid-run: in-flight messages to it must drop identically, and the
            // DAG plan must shrink cleanly to the surviving cells.
            sim.remove_node(figure1::X);
            sim.run_rounds(2).unwrap();
            (
                sim.registered_paths(),
                sim.delivery_stats(),
                sim.ingress_occupancy(),
                sim.overhead().samples(),
            )
        };
        let reference = run(RoundScheduler::Barrier, 1, 1);
        assert!(reference.1.delivered > 0);
        assert!(reference.1.dropped_no_node > 0);
        for (parallelism, delivery) in [(1, 1), (2, 4), (4, 2), (8, 8)] {
            let dag = run(RoundScheduler::Dag, parallelism, delivery);
            assert_eq!(dag.0, reference.0, "paths at {parallelism}x{delivery}");
            assert_eq!(dag.1, reference.1, "stats at {parallelism}x{delivery}");
            assert_eq!(dag.2, reference.2, "occupancy at {parallelism}x{delivery}");
            assert_eq!(dag.3, reference.3, "overhead at {parallelism}x{delivery}");
        }
    }

    #[test]
    fn dag_scheduler_caches_and_consumes_speculative_verdicts() {
        let topology = Arc::new(figure1_topology());
        let mut sim = Simulation::new(
            topology,
            SimulationConfig::default()
                .with_round_scheduler(RoundScheduler::Dag)
                .with_parallelism(2),
            |_| {
                NodeConfig::default()
                    .with_policy(PropagationPolicy::All)
                    .with_racs(vec![RacConfig::static_rac("1SP", "1SP")])
            },
        )
        .unwrap();
        sim.run_rounds(4).unwrap();
        // Every cached verdict was keyed to a scheduled event; the final flush must have
        // consumed them all (no leaks for events that were actually delivered or dropped).
        assert_eq!(
            sim.plane.cached_verdicts(),
            0,
            "verdict cache leaked entries"
        );
        assert!(sim.scheduler_stats().rounds >= 4);
        assert!(sim.scheduler_stats().items > 0);
        assert!((sim.connectivity() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn round_scheduler_parses_and_displays() {
        assert_eq!(
            "barrier".parse::<RoundScheduler>().unwrap(),
            RoundScheduler::Barrier
        );
        assert_eq!(
            "dag".parse::<RoundScheduler>().unwrap(),
            RoundScheduler::Dag
        );
        assert!("eager".parse::<RoundScheduler>().is_err());
        assert_eq!(RoundScheduler::Barrier.to_string(), "barrier");
        assert_eq!(RoundScheduler::Dag.to_string(), "dag");
    }

    #[test]
    fn incremental_selection_mode_parses_and_displays() {
        assert_eq!(
            "off".parse::<IncrementalSelectionMode>().unwrap(),
            IncrementalSelectionMode::Off
        );
        assert_eq!(
            "on".parse::<IncrementalSelectionMode>().unwrap(),
            IncrementalSelectionMode::On
        );
        assert!("maybe".parse::<IncrementalSelectionMode>().is_err());
        assert_eq!(IncrementalSelectionMode::Off.to_string(), "off");
        assert_eq!(IncrementalSelectionMode::On.to_string(), "on");
    }

    #[test]
    fn sim_level_knobs_reach_every_node_including_mid_run_joins() {
        let topology = Arc::new(figure1_topology());
        let config = SimulationConfig::default()
            .with_ingress_shards(3)
            .with_path_shards(2)
            .with_incremental_selection(IncrementalSelectionMode::On);
        let mut sim = Simulation::new(topology, config, |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![RacConfig::static_rac("1SP", "1SP")])
        })
        .unwrap();
        for asn in sim.live_ases() {
            let node_config = sim.node(asn).unwrap().config();
            assert_eq!(node_config.ingress_shards, 3);
            assert_eq!(node_config.path_shards, 2);
            assert!(node_config.incremental_selection);
        }
        // A node added mid-run gets the same knobs applied to its (plain) config.
        sim.remove_node(figure1::X).unwrap();
        sim.add_node(figure1::X, NodeConfig::default()).unwrap();
        let rejoined = sim.node(figure1::X).unwrap().config();
        assert_eq!(rejoined.ingress_shards, 3);
        assert_eq!(rejoined.path_shards, 2);
        assert!(rejoined.incremental_selection);
        // And the tables actually engage: a couple of rounds produce nonzero counters.
        sim.run_rounds(3).unwrap();
        let stats = sim.incremental_stats();
        assert!(stats.recomputed > 0);
    }

    #[test]
    fn structural_hooks_fan_deltas_out_to_observers() {
        use irec_algorithms::incremental::SelectionDelta;
        use std::sync::Mutex as StdMutex;

        #[derive(Default)]
        struct DeltaLog(Arc<StdMutex<Vec<SelectionDelta>>>);
        impl SelectionInvalidation for DeltaLog {
            fn on_invalidation(&mut self, delta: &SelectionDelta) {
                self.0.lock().unwrap().push(delta.clone());
            }
        }

        let mut sim = figure1_sim(vec![RacConfig::static_rac("1SP", "1SP")]);
        let log = Arc::new(StdMutex::new(Vec::new()));
        sim.subscribe_invalidations(Box::new(DeltaLog(Arc::clone(&log))));
        sim.run_rounds(2).unwrap();

        let link = sim.topology().links_of(figure1::X)[0];
        sim.set_link_down(link).unwrap();
        sim.set_link_up(link).unwrap();
        sim.remove_node(figure1::X).unwrap();
        sim.add_node(figure1::X, NodeConfig::default()).unwrap();
        sim.swap_rac_catalog(figure1::X, vec![RacConfig::static_rac("5SP", "5SP")])
            .unwrap();

        let deltas = log.lock().unwrap().clone();
        assert_eq!(deltas.len(), 5, "one delta per structural mutation");
        assert!(matches!(deltas[0], SelectionDelta::Link(ref e) if e.len() == 2));
        assert!(matches!(deltas[1], SelectionDelta::Link(_)));
        assert_eq!(deltas[2], SelectionDelta::As(figure1::X));
        assert_eq!(deltas[3], SelectionDelta::As(figure1::X));
        assert_eq!(deltas[4], SelectionDelta::All);
        // Observers watch one simulation: clones and snapshots start with none, so the
        // base's log sees nothing from mutations on the copies.
        let mut copy = sim.clone();
        let mut snap = sim.snapshot().into_simulation();
        copy.set_link_down(link).unwrap();
        snap.set_link_down(link).unwrap();
        assert_eq!(log.lock().unwrap().len(), 5);
    }

    #[test]
    fn removed_node_losses_count_as_dropped_no_node() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("5SP", "5SP")]);
        sim.run_rounds(2).unwrap();
        // Remove an AS with in-flight state and keep beaconing: messages addressed to it
        // surface in the no-node counter, not the reject counter.
        sim.remove_node(figure1::X);
        sim.run_rounds(2).unwrap();
        assert!(sim.dropped_no_node() > 0);
        assert_eq!(
            sim.dropped_messages(),
            sim.dropped_no_node() + sim.rejected_messages()
        );
    }

    #[test]
    fn add_node_rejects_duplicates_and_unknown_ases() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("1SP", "1SP")]);
        let config = NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![RacConfig::static_rac("1SP", "1SP")]);
        assert!(sim.add_node(figure1::X, config.clone()).is_err());
        assert!(sim.add_node(AsId(999), config.clone()).is_err());
        sim.remove_node(figure1::X).unwrap();
        assert!(!sim.has_node(figure1::X));
        sim.add_node(figure1::X, config).unwrap();
        assert!(sim.has_node(figure1::X));
        // The re-added node starts empty.
        assert!(sim
            .node(figure1::X)
            .unwrap()
            .path_service()
            .all()
            .is_empty());
    }

    #[test]
    fn link_toggles_drop_and_restore_traffic() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("5SP", "5SP")]);
        sim.run_rounds(2).unwrap();
        assert_eq!(sim.dropped_link_down(), 0);
        let link = sim.topology().links_of(figure1::X)[0];
        sim.set_link_down(link).unwrap();
        assert!(sim.is_link_down(link));
        assert_eq!(sim.downed_links(), vec![link]);
        sim.run_rounds(2).unwrap();
        let dropped = sim.dropped_link_down();
        assert!(dropped > 0, "traffic over the downed link must drop");
        sim.set_link_up(link).unwrap();
        assert!(!sim.is_link_down(link));
        sim.run_rounds(2).unwrap();
        // Once the link is back up, its traffic flows again; the counter stays put.
        assert_eq!(sim.dropped_link_down(), dropped);
        assert!(sim.set_link_down(irec_types::LinkId(u64::MAX)).is_err());
        assert!(sim.set_link_up(irec_types::LinkId(u64::MAX)).is_err());
    }

    #[test]
    fn link_down_drops_are_scheduler_independent() {
        let run = |scheduler: RoundScheduler, parallelism: usize, delivery: usize| {
            let topology = Arc::new(figure1_topology());
            let mut sim = Simulation::new(
                topology,
                SimulationConfig::default()
                    .with_round_scheduler(scheduler)
                    .with_parallelism(parallelism)
                    .with_delivery_parallelism(delivery),
                |_| {
                    NodeConfig::default()
                        .with_policy(PropagationPolicy::All)
                        .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
                },
            )
            .unwrap();
            sim.run_rounds(2).unwrap();
            let link = sim.topology().links_of(figure1::X)[0];
            sim.set_link_down(link).unwrap();
            sim.run_rounds(3).unwrap();
            (
                sim.registered_paths(),
                sim.delivery_stats(),
                sim.ingress_occupancy(),
            )
        };
        let reference = run(RoundScheduler::Barrier, 1, 1);
        assert!(reference.1.dropped_link_down > 0);
        for (parallelism, delivery) in [(1, 1), (2, 4), (4, 2)] {
            let dag = run(RoundScheduler::Dag, parallelism, delivery);
            assert_eq!(dag.0, reference.0, "paths at {parallelism}x{delivery}");
            assert_eq!(dag.1, reference.1, "stats at {parallelism}x{delivery}");
            assert_eq!(dag.2, reference.2, "occupancy at {parallelism}x{delivery}");
        }
        let barrier_parallel = run(RoundScheduler::Barrier, 1, 4);
        assert_eq!(barrier_parallel.1, reference.1);
    }

    #[test]
    fn interface_groups_can_be_enabled_globally() {
        let mut sim = figure1_sim(vec![RacConfig::static_rac("DOB", "DO")
            .with_extended_paths(true)
            .with_interface_groups(true)]);
        sim.set_geographic_interface_groups(GroupingConfig::KM_300)
            .unwrap();
        sim.run_rounds(5).unwrap();
        assert!(sim.connectivity() > 0.9);
        sim.clear_interface_groups();
    }
}
