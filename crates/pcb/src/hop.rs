//! Per-AS hop entries of a PCB: hop information, static-info extensions and signatures.

use irec_crypto::Signature;
use irec_types::{AsId, Bandwidth, GeoCoord, IfId, IrecError, Latency, Result};
use irec_wire::{Decode, Encode, WireReader, WireWriter};

/// Hop information of one on-path AS: the interface where the beacon entered the AS and the
/// interface through which it was propagated further.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HopInfo {
    /// The AS that appended this entry.
    pub asn: AsId,
    /// Interface where the PCB entered the AS ([`IfId::NONE`] for the origin AS).
    pub ingress: IfId,
    /// Interface through which the PCB left the AS towards the next AS.
    pub egress: IfId,
}

impl HopInfo {
    /// Creates hop information for an origin AS entry (no ingress interface).
    pub const fn origin(asn: AsId, egress: IfId) -> Self {
        HopInfo {
            asn,
            ingress: IfId::NONE,
            egress,
        }
    }

    /// Creates hop information for a transit AS entry.
    pub const fn transit(asn: AsId, ingress: IfId, egress: IfId) -> Self {
        HopInfo {
            asn,
            ingress,
            egress,
        }
    }

    /// Whether this is an origin hop (no ingress interface).
    pub const fn is_origin(&self) -> bool {
        self.ingress.is_none()
    }
}

impl Encode for HopInfo {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_varint(self.asn.value());
        writer.put_u32v(self.ingress.value());
        writer.put_u32v(self.egress.value());
    }
}

impl Decode for HopInfo {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        Ok(HopInfo {
            asn: AsId(reader.get_varint()?),
            ingress: IfId(reader.get_u32v()?),
            egress: IfId(reader.get_u32v()?),
        })
    }
}

/// Static-info extension of a hop entry: the performance metadata an AS is willing to share.
///
/// The semantics follow §IV-E of the paper: `intra_latency` is the crossing latency from the
/// hop's ingress interface to its egress interface (zero for the origin AS), and
/// `link_latency`/`link_bandwidth` describe the inter-domain link attached to the egress
/// interface (the link over which the PCB is propagated to the next AS). Accumulating
/// `intra_latency + link_latency` over all entries therefore yields the propagation delay
/// from the origin to the ingress interface of the AS currently holding the beacon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticInfo {
    /// Propagation latency of the egress inter-domain link.
    pub link_latency: Latency,
    /// Capacity of the egress inter-domain link.
    pub link_bandwidth: Bandwidth,
    /// Intra-AS crossing latency from the ingress to the egress interface.
    pub intra_latency: Latency,
    /// Geolocation of the egress interface, if the AS shares it.
    pub egress_location: Option<GeoCoord>,
}

impl StaticInfo {
    /// Static info for an origin hop: no intra-AS crossing.
    pub fn origin(
        link_latency: Latency,
        link_bandwidth: Bandwidth,
        location: Option<GeoCoord>,
    ) -> Self {
        StaticInfo {
            link_latency,
            link_bandwidth,
            intra_latency: Latency::ZERO,
            egress_location: location,
        }
    }

    /// An "empty" static info (no metadata shared): zero latencies, unbounded bandwidth.
    pub const fn empty() -> Self {
        StaticInfo {
            link_latency: Latency::ZERO,
            link_bandwidth: Bandwidth::MAX,
            intra_latency: Latency::ZERO,
            egress_location: None,
        }
    }

    /// Total latency contributed by this hop (intra-AS crossing plus egress link).
    pub fn hop_latency(&self) -> Latency {
        self.intra_latency + self.link_latency
    }
}

impl Default for StaticInfo {
    fn default() -> Self {
        StaticInfo::empty()
    }
}

impl Encode for StaticInfo {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_varint(self.link_latency.as_micros());
        writer.put_varint(self.link_bandwidth.as_kbps());
        writer.put_varint(self.intra_latency.as_micros());
        match self.egress_location {
            None => writer.put_bool(false),
            Some(loc) => {
                writer.put_bool(true);
                // Fixed-point encoding with 1e-6 degree resolution keeps the format integral.
                writer.put_u64_fixed(encode_coord(loc.lat));
                writer.put_u64_fixed(encode_coord(loc.lon));
            }
        }
    }
}

impl Decode for StaticInfo {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let link_latency = Latency::from_micros(reader.get_varint()?);
        let link_bandwidth = Bandwidth(reader.get_varint()?);
        let intra_latency = Latency::from_micros(reader.get_varint()?);
        let egress_location = if reader.get_bool()? {
            let lat = decode_coord(reader.get_u64_fixed()?)?;
            let lon = decode_coord(reader.get_u64_fixed()?)?;
            Some(GeoCoord::new(lat, lon))
        } else {
            None
        };
        Ok(StaticInfo {
            link_latency,
            link_bandwidth,
            intra_latency,
            egress_location,
        })
    }
}

/// Encodes a coordinate in fixed-point micro-degrees, offset to stay non-negative.
fn encode_coord(value: f64) -> u64 {
    ((value + 360.0) * 1_000_000.0).round() as u64
}

/// Decodes a fixed-point micro-degree coordinate.
fn decode_coord(raw: u64) -> Result<f64> {
    let value = raw as f64 / 1_000_000.0 - 360.0;
    if !(-360.0..=360.0).contains(&value) {
        return Err(IrecError::decode("coordinate out of range"));
    }
    Ok(value)
}

/// A complete per-AS entry of a PCB: hop info, static info and the AS's signature over the
/// beacon prefix up to and including this entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AsEntry {
    /// Hop information.
    pub hop: HopInfo,
    /// Shared performance metadata.
    pub static_info: StaticInfo,
    /// Signature by `hop.asn` over the canonical beacon prefix.
    pub signature: Signature,
}

impl AsEntry {
    /// The byte string a signature of this entry covers, given the canonical encoding of the
    /// preceding beacon content (`prefix`).
    pub fn signed_payload(prefix: &[u8], hop: &HopInfo, static_info: &StaticInfo) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(prefix.len() + 64);
        w.put_bytes(prefix);
        hop.encode(&mut w);
        static_info.encode(&mut w);
        w.into_bytes()
    }
}

impl Encode for AsEntry {
    fn encode(&self, writer: &mut WireWriter) {
        self.hop.encode(writer);
        self.static_info.encode(writer);
        writer.put_varint(self.signature.signer.value());
        writer.put_raw(self.signature.tag.as_bytes());
    }
}

impl Decode for AsEntry {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let hop = HopInfo::decode(reader)?;
        let static_info = StaticInfo::decode(reader)?;
        let signer = AsId(reader.get_varint()?);
        let tag_bytes = reader.get_raw(irec_crypto::DIGEST_LEN)?;
        let mut tag = [0u8; irec_crypto::DIGEST_LEN];
        tag.copy_from_slice(tag_bytes);
        Ok(AsEntry {
            hop,
            static_info,
            signature: Signature {
                signer,
                tag: irec_crypto::Digest(tag),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_wire::{from_bytes, to_bytes};
    use proptest::prelude::*;

    #[test]
    fn hop_info_constructors() {
        let o = HopInfo::origin(AsId(1), IfId(2));
        assert!(o.is_origin());
        assert_eq!(o.ingress, IfId::NONE);
        let t = HopInfo::transit(AsId(2), IfId(3), IfId(4));
        assert!(!t.is_origin());
    }

    #[test]
    fn hop_info_roundtrip() {
        let h = HopInfo::transit(AsId(77), IfId(5), IfId(9));
        let decoded: HopInfo = from_bytes(&to_bytes(&h)).unwrap();
        assert_eq!(decoded, h);
    }

    #[test]
    fn static_info_roundtrip_with_location() {
        let s = StaticInfo {
            link_latency: Latency::from_millis(12),
            link_bandwidth: Bandwidth::from_gbps(40),
            intra_latency: Latency::from_micros(350),
            egress_location: Some(GeoCoord::new(47.3769, 8.5417)),
        };
        let decoded: StaticInfo = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(decoded.link_latency, s.link_latency);
        assert_eq!(decoded.link_bandwidth, s.link_bandwidth);
        assert_eq!(decoded.intra_latency, s.intra_latency);
        let loc = decoded.egress_location.unwrap();
        assert!((loc.lat - 47.3769).abs() < 1e-5);
        assert!((loc.lon - 8.5417).abs() < 1e-5);
    }

    #[test]
    fn static_info_roundtrip_without_location() {
        let s = StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None);
        let decoded: StaticInfo = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(decoded, s);
    }

    #[test]
    fn hop_latency_sums_intra_and_link() {
        let s = StaticInfo {
            link_latency: Latency::from_millis(10),
            link_bandwidth: Bandwidth::MAX,
            intra_latency: Latency::from_millis(2),
            egress_location: None,
        };
        assert_eq!(s.hop_latency(), Latency::from_millis(12));
    }

    #[test]
    fn empty_static_info_defaults() {
        let s = StaticInfo::default();
        assert_eq!(s.link_latency, Latency::ZERO);
        assert_eq!(s.link_bandwidth, Bandwidth::MAX);
        assert_eq!(s.egress_location, None);
    }

    #[test]
    fn as_entry_roundtrip() {
        let entry = AsEntry {
            hop: HopInfo::transit(AsId(9), IfId(1), IfId(2)),
            static_info: StaticInfo::origin(
                Latency::from_millis(5),
                Bandwidth::from_mbps(250),
                Some(GeoCoord::new(-33.9, 151.2)),
            ),
            signature: Signature::placeholder(AsId(9)),
        };
        let decoded: AsEntry = from_bytes(&to_bytes(&entry)).unwrap();
        assert_eq!(decoded.hop, entry.hop);
        assert_eq!(decoded.signature, entry.signature);
        assert_eq!(
            decoded.static_info.link_latency,
            entry.static_info.link_latency
        );
        assert_eq!(
            decoded.static_info.link_bandwidth,
            entry.static_info.link_bandwidth
        );
        // Geolocation survives with micro-degree precision (the codec is fixed-point).
        let (d, o) = (
            decoded.static_info.egress_location.unwrap(),
            entry.static_info.egress_location.unwrap(),
        );
        assert!((d.lat - o.lat).abs() < 1e-5);
        assert!((d.lon - o.lon).abs() < 1e-5);
    }

    #[test]
    fn signed_payload_differs_for_different_prefixes() {
        let hop = HopInfo::origin(AsId(1), IfId(1));
        let si = StaticInfo::empty();
        let p1 = AsEntry::signed_payload(b"prefix-a", &hop, &si);
        let p2 = AsEntry::signed_payload(b"prefix-b", &hop, &si);
        assert_ne!(p1, p2);
    }

    #[test]
    fn coordinate_codec_bounds() {
        assert!(decode_coord(encode_coord(180.0)).is_ok());
        assert!(decode_coord(encode_coord(-180.0)).is_ok());
        assert!(decode_coord(u64::MAX).is_err());
    }

    proptest! {
        #[test]
        fn prop_static_info_roundtrip(lat_us in 0u64..10_000_000,
                                      bw in 0u64..u64::MAX / 2,
                                      intra_us in 0u64..1_000_000,
                                      lat in -90.0f64..90.0,
                                      lon in -180.0f64..180.0,
                                      with_loc in any::<bool>()) {
            let s = StaticInfo {
                link_latency: Latency::from_micros(lat_us),
                link_bandwidth: Bandwidth(bw),
                intra_latency: Latency::from_micros(intra_us),
                egress_location: with_loc.then(|| GeoCoord::new(lat, lon)),
            };
            let decoded: StaticInfo = from_bytes(&to_bytes(&s)).unwrap();
            prop_assert_eq!(decoded.link_latency, s.link_latency);
            prop_assert_eq!(decoded.link_bandwidth, s.link_bandwidth);
            prop_assert_eq!(decoded.intra_latency, s.intra_latency);
            prop_assert_eq!(decoded.egress_location.is_some(), with_loc);
            if let (Some(d), Some(o)) = (decoded.egress_location, s.egress_location) {
                prop_assert!((d.lat - o.lat).abs() < 1e-5);
                prop_assert!((d.lon - o.lon).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_hop_info_roundtrip(asn in any::<u64>(), ing in any::<u32>(), egr in any::<u32>()) {
            let h = HopInfo { asn: AsId(asn), ingress: IfId(ing), egress: IfId(egr) };
            let decoded: HopInfo = from_bytes(&to_bytes(&h)).unwrap();
            prop_assert_eq!(decoded, h);
        }
    }
}
