//! The IREC PCB extensions of §IV-F: Target, Algorithm and Interface group.
//!
//! All three extensions are added by the *origin* AS when it originates a PCB and are covered
//! by the origin's signature; on-path ASes never modify them.

use irec_crypto::Digest;
use irec_types::{AlgorithmId, AsId, InterfaceGroupId, Result};
use irec_wire::{Decode, Encode, WireReader, WireWriter};

/// Reference to an on-demand routing algorithm: its identifier (a caching hint) and the
/// collision-resistant hash of its executable code (the integrity anchor).
///
/// An on-demand RAC fetches the executable from the origin AS, verifies that its hash equals
/// `code_hash`, caches it by `(origin, id)`, and executes it in a sandbox (§V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AlgorithmRef {
    /// Identifier chosen by the origin AS.
    pub id: AlgorithmId,
    /// SHA-256 of the algorithm's executable (IRVM module bytes).
    pub code_hash: Digest,
}

impl AlgorithmRef {
    /// Creates an algorithm reference.
    pub const fn new(id: AlgorithmId, code_hash: Digest) -> Self {
        AlgorithmRef { id, code_hash }
    }

    /// Creates an algorithm reference by hashing the given module bytes.
    pub fn for_code(id: AlgorithmId, code: &[u8]) -> Self {
        AlgorithmRef {
            id,
            code_hash: irec_crypto::sha256(code),
        }
    }

    /// Verifies that `code` matches the pinned hash.
    pub fn matches(&self, code: &[u8]) -> bool {
        irec_crypto::sha256(code) == self.code_hash
    }
}

impl Encode for AlgorithmRef {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_varint(self.id.0);
        writer.put_raw(self.code_hash.as_bytes());
    }
}

impl Decode for AlgorithmRef {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let id = AlgorithmId(reader.get_varint()?);
        let hash_bytes = reader.get_raw(irec_crypto::DIGEST_LEN)?;
        let mut hash = [0u8; irec_crypto::DIGEST_LEN];
        hash.copy_from_slice(hash_bytes);
        Ok(AlgorithmRef {
            id,
            code_hash: Digest(hash),
        })
    }
}

/// The origin-controlled PCB extensions introduced by IREC (§IV-F).
///
/// Each extension is optional and appears at most once per PCB:
///
/// * `target` enables pull-based routing: non-target ASes keep propagating the PCB until it
///   reaches the target AS, which returns it to the origin.
/// * `algorithm` enables on-demand routing: every participating AS runs the referenced
///   algorithm on the PCBs carrying it.
/// * `interface_group` sets the optimization granularity for this beacon's origin interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PcbExtensions {
    /// Target AS for pull-based routing (§IV-B).
    pub target: Option<AsId>,
    /// On-demand routing algorithm reference (§IV-C).
    pub algorithm: Option<AlgorithmRef>,
    /// Origin interface group (§IV-D).
    pub interface_group: Option<InterfaceGroupId>,
}

impl PcbExtensions {
    /// Extensions of a plain (legacy-style) beacon: none set.
    pub const fn none() -> Self {
        PcbExtensions {
            target: None,
            algorithm: None,
            interface_group: None,
        }
    }

    /// Whether no extension is present (the PCB is processable by legacy control services).
    pub fn is_empty(&self) -> bool {
        self.target.is_none() && self.algorithm.is_none() && self.interface_group.is_none()
    }

    /// Builder-style: sets the pull-based routing target.
    #[must_use]
    pub fn with_target(mut self, target: AsId) -> Self {
        self.target = Some(target);
        self
    }

    /// Builder-style: sets the on-demand algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: AlgorithmRef) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Builder-style: sets the interface group.
    #[must_use]
    pub fn with_interface_group(mut self, group: InterfaceGroupId) -> Self {
        self.interface_group = Some(group);
        self
    }
}

impl Encode for PcbExtensions {
    fn encode(&self, writer: &mut WireWriter) {
        match self.target {
            None => writer.put_bool(false),
            Some(t) => {
                writer.put_bool(true);
                writer.put_varint(t.value());
            }
        }
        match &self.algorithm {
            None => writer.put_bool(false),
            Some(a) => {
                writer.put_bool(true);
                a.encode(writer);
            }
        }
        match self.interface_group {
            None => writer.put_bool(false),
            Some(g) => {
                writer.put_bool(true);
                writer.put_u32v(g.value());
            }
        }
    }
}

impl Decode for PcbExtensions {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let target = if reader.get_bool()? {
            Some(AsId(reader.get_varint()?))
        } else {
            None
        };
        let algorithm = if reader.get_bool()? {
            Some(AlgorithmRef::decode(reader)?)
        } else {
            None
        };
        let interface_group = if reader.get_bool()? {
            Some(InterfaceGroupId(reader.get_u32v()?))
        } else {
            None
        };
        Ok(PcbExtensions {
            target,
            algorithm,
            interface_group,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_wire::{from_bytes, to_bytes};
    use proptest::prelude::*;

    #[test]
    fn empty_extensions() {
        let e = PcbExtensions::none();
        assert!(e.is_empty());
        let decoded: PcbExtensions = from_bytes(&to_bytes(&e)).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn builder_style_extensions() {
        let alg = AlgorithmRef::for_code(AlgorithmId(7), b"module bytes");
        let e = PcbExtensions::none()
            .with_target(AsId(42))
            .with_algorithm(alg)
            .with_interface_group(InterfaceGroupId(3));
        assert!(!e.is_empty());
        assert_eq!(e.target, Some(AsId(42)));
        assert_eq!(e.algorithm, Some(alg));
        assert_eq!(e.interface_group, Some(InterfaceGroupId(3)));
    }

    #[test]
    fn full_extensions_roundtrip() {
        let e = PcbExtensions::none()
            .with_target(AsId(100))
            .with_algorithm(AlgorithmRef::for_code(AlgorithmId(1), b"code"))
            .with_interface_group(InterfaceGroupId(9));
        let decoded: PcbExtensions = from_bytes(&to_bytes(&e)).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn partial_extensions_roundtrip() {
        let e = PcbExtensions::none().with_interface_group(InterfaceGroupId(1));
        let decoded: PcbExtensions = from_bytes(&to_bytes(&e)).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn algorithm_ref_hash_verification() {
        let code = b"the algorithm";
        let r = AlgorithmRef::for_code(AlgorithmId(5), code);
        assert!(r.matches(code));
        assert!(!r.matches(b"tampered algorithm"));
    }

    #[test]
    fn algorithm_ref_roundtrip() {
        let r = AlgorithmRef::for_code(AlgorithmId(1234), b"xyz");
        let decoded: AlgorithmRef = from_bytes(&to_bytes(&r)).unwrap();
        assert_eq!(decoded, r);
    }

    proptest! {
        #[test]
        fn prop_extensions_roundtrip(target in proptest::option::of(any::<u64>()),
                                     group in proptest::option::of(any::<u32>()),
                                     code in proptest::option::of(proptest::collection::vec(any::<u8>(), 0..64))) {
            let mut e = PcbExtensions::none();
            if let Some(t) = target { e = e.with_target(AsId(t)); }
            if let Some(g) = group { e = e.with_interface_group(InterfaceGroupId(g)); }
            if let Some(c) = &code { e = e.with_algorithm(AlgorithmRef::for_code(AlgorithmId(1), c)); }
            let decoded: PcbExtensions = from_bytes(&to_bytes(&e)).unwrap();
            prop_assert_eq!(decoded, e);
        }
    }
}
