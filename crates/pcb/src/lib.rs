//! # irec-pcb
//!
//! Path-construction beacons (PCBs), the routing messages of the SCION/IREC control plane.
//!
//! A PCB describes one inter-domain path from an *origin AS* to the AS currently holding the
//! beacon, at the granularity of ingress/egress interfaces of every on-path AS. Each on-path
//! AS appends a signed [`AsEntry`] when it propagates the beacon, carrying
//!
//! * the hop information (ingress interface, egress interface),
//! * [`StaticInfo`] performance metadata: the latency/bandwidth of the egress link, the
//!   intra-AS crossing latency from ingress to egress, and the geolocation of the egress
//!   interface (the paper's "static info extensions"),
//! * a signature over the beacon prefix, so downstream ASes can verify authenticity.
//!
//! IREC adds three origin-controlled extensions (§IV-F of the paper), carried in
//! [`PcbExtensions`]:
//!
//! * **Target** — the target AS of pull-based routing (§IV-B),
//! * **Algorithm** — the identifier and code hash of an on-demand routing algorithm
//!   (§IV-C),
//! * **Interface group** — the origin interface group for flexible optimization granularity
//!   (§IV-D).
//!
//! All types implement the [`irec_wire`] codec; the canonical byte encoding is also what
//! gets hashed ([`Pcb::digest`]) for egress-database deduplication and what signatures cover.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod extensions;
pub mod hop;

pub use beacon::{Pcb, PcbId};
pub use extensions::{AlgorithmRef, PcbExtensions};
pub use hop::{AsEntry, HopInfo, StaticInfo};
