//! The path-construction beacon itself.

use crate::extensions::PcbExtensions;
use crate::hop::{AsEntry, HopInfo, StaticInfo};
use irec_crypto::{Digest, Signer, Verifier};
use irec_types::{AsId, IfId, IrecError, IsdId, PathMetrics, Result, SimTime};
use irec_wire::{Decode, Encode, WireReader, WireWriter};
use std::collections::HashSet;

/// Identifier of a PCB: the SHA-256 digest of its canonical wire encoding.
///
/// The egress database deduplicates on this id (the paper stores "only their hashes" there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PcbId(pub Digest);

impl PcbId {
    /// A short (64-bit) form of the id, convenient for logs and maps in tests.
    pub fn short(&self) -> u64 {
        self.0.short()
    }
}

/// A path-construction beacon.
///
/// The beacon starts empty at the origin AS (only header + extensions) and grows by one
/// signed [`AsEntry`] per traversed AS. An AS holding a PCB with entries
/// `E1 (origin), …, Ek` knows a path from the origin's beacon interface to its own ingress
/// interface (the far end of `Ek`'s egress link).
#[derive(Debug, Clone, PartialEq)]
pub struct Pcb {
    /// Isolation domain of the origin AS.
    pub origin_isd: IsdId,
    /// The AS that originated the beacon.
    pub origin: AsId,
    /// Origin-assigned sequence number, distinguishing beacons originated in the same round.
    pub sequence: u64,
    /// Origination time.
    pub created_at: SimTime,
    /// Expiry time; expired beacons are dropped by ingress/egress databases.
    pub expires_at: SimTime,
    /// IREC extensions (target, algorithm, interface group).
    pub extensions: PcbExtensions,
    /// One signed entry per traversed AS, in propagation order (origin first).
    pub entries: Vec<AsEntry>,
}

impl Pcb {
    /// Creates a beacon at the origin AS with no AS entries yet.
    pub fn originate(
        origin: AsId,
        sequence: u64,
        created_at: SimTime,
        expires_at: SimTime,
        extensions: PcbExtensions,
    ) -> Self {
        Pcb {
            origin_isd: IsdId(1),
            origin,
            sequence,
            created_at,
            expires_at,
            extensions,
            entries: Vec::new(),
        }
    }

    /// Number of AS entries (equals the number of traversed inter-domain links).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the beacon has no AS entries yet (it has not left the origin).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The AS that appended the last entry (the AS "closest" to the holder), or the origin if
    /// no entry exists yet.
    pub fn last_as(&self) -> AsId {
        self.entries
            .last()
            .map(|e| e.hop.asn)
            .unwrap_or(self.origin)
    }

    /// The egress interface of the last entry (the interface over which the beacon was sent
    /// to its current holder).
    pub fn last_egress(&self) -> Option<IfId> {
        self.entries.last().map(|e| e.hop.egress)
    }

    /// The beacon interface at the origin: the egress interface of the first entry.
    pub fn origin_interface(&self) -> Option<IfId> {
        self.entries.first().map(|e| e.hop.egress)
    }

    /// All on-path AS ids in propagation order (origin first).
    pub fn hop_asns(&self) -> Vec<AsId> {
        self.entries.iter().map(|e| e.hop.asn).collect()
    }

    /// Whether `asn` already appears on the path (loop check).
    pub fn contains_as(&self, asn: AsId) -> bool {
        self.entries.iter().any(|e| e.hop.asn == asn)
    }

    /// Whether any AS appears more than once (a malformed/looping beacon).
    pub fn has_loop(&self) -> bool {
        let mut seen = HashSet::with_capacity(self.entries.len());
        self.entries.iter().any(|e| !seen.insert(e.hop.asn))
    }

    /// Whether the beacon is expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now.is_at_or_after(self.expires_at)
    }

    /// The accumulated performance metrics of the path described by this beacon, from the
    /// origin's beacon interface to the ingress interface of the beacon's current holder.
    pub fn path_metrics(&self) -> PathMetrics {
        let mut metrics = PathMetrics::EMPTY;
        for entry in &self.entries {
            metrics = metrics.extend_intra(irec_types::LinkMetrics::new(
                entry.static_info.intra_latency,
                irec_types::Bandwidth::MAX,
            ));
            metrics = metrics.extend(irec_types::LinkMetrics::new(
                entry.static_info.link_latency,
                entry.static_info.link_bandwidth,
            ));
        }
        metrics
    }

    /// Identifies every inter-domain link on the path by `(AS, egress interface)` of the
    /// entry that crossed it. Because an interface attaches exactly one link, this uniquely
    /// identifies links and is the basis of the disjointness metrics (TLF) and of the
    /// pull-based disjointness algorithm's link-avoidance sets.
    pub fn link_keys(&self) -> Vec<(AsId, IfId)> {
        self.entries
            .iter()
            .map(|e| (e.hop.asn, e.hop.egress))
            .collect()
    }

    /// Canonical encoding of the beacon header (everything the origin signs besides its own
    /// hop entry: origin, sequence, validity, extensions).
    pub fn header_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64);
        w.put_varint(self.origin_isd.0 as u64);
        w.put_varint(self.origin.value());
        w.put_varint(self.sequence);
        w.put_varint(self.created_at.as_micros());
        w.put_varint(self.expires_at.as_micros());
        self.extensions.encode(&mut w);
        w.into_bytes()
    }

    /// Canonical encoding of the header plus the first `n` entries; entry `n` signs this
    /// prefix together with its own hop/static-info content.
    fn prefix_bytes(&self, n: usize) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(64 + n * 96);
        w.put_raw(&self.header_bytes());
        for entry in &self.entries[..n] {
            entry.encode(&mut w);
        }
        w.into_bytes()
    }

    /// Appends a signed AS entry: the AS `signer.asn()` propagates the beacon from ingress
    /// interface `ingress` out of egress interface `egress`, sharing `static_info`.
    ///
    /// Fails if the AS is already on the path (which would create a loop).
    pub fn extend(
        &mut self,
        ingress: IfId,
        egress: IfId,
        static_info: StaticInfo,
        signer: &Signer,
    ) -> Result<()> {
        let asn = signer.asn();
        if self.contains_as(asn) {
            return Err(IrecError::policy(format!(
                "extending PCB through {asn} would create a loop"
            )));
        }
        if self.is_empty() {
            // The first entry must come from the origin AS itself, with no ingress.
            if asn != self.origin {
                return Err(IrecError::policy(format!(
                    "first entry must be appended by the origin {} (got {asn})",
                    self.origin
                )));
            }
            if !ingress.is_none() {
                return Err(IrecError::policy(
                    "origin entry must not have an ingress interface",
                ));
            }
        } else if ingress.is_none() {
            return Err(IrecError::policy(
                "transit entry requires an ingress interface",
            ));
        }
        if egress.is_none() {
            return Err(IrecError::policy("an entry requires an egress interface"));
        }

        let hop = HopInfo {
            asn,
            ingress,
            egress,
        };
        let prefix = self.prefix_bytes(self.entries.len());
        let payload = AsEntry::signed_payload(&prefix, &hop, &static_info);
        let signature = signer.sign(&payload);
        self.entries.push(AsEntry {
            hop,
            static_info,
            signature,
        });
        Ok(())
    }

    /// Verifies every entry's signature and basic well-formedness (origin entry first, no
    /// loops, monotone structure). This is what the ingress gateway runs on received PCBs.
    pub fn verify(&self, verifier: &Verifier) -> Result<()> {
        if self.has_loop() {
            return Err(IrecError::policy("beacon path contains a loop"));
        }
        if self.expires_at <= self.created_at {
            return Err(IrecError::policy("beacon expires before it was created"));
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if i == 0 {
                if entry.hop.asn != self.origin || !entry.hop.is_origin() {
                    return Err(IrecError::verification(
                        "first entry is not a valid origin entry",
                    ));
                }
            } else if entry.hop.is_origin() {
                return Err(IrecError::verification(format!(
                    "transit entry {i} is missing an ingress interface"
                )));
            }
            let prefix = self.prefix_bytes(i);
            let payload = AsEntry::signed_payload(&prefix, &entry.hop, &entry.static_info);
            verifier.verify_from(entry.hop.asn, &payload, &entry.signature)?;
        }
        Ok(())
    }

    /// The content digest of the beacon (hash of its canonical wire encoding).
    pub fn digest(&self) -> PcbId {
        PcbId(irec_crypto::sha256(&self.encode_to_vec()))
    }
}

impl Encode for Pcb {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_raw(&self.header_bytes());
        writer.put_varint(self.entries.len() as u64);
        for entry in &self.entries {
            entry.encode(writer);
        }
    }
}

impl Decode for Pcb {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let origin_isd = IsdId(
            u16::try_from(reader.get_varint()?)
                .map_err(|_| IrecError::decode("ISD id out of range"))?,
        );
        let origin = AsId(reader.get_varint()?);
        let sequence = reader.get_varint()?;
        let created_at = SimTime::from_micros(reader.get_varint()?);
        let expires_at = SimTime::from_micros(reader.get_varint()?);
        let extensions = PcbExtensions::decode(reader)?;
        let count = reader.get_varint()? as usize;
        if count > 1024 {
            return Err(IrecError::decode(format!(
                "implausible entry count {count}"
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(AsEntry::decode(reader)?);
        }
        Ok(Pcb {
            origin_isd,
            origin,
            sequence,
            created_at,
            expires_at,
            extensions,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::{KeyRegistry, Signer, Verifier};
    use irec_types::{Bandwidth, Latency, SimDuration};
    use irec_wire::{from_bytes, to_bytes};

    fn registry() -> KeyRegistry {
        KeyRegistry::with_ases(1, 32)
    }

    fn static_info(link_ms: u64, bw_mbps: u64, intra_ms: u64) -> StaticInfo {
        StaticInfo {
            link_latency: Latency::from_millis(link_ms),
            link_bandwidth: Bandwidth::from_mbps(bw_mbps),
            intra_latency: Latency::from_millis(intra_ms),
            egress_location: None,
        }
    }

    /// Builds a 3-AS beacon: AS1 (origin) -> AS2 -> AS3 (holder not yet appended).
    fn sample_pcb(reg: &KeyRegistry) -> Pcb {
        let mut pcb = Pcb::originate(
            AsId(1),
            7,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none(),
        );
        let s1 = Signer::new(AsId(1), reg.clone());
        let s2 = Signer::new(AsId(2), reg.clone());
        pcb.extend(IfId::NONE, IfId(1), static_info(10, 100, 0), &s1)
            .unwrap();
        pcb.extend(IfId(4), IfId(5), static_info(5, 40, 2), &s2)
            .unwrap();
        pcb
    }

    #[test]
    fn originate_and_extend() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        assert_eq!(pcb.len(), 2);
        assert_eq!(pcb.hop_asns(), vec![AsId(1), AsId(2)]);
        assert_eq!(pcb.last_as(), AsId(2));
        assert_eq!(pcb.last_egress(), Some(IfId(5)));
        assert_eq!(pcb.origin_interface(), Some(IfId(1)));
        assert!(!pcb.is_empty());
    }

    #[test]
    fn path_metrics_accumulate() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        let m = pcb.path_metrics();
        // 10ms + (2ms intra + 5ms link) = 17ms, bottleneck 40 Mbps, 2 hops.
        assert_eq!(m.latency, Latency::from_millis(17));
        assert_eq!(m.bandwidth, Bandwidth::from_mbps(40));
        assert_eq!(m.hops, 2);
    }

    #[test]
    fn verify_accepts_valid_beacon() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        let verifier = Verifier::new(reg);
        assert!(pcb.verify(&verifier).is_ok());
    }

    #[test]
    fn verify_rejects_tampered_static_info() {
        let reg = registry();
        let mut pcb = sample_pcb(&reg);
        pcb.entries[1].static_info.link_latency = Latency::from_millis(1);
        let verifier = Verifier::new(reg);
        assert!(pcb.verify(&verifier).is_err());
    }

    #[test]
    fn verify_rejects_tampered_extensions() {
        let reg = registry();
        let mut pcb = sample_pcb(&reg);
        pcb.extensions = PcbExtensions::none().with_target(AsId(9));
        let verifier = Verifier::new(reg);
        assert!(pcb.verify(&verifier).is_err());
    }

    #[test]
    fn verify_rejects_reordered_entries() {
        let reg = registry();
        let mut pcb = sample_pcb(&reg);
        pcb.entries.swap(0, 1);
        let verifier = Verifier::new(reg);
        assert!(pcb.verify(&verifier).is_err());
    }

    #[test]
    fn loop_prevention_on_extend() {
        let reg = registry();
        let mut pcb = sample_pcb(&reg);
        let s1 = Signer::new(AsId(1), reg);
        let err = pcb.extend(IfId(9), IfId(10), StaticInfo::empty(), &s1);
        assert!(err.is_err());
        assert_eq!(err.unwrap_err().category(), "policy");
    }

    #[test]
    fn first_entry_must_be_origin() {
        let reg = registry();
        let mut pcb = Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(1),
            PcbExtensions::none(),
        );
        let s2 = Signer::new(AsId(2), reg.clone());
        assert!(pcb
            .extend(IfId::NONE, IfId(1), StaticInfo::empty(), &s2)
            .is_err());
        // Origin with an ingress interface is also invalid.
        let s1 = Signer::new(AsId(1), reg.clone());
        assert!(pcb
            .extend(IfId(3), IfId(1), StaticInfo::empty(), &s1)
            .is_err());
        // Missing egress is invalid.
        assert!(pcb
            .extend(IfId::NONE, IfId::NONE, StaticInfo::empty(), &s1)
            .is_err());
        // Correct origin entry works.
        assert!(pcb
            .extend(IfId::NONE, IfId(1), StaticInfo::empty(), &s1)
            .is_ok());
        // Transit entry without ingress is invalid.
        assert!(pcb
            .extend(IfId::NONE, IfId(1), StaticInfo::empty(), &s2)
            .is_err());
    }

    #[test]
    fn expiry_check() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        assert!(!pcb.is_expired(SimTime::ZERO + SimDuration::from_hours(1)));
        assert!(pcb.is_expired(SimTime::ZERO + SimDuration::from_hours(7)));
    }

    #[test]
    fn verify_rejects_invalid_validity_window() {
        let reg = registry();
        let mut pcb = sample_pcb(&reg);
        pcb.expires_at = SimTime::ZERO;
        let verifier = Verifier::new(reg);
        assert!(pcb.verify(&verifier).is_err());
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        let reg = registry();
        let mut pcb = sample_pcb(&reg);
        pcb.extensions = PcbExtensions::none()
            .with_target(AsId(30))
            .with_interface_group(irec_types::InterfaceGroupId(2));
        let decoded: Pcb = from_bytes(&to_bytes(&pcb)).unwrap();
        assert_eq!(decoded, pcb);
        assert_eq!(decoded.digest(), pcb.digest());
    }

    #[test]
    fn digest_changes_with_content() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        let mut other = pcb.clone();
        other.sequence += 1;
        assert_ne!(pcb.digest(), other.digest());
        assert_ne!(pcb.digest().short(), other.digest().short());
    }

    #[test]
    fn link_keys_identify_traversed_links() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        assert_eq!(
            pcb.link_keys(),
            vec![(AsId(1), IfId(1)), (AsId(2), IfId(5))]
        );
    }

    #[test]
    fn decode_rejects_absurd_entry_count() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        let mut bytes = Vec::new();
        // header
        bytes.extend_from_slice(&pcb.header_bytes());
        // entry count: huge
        let mut w = irec_wire::WireWriter::new();
        w.put_varint(1_000_000);
        bytes.extend_from_slice(w.as_slice());
        assert!(from_bytes::<Pcb>(&bytes).is_err());
    }

    #[test]
    fn truncated_pcb_decoding_fails_gracefully() {
        let reg = registry();
        let pcb = sample_pcb(&reg);
        let bytes = to_bytes(&pcb);
        for cut in [1usize, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes::<Pcb>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn empty_beacon_metrics_are_identity() {
        let pcb = Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(1),
            PcbExtensions::none(),
        );
        assert!(pcb.is_empty());
        assert_eq!(pcb.path_metrics(), PathMetrics::EMPTY);
        assert_eq!(pcb.last_as(), AsId(1));
        assert_eq!(pcb.last_egress(), None);
        assert_eq!(pcb.origin_interface(), None);
    }
}
