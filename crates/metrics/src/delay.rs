//! Minimum propagation delay between PoP pairs (Fig. 8a).
//!
//! The paper defines a PoP of an AS as a geolocation with at least one inter-domain link and
//! evaluates, per algorithm, the minimum propagation delay between every pair of PoPs of
//! different ASes. When no registered path ends exactly at the desired PoPs, the intra-domain
//! great-circle delay between the path's end PoPs and the desired PoPs is added.

use crate::paths::RegisteredPath;
use irec_topology::{PointOfPresence, Topology};
use irec_types::{AsId, IfId, Latency};
use std::collections::{BTreeMap, HashMap};

/// Identifies a PoP: AS plus PoP index within that AS.
pub type PopRef = (AsId, usize);

/// The minimum delay found per (holder PoP, origin PoP) pair, in microseconds.
pub type PopPairDelays = BTreeMap<(PopRef, PopRef), u64>;

/// Computes, for one algorithm's registered paths, the minimum delay between every PoP pair
/// `(holder PoP, origin PoP)` for which at least one registered path between the two ASes
/// exists.
///
/// `pops` must be the per-AS PoP clustering of `topology` (see
/// [`irec_topology::pop::points_of_presence`]).
pub fn pop_pair_delays(
    topology: &Topology,
    pops: &BTreeMap<AsId, Vec<PointOfPresence>>,
    paths: &[RegisteredPath],
) -> PopPairDelays {
    // Index: interface -> PoP index, per AS.
    let mut if_to_pop: HashMap<(AsId, IfId), usize> = HashMap::new();
    for (asn, as_pops) in pops {
        for pop in as_pops {
            for ifid in &pop.interfaces {
                if_to_pop.insert((*asn, *ifid), pop.index);
            }
        }
    }

    let mut out: PopPairDelays = BTreeMap::new();
    for path in paths {
        let Some(holder_pops) = pops.get(&path.holder) else {
            continue;
        };
        let Some(origin_pops) = pops.get(&path.origin) else {
            continue;
        };
        let Some(&holder_end) = if_to_pop.get(&(path.holder, path.holder_interface)) else {
            continue;
        };
        let Some(&origin_end) = if_to_pop.get(&(path.origin, path.origin_interface)) else {
            continue;
        };
        // Interface locations of the path endpoints (for the intra-AS correction).
        let holder_end_loc = holder_pops[holder_end].location;
        let origin_end_loc = origin_pops[origin_end].location;

        for hp in holder_pops {
            for op in origin_pops {
                let holder_extra = hp.location.propagation_delay(&holder_end_loc);
                let origin_extra = op.location.propagation_delay(&origin_end_loc);
                let total = path.metrics.latency + holder_extra + origin_extra;
                let key = ((path.holder, hp.index), (path.origin, op.index));
                out.entry(key)
                    .and_modify(|best| *best = (*best).min(total.as_micros()))
                    .or_insert(total.as_micros());
            }
        }
    }
    let _ = topology; // Topology is part of the API for callers that precompute PoPs lazily.
    out
}

/// Computes the per-PoP-pair delay of `series` relative to `baseline` (Fig. 8a plots the
/// delay of every algorithm relative to 1SP).
///
/// PoP pairs missing from `series` but present in `baseline` are reported as
/// `f64::INFINITY`-free "greater than one" sentinels: the paper's "greater-than-one tails
/// correspond to PoP pairs for which 1SP finds an inter-domain path while other algorithms do
/// not". We encode them with the provided `missing_ratio` (e.g. 1.5) so they land in the tail
/// of the CDF without distorting it.
pub fn relative_to_baseline(
    series: &PopPairDelays,
    baseline: &PopPairDelays,
    missing_ratio: f64,
) -> Vec<f64> {
    let mut ratios = Vec::with_capacity(baseline.len());
    for (pair, &base_us) in baseline {
        if base_us == 0 {
            continue;
        }
        match series.get(pair) {
            Some(&us) => ratios.push(us as f64 / base_us as f64),
            None => ratios.push(missing_ratio),
        }
    }
    ratios
}

/// Convenience: minimum delay per (holder AS, origin AS) pair, ignoring PoPs. Used by tests
/// and by the quickstart example.
pub fn as_pair_delays(paths: &[RegisteredPath]) -> BTreeMap<(AsId, AsId), Latency> {
    let mut out = BTreeMap::new();
    for path in paths {
        out.entry((path.holder, path.origin))
            .and_modify(|best: &mut Latency| {
                if path.metrics.latency < *best {
                    *best = path.metrics.latency;
                }
            })
            .or_insert(path.metrics.latency);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_topology::pop::points_of_presence;
    use irec_topology::{AsNode, Relationship, Tier};
    use irec_types::{Bandwidth, GeoCoord, InterfaceGroupId, PathMetrics};

    /// Topology: AS1 with PoPs in Zurich and New York, AS2 with a PoP in Frankfurt,
    /// connected Zurich<->Frankfurt and NewYork<->Frankfurt.
    fn topo() -> Topology {
        let mut t = Topology::new();
        t.add_as(AsNode::new(AsId(1), Tier::Tier2)).unwrap();
        t.add_as(AsNode::new(AsId(2), Tier::Tier2)).unwrap();
        t.add_link(
            AsId(1),
            IfId(1),
            GeoCoord::new(47.37, 8.54),
            AsId(2),
            IfId(1),
            GeoCoord::new(50.11, 8.68),
            Bandwidth::from_gbps(10),
            Relationship::PeerToPeer,
        )
        .unwrap();
        t.add_link(
            AsId(1),
            IfId(2),
            GeoCoord::new(40.71, -74.0),
            AsId(2),
            IfId(2),
            GeoCoord::new(50.11, 8.68),
            Bandwidth::from_gbps(10),
            Relationship::PeerToPeer,
        )
        .unwrap();
        t
    }

    fn path(
        holder: u64,
        holder_if: u32,
        origin: u64,
        origin_if: u32,
        latency_ms: u64,
    ) -> RegisteredPath {
        RegisteredPath {
            holder: AsId(holder),
            origin: AsId(origin),
            algorithm: "test".into(),
            group: InterfaceGroupId::DEFAULT,
            origin_interface: IfId(origin_if),
            holder_interface: IfId(holder_if),
            metrics: PathMetrics {
                latency: Latency::from_millis(latency_ms),
                bandwidth: Bandwidth::from_gbps(1),
                hops: 1,
            },
            links: vec![(AsId(origin), IfId(origin_if))],
        }
    }

    #[test]
    fn pop_pair_delay_prefers_direct_paths_and_adds_corrections() {
        let t = topo();
        let pops = points_of_presence(&t, 50.0);
        assert_eq!(pops[&AsId(1)].len(), 2);
        assert_eq!(pops[&AsId(2)].len(), 1);

        // One registered path at AS1 towards AS2 ending at the Zurich interface (if1).
        let paths = vec![path(1, 1, 2, 1, 2)];
        let delays = pop_pair_delays(&t, &pops, &paths);

        // Zurich PoP of AS1 (index of the PoP containing if1) -> direct, no correction.
        let zurich_pop = pops[&AsId(1)]
            .iter()
            .find(|p| p.interfaces.contains(&IfId(1)))
            .unwrap()
            .index;
        let ny_pop = pops[&AsId(1)]
            .iter()
            .find(|p| p.interfaces.contains(&IfId(2)))
            .unwrap()
            .index;
        let frankfurt_pop = pops[&AsId(2)][0].index;

        let direct = delays[&((AsId(1), zurich_pop), (AsId(2), frankfurt_pop))];
        let corrected = delays[&((AsId(1), ny_pop), (AsId(2), frankfurt_pop))];
        assert_eq!(direct, Latency::from_millis(2).as_micros());
        // The New York PoP has no direct path end, so the Zurich->NY great-circle delay
        // (~31 ms) is added.
        assert!(corrected > direct + Latency::from_millis(25).as_micros());
    }

    #[test]
    fn multiple_paths_take_the_minimum() {
        let t = topo();
        let pops = points_of_presence(&t, 50.0);
        let paths = vec![path(1, 1, 2, 1, 30), path(1, 1, 2, 1, 10)];
        let delays = pop_pair_delays(&t, &pops, &paths);
        let zurich_pop = pops[&AsId(1)]
            .iter()
            .find(|p| p.interfaces.contains(&IfId(1)))
            .unwrap()
            .index;
        let frankfurt_pop = pops[&AsId(2)][0].index;
        assert_eq!(
            delays[&((AsId(1), zurich_pop), (AsId(2), frankfurt_pop))],
            Latency::from_millis(10).as_micros()
        );
    }

    #[test]
    fn unknown_interfaces_are_skipped() {
        let t = topo();
        let pops = points_of_presence(&t, 50.0);
        let paths = vec![path(1, 99, 2, 1, 10)];
        let delays = pop_pair_delays(&t, &pops, &paths);
        assert!(delays.is_empty());
    }

    #[test]
    fn relative_to_baseline_ratios() {
        let mut baseline = PopPairDelays::new();
        let mut series = PopPairDelays::new();
        let a = ((AsId(1), 0), (AsId(2), 0));
        let b = ((AsId(1), 1), (AsId(2), 0));
        baseline.insert(a, 10_000);
        baseline.insert(b, 20_000);
        series.insert(a, 5_000);
        // b missing in the series -> sentinel ratio.
        let ratios = relative_to_baseline(&series, &baseline, 1.5);
        assert_eq!(ratios, vec![0.5, 1.5]);
    }

    #[test]
    fn as_pair_delays_take_minimum() {
        let paths = vec![path(1, 1, 2, 1, 30), path(1, 2, 2, 2, 12)];
        let delays = as_pair_delays(&paths);
        assert_eq!(delays[&(AsId(1), AsId(2))], Latency::from_millis(12));
    }
}
