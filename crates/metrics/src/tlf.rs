//! Tolerable link failures (TLF), the disjointness metric of Fig. 8b.
//!
//! The paper defines TLF between a pair of ASes as "the minimum number of links on discovered
//! paths that can be removed until all those paths are disconnected". That is the minimum
//! hitting set over the paths' link sets: a smallest set of links such that every discovered
//! path contains at least one of them. With at most 20 registered paths per pair (the
//! evaluation's budget) an exact branch-and-bound search is cheap; a greedy upper bound
//! provides the initial pruning bound and the fallback for pathological inputs.

use crate::paths::RegisteredPath;
use irec_types::{AsId, IfId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One path expressed as its sequence of inter-domain links.
type LinkPath = Vec<(AsId, IfId)>;

/// Maximum number of branch-and-bound nodes explored before falling back to the greedy bound.
const SEARCH_BUDGET: usize = 200_000;

/// Computes the minimum hitting set size over `paths`, where each path is a set of links.
///
/// Returns 0 for an empty input (no paths means nothing needs to be cut). A path with no
/// links (a degenerate 0-hop path) can never be disconnected; such inputs return
/// `usize::MAX` to signal "cannot disconnect".
pub fn min_links_to_disconnect(paths: &[Vec<(AsId, IfId)>]) -> usize {
    if paths.is_empty() {
        return 0;
    }
    let sets: Vec<HashSet<(AsId, IfId)>> =
        paths.iter().map(|p| p.iter().copied().collect()).collect();
    if sets.iter().any(|s| s.is_empty()) {
        return usize::MAX;
    }

    // Greedy upper bound: repeatedly remove the link hitting the most un-hit paths.
    let greedy = greedy_hitting_set(&sets);
    let mut best = greedy;
    let mut nodes = 0usize;
    let mut chosen: HashSet<(AsId, IfId)> = HashSet::new();
    branch(&sets, &mut chosen, 0, &mut best, &mut nodes);
    best
}

fn greedy_hitting_set(sets: &[HashSet<(AsId, IfId)>]) -> usize {
    let mut unhit: Vec<&HashSet<(AsId, IfId)>> = sets.iter().collect();
    let mut count = 0;
    while !unhit.is_empty() {
        let mut freq: HashMap<(AsId, IfId), usize> = HashMap::new();
        for s in &unhit {
            for l in s.iter() {
                *freq.entry(*l).or_default() += 1;
            }
        }
        let (&link, _) = freq
            .iter()
            .max_by_key(|(l, c)| (**c, std::cmp::Reverse(*l)))
            .expect("unhit sets are non-empty");
        unhit.retain(|s| !s.contains(&link));
        count += 1;
    }
    count
}

fn branch(
    sets: &[HashSet<(AsId, IfId)>],
    chosen: &mut HashSet<(AsId, IfId)>,
    depth: usize,
    best: &mut usize,
    nodes: &mut usize,
) {
    *nodes += 1;
    if *nodes > SEARCH_BUDGET || depth >= *best {
        return;
    }
    // Find an un-hit path; if none, we found a smaller hitting set.
    let Some(unhit) = sets.iter().find(|s| s.is_disjoint(chosen)) else {
        *best = depth;
        return;
    };
    // Branch on each link of the un-hit path (sorted for determinism).
    let mut links: Vec<(AsId, IfId)> = unhit.iter().copied().collect();
    links.sort_unstable();
    for link in links {
        chosen.insert(link);
        branch(sets, chosen, depth + 1, best, nodes);
        chosen.remove(&link);
    }
}

/// Computes the TLF per (holder AS, origin AS) pair from registered paths.
pub fn tlf_per_as_pair(paths: &[RegisteredPath]) -> BTreeMap<(AsId, AsId), usize> {
    let mut grouped: BTreeMap<(AsId, AsId), Vec<LinkPath>> = BTreeMap::new();
    for p in paths {
        grouped
            .entry((p.holder, p.origin))
            .or_default()
            .push(p.links.clone());
    }
    grouped
        .into_iter()
        .map(|(pair, link_sets)| (pair, min_links_to_disconnect(&link_sets)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_types::{Bandwidth, InterfaceGroupId, Latency, PathMetrics};
    use proptest::prelude::*;

    fn links(spec: &[(u64, u32)]) -> Vec<(AsId, IfId)> {
        spec.iter().map(|(a, i)| (AsId(*a), IfId(*i))).collect()
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(min_links_to_disconnect(&[]), 0);
        assert_eq!(min_links_to_disconnect(&[vec![]]), usize::MAX);
    }

    #[test]
    fn single_path_needs_one_link() {
        assert_eq!(
            min_links_to_disconnect(&[links(&[(1, 1), (2, 1), (3, 1)])]),
            1
        );
    }

    #[test]
    fn fully_disjoint_paths_need_one_cut_each() {
        let paths = vec![
            links(&[(1, 1), (2, 1)]),
            links(&[(1, 2), (3, 1)]),
            links(&[(1, 3), (4, 1)]),
        ];
        assert_eq!(min_links_to_disconnect(&paths), 3);
    }

    #[test]
    fn shared_link_reduces_tlf_to_one() {
        // All three paths share the link (9, 9): removing it disconnects everything.
        let paths = vec![
            links(&[(1, 1), (9, 9)]),
            links(&[(2, 1), (9, 9)]),
            links(&[(3, 1), (9, 9), (4, 1)]),
        ];
        assert_eq!(min_links_to_disconnect(&paths), 1);
    }

    #[test]
    fn partially_overlapping_paths() {
        // Paths: {a,b}, {b,c}, {c,d}. Hitting set {b, c} works; nothing smaller does
        // ({b} misses {c,d}, {c} misses {a,b}).
        let a = (AsId(1), IfId(1));
        let b = (AsId(2), IfId(1));
        let c = (AsId(3), IfId(1));
        let d = (AsId(4), IfId(1));
        let paths = vec![vec![a, b], vec![b, c], vec![c, d]];
        assert_eq!(min_links_to_disconnect(&paths), 2);
    }

    #[test]
    fn exact_beats_greedy_when_greedy_is_suboptimal() {
        // Classic hitting-set instance where greedy can pick the high-degree element first
        // and end up with 3 while the optimum is 2:
        // sets: {x,a1},{x,a2},{y,b1},{y,b2},{x,y}
        let x = (AsId(10), IfId(1));
        let y = (AsId(11), IfId(1));
        let a1 = (AsId(1), IfId(1));
        let a2 = (AsId(2), IfId(1));
        let b1 = (AsId(3), IfId(1));
        let b2 = (AsId(4), IfId(1));
        let paths = vec![
            vec![x, a1],
            vec![x, a2],
            vec![y, b1],
            vec![y, b2],
            vec![x, y],
        ];
        assert_eq!(min_links_to_disconnect(&paths), 2);
    }

    #[test]
    fn tlf_per_as_pair_groups_paths() {
        let mk = |holder: u64, origin: u64, l: Vec<(AsId, IfId)>| RegisteredPath {
            holder: AsId(holder),
            origin: AsId(origin),
            algorithm: "HD".into(),
            group: InterfaceGroupId::DEFAULT,
            origin_interface: IfId(1),
            holder_interface: IfId(1),
            metrics: PathMetrics {
                latency: Latency::from_millis(1),
                bandwidth: Bandwidth::from_mbps(1),
                hops: l.len() as u32,
            },
            links: l,
        };
        let paths = vec![
            mk(1, 2, links(&[(2, 1), (5, 1)])),
            mk(1, 2, links(&[(2, 2), (6, 1)])),
            mk(1, 3, links(&[(3, 1)])),
        ];
        let tlf = tlf_per_as_pair(&paths);
        assert_eq!(tlf[&(AsId(1), AsId(2))], 2);
        assert_eq!(tlf[&(AsId(1), AsId(3))], 1);
    }

    proptest! {
        /// TLF can never exceed the number of paths (cutting one link per path always works)
        /// and is at least 1 for a non-empty set of non-degenerate paths.
        #[test]
        fn prop_tlf_bounds(paths in proptest::collection::vec(
            proptest::collection::vec((1u64..20, 1u32..5), 1..6), 1..10))
        {
            let link_sets: Vec<Vec<(AsId, IfId)>> = paths
                .iter()
                .map(|p| p.iter().map(|(a, i)| (AsId(*a), IfId(*i))).collect())
                .collect();
            let tlf = min_links_to_disconnect(&link_sets);
            prop_assert!(tlf >= 1);
            prop_assert!(tlf <= link_sets.len());
        }

        /// Adding a path can never decrease the TLF... is false in general (hitting sets are
        /// monotone in the other direction); what *is* true: TLF of a subset is <= TLF of the
        /// superset + 1 path, and TLF never exceeds the greedy bound.
        #[test]
        fn prop_exact_never_exceeds_greedy(paths in proptest::collection::vec(
            proptest::collection::vec((1u64..15, 1u32..4), 1..5), 1..8))
        {
            let link_sets: Vec<HashSet<(AsId, IfId)>> = paths
                .iter()
                .map(|p| p.iter().map(|(a, i)| (AsId(*a), IfId(*i))).collect())
                .collect();
            let as_vecs: Vec<Vec<(AsId, IfId)>> = link_sets
                .iter()
                .map(|s| s.iter().copied().collect())
                .collect();
            let exact = min_links_to_disconnect(&as_vecs);
            let greedy = greedy_hitting_set(&link_sets);
            prop_assert!(exact <= greedy);
        }
    }
}
