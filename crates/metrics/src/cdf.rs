//! Cumulative distribution functions — every Fig. 8 plot in the paper is a CDF.

/// An empirical CDF over a set of sample values.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    /// The samples, sorted ascending.
    samples: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. Non-finite values are dropped.
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values are comparable"));
        Cdf { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the CDF has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The fraction of samples that are ≤ `x` (the CDF value at `x`).
    pub fn fraction_at(&self, x: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let count = self.samples.partition_point(|v| *v <= x);
        count as f64 / self.samples.len() as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// The median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
    }

    /// The minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.samples.first().copied()
    }

    /// The maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.samples.last().copied()
    }

    /// Renders the CDF as `(value, cumulative fraction)` points, one per sample (suitable for
    /// plotting or printing a figure series).
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.samples.len() as f64;
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n))
            .collect()
    }

    /// Renders the CDF evaluated at `steps + 1` evenly spaced probe values between `lo` and
    /// `hi`, as `(probe, fraction ≤ probe)` rows — the format the fig8 binaries print.
    pub fn sampled_points(&self, lo: f64, hi: f64, steps: usize) -> Vec<(f64, f64)> {
        let steps = steps.max(1);
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                (x, self.fraction_at(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_statistics() {
        let cdf = Cdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(4.0));
        assert_eq!(cdf.mean(), Some(2.5));
        assert_eq!(cdf.median(), Some(2.0));
        assert_eq!(cdf.quantile(0.25), Some(1.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
    }

    #[test]
    fn fraction_at_boundaries() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.fraction_at(0.5), 0.0);
        assert_eq!(cdf.fraction_at(1.0), 0.25);
        assert_eq!(cdf.fraction_at(2.5), 0.5);
        assert_eq!(cdf.fraction_at(10.0), 1.0);
    }

    #[test]
    fn empty_cdf_is_well_behaved() {
        let cdf = Cdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mean(), None);
        assert!(cdf.points().is_empty());
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let cdf = Cdf::new(vec![1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn points_are_monotone() {
        let cdf = Cdf::new(vec![5.0, 1.0, 3.0, 3.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn sampled_points_cover_the_range() {
        let cdf = Cdf::new(vec![1.0, 2.0, 3.0]);
        let pts = cdf.sampled_points(0.0, 4.0, 4);
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[0], (0.0, 0.0));
        assert_eq!(pts[4], (4.0, 1.0));
    }

    proptest! {
        #[test]
        fn prop_fraction_at_is_monotone(mut samples in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                        probes in proptest::collection::vec(-1e6f64..1e6, 2..10)) {
            samples.retain(|v| v.is_finite());
            let cdf = Cdf::new(samples);
            let mut sorted_probes = probes.clone();
            sorted_probes.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let fractions: Vec<f64> = sorted_probes.iter().map(|&p| cdf.fraction_at(p)).collect();
            for w in fractions.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        #[test]
        fn prop_quantile_within_sample_range(samples in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                             q in 0.0f64..1.0) {
            let cdf = Cdf::new(samples);
            let v = cdf.quantile(q).unwrap();
            prop_assert!(v >= cdf.min().unwrap() && v <= cdf.max().unwrap());
        }
    }
}
