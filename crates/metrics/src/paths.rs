//! The registered-path record: what the egress gateway registers at the path service and
//! what all evaluation metrics are computed from.
//!
//! The paper bases its evaluation "on the registered paths only, i.e., the ones available to
//! endpoints" (§VIII-B); this type is that record, tagged with the algorithm that produced it
//! (the egress gateway "tags the PCBs with the set of criteria they were optimized for").

use irec_types::{AsId, IfId, InterfaceGroupId, PathMetrics};

/// One inter-domain path registered at an AS's path service.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredPath {
    /// The AS holding (and registering) the path — the future traffic source side.
    pub holder: AsId,
    /// The origin AS of the underlying beacon — the future traffic destination side.
    pub origin: AsId,
    /// Name of the algorithm (RAC) that selected the path, e.g. `1SP`, `HD`, `DO`.
    pub algorithm: String,
    /// Interface group the beacon was originated for.
    pub group: InterfaceGroupId,
    /// The beacon interface at the origin AS (the first hop's egress interface).
    pub origin_interface: IfId,
    /// The local interface at the holder on which the beacon arrived.
    pub holder_interface: IfId,
    /// Accumulated path metrics from the origin interface to the holder interface.
    pub metrics: PathMetrics,
    /// The traversed inter-domain links, identified by `(AS, egress interface)`.
    pub links: Vec<(AsId, IfId)>,
}

impl RegisteredPath {
    /// Number of AS-level hops.
    pub fn hops(&self) -> u32 {
        self.metrics.hops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_types::{Bandwidth, Latency};

    #[test]
    fn registered_path_accessors() {
        let p = RegisteredPath {
            holder: AsId(1),
            origin: AsId(2),
            algorithm: "1SP".into(),
            group: InterfaceGroupId::DEFAULT,
            origin_interface: IfId(3),
            holder_interface: IfId(4),
            metrics: PathMetrics {
                latency: Latency::from_millis(20),
                bandwidth: Bandwidth::from_mbps(100),
                hops: 2,
            },
            links: vec![(AsId(2), IfId(3)), (AsId(5), IfId(1))],
        };
        assert_eq!(p.hops(), 2);
        assert_eq!(p.links.len(), 2);
    }
}
