//! Control-plane message overhead: PCBs sent per interface per beaconing period (Fig. 8c).

use irec_types::{AsId, IfId};
use std::collections::BTreeMap;

/// Counts PCB transmissions per (AS, egress interface, beaconing period).
///
/// The simulator increments the counter on every PCB an egress gateway sends; the Fig. 8c
/// series is the distribution of these counts over all interfaces and periods (including the
/// zero counts of interfaces that stayed silent in a period, which is what gives HD and PD
/// their "low overhead during most periods" shape).
#[derive(Debug, Clone, Default)]
pub struct OverheadCounter {
    counts: BTreeMap<(AsId, IfId, u64), u64>,
    /// All interfaces ever observed, so silent periods can be filled with zeros.
    interfaces: std::collections::BTreeSet<(AsId, IfId)>,
    max_period: u64,
}

impl OverheadCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an interface so that its silent periods are counted as zero.
    pub fn register_interface(&mut self, asn: AsId, interface: IfId) {
        self.interfaces.insert((asn, interface));
    }

    /// Records `count` PCBs sent on `(asn, interface)` during `period`.
    pub fn record(&mut self, asn: AsId, interface: IfId, period: u64, count: u64) {
        if count == 0 {
            return;
        }
        self.interfaces.insert((asn, interface));
        self.max_period = self.max_period.max(period);
        *self.counts.entry((asn, interface, period)).or_default() += count;
    }

    /// Total number of PCBs recorded.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct (interface, period) cells with at least one transmission.
    pub fn active_cells(&self) -> usize {
        self.counts.len()
    }

    /// The per-interface-per-period samples, including zeros for silent periods of registered
    /// interfaces. This is the Fig. 8c distribution.
    pub fn samples(&self) -> Vec<u64> {
        let periods = self.max_period + 1;
        let mut out = Vec::with_capacity(self.interfaces.len() * periods as usize);
        for &(asn, interface) in &self.interfaces {
            for period in 0..periods {
                out.push(*self.counts.get(&(asn, interface, period)).unwrap_or(&0));
            }
        }
        out
    }

    /// The non-zero per-interface-per-period samples only (useful for log-scale plots, which
    /// is how the paper draws Fig. 8c).
    pub fn nonzero_samples(&self) -> Vec<u64> {
        self.counts.values().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut c = OverheadCounter::new();
        c.record(AsId(1), IfId(1), 0, 5);
        c.record(AsId(1), IfId(1), 0, 3);
        c.record(AsId(1), IfId(2), 1, 7);
        assert_eq!(c.total(), 15);
        assert_eq!(c.active_cells(), 2);
    }

    #[test]
    fn zero_counts_are_ignored_on_record() {
        let mut c = OverheadCounter::new();
        c.record(AsId(1), IfId(1), 0, 0);
        assert_eq!(c.total(), 0);
        assert_eq!(c.active_cells(), 0);
    }

    #[test]
    fn samples_include_silent_periods() {
        let mut c = OverheadCounter::new();
        c.register_interface(AsId(1), IfId(1));
        c.register_interface(AsId(1), IfId(2));
        c.record(AsId(1), IfId(1), 0, 4);
        c.record(AsId(1), IfId(1), 2, 6);
        // Interfaces: 2, periods: 3 => 6 samples; if2 is silent in all of them.
        let samples = c.samples();
        assert_eq!(samples.len(), 6);
        assert_eq!(samples.iter().sum::<u64>(), 10);
        assert_eq!(samples.iter().filter(|&&s| s == 0).count(), 4);
        assert_eq!(c.nonzero_samples().len(), 2);
    }

    #[test]
    fn empty_counter_has_no_samples() {
        let c = OverheadCounter::new();
        assert!(c.samples().is_empty());
        assert_eq!(c.total(), 0);
    }
}
