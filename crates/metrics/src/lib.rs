//! # irec-metrics
//!
//! The evaluation metrics of the paper's §VIII-C, computed over the paths that the control
//! plane registered at the path services:
//!
//! * [`delay`] — minimum propagation delay between PoP pairs, absolute and relative to a
//!   baseline algorithm (Fig. 8a),
//! * [`tlf`] — tolerable link failures: the minimum number of inter-domain links whose
//!   removal disconnects all registered paths between an AS pair, computed as a max-flow /
//!   min-cut over the union of the paths' links (Fig. 8b),
//! * [`overhead`] — PCBs sent per interface per beaconing period (Fig. 8c),
//! * [`cdf`] — the cumulative-distribution helper used to print every Fig. 8 series.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod delay;
pub mod overhead;
pub mod paths;
pub mod tlf;

pub use cdf::Cdf;
pub use paths::RegisteredPath;
