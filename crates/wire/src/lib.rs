//! # irec-wire
//!
//! The binary wire format used at every serialization boundary of the IREC reproduction.
//!
//! In the paper's implementation, PCBs are marshalled with Protobuf and exchanged between the
//! ingress gateway, the RACs and the egress gateway over gRPC; the marshalling/transport cost
//! is one of the three latency components measured in Fig. 6. This crate plays the same role:
//! a compact, explicit, length-delimited binary encoding with
//!
//! * unsigned LEB128 varints ([`varint`]),
//! * a bounds-checked [`WireReader`] and an append-only [`WireWriter`],
//! * the [`Encode`]/[`Decode`] traits implemented by PCBs, extensions and RAC messages.
//!
//! The format is deliberately simple (no schema evolution) but every decoder is defensive:
//! truncated, oversized or garbage inputs produce [`IrecError::Decode`] rather than panics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod varint;

pub use codec::{Decode, Encode, WireReader, WireWriter};
pub use varint::{decode_varint, encode_varint, varint_len};

use irec_types::IrecError;

/// Maximum length of a single length-delimited field (16 MiB).
///
/// This bounds memory allocation when decoding untrusted input; the paper similarly bounds
/// the size of fetched on-demand algorithm executables.
pub const MAX_FIELD_LEN: usize = 16 * 1024 * 1024;

/// Encodes any [`Encode`] value to a fresh byte vector.
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = WireWriter::new();
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value of type `T` from `bytes`, requiring that all input is consumed.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T, IrecError> {
    let mut r = WireReader::new(bytes);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}
