//! Unsigned LEB128 varints, the integer primitive of the wire format.

use irec_types::{IrecError, Result};

/// Maximum number of bytes a u64 varint can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
pub fn encode_varint(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Returns the number of bytes `value` occupies when varint-encoded.
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Decodes a varint from the front of `input`, returning the value and the number of bytes
/// consumed.
pub fn decode_varint(input: &[u8]) -> Result<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(IrecError::decode("varint longer than 10 bytes"));
        }
        let chunk = (byte & 0x7f) as u64;
        // The 10th byte may only contribute a single bit.
        if shift == 63 && chunk > 1 {
            return Err(IrecError::decode("varint overflows u64"));
        }
        value |= chunk << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(IrecError::decode("truncated varint"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(v: u64) -> (u64, usize) {
        let mut buf = Vec::new();
        encode_varint(v, &mut buf);
        assert_eq!(buf.len(), varint_len(v));
        decode_varint(&buf).unwrap()
    }

    #[test]
    fn known_encodings() {
        let mut buf = Vec::new();
        encode_varint(0, &mut buf);
        assert_eq!(buf, [0x00]);
        buf.clear();
        encode_varint(127, &mut buf);
        assert_eq!(buf, [0x7f]);
        buf.clear();
        encode_varint(128, &mut buf);
        assert_eq!(buf, [0x80, 0x01]);
        buf.clear();
        encode_varint(300, &mut buf);
        assert_eq!(buf, [0xac, 0x02]);
    }

    #[test]
    fn roundtrip_edge_values() {
        for v in [0, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let (decoded, _) = roundtrip(v);
            assert_eq!(decoded, v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        assert!(decode_varint(&[]).is_err());
        assert!(decode_varint(&[0x80]).is_err());
        assert!(decode_varint(&[0xff, 0xff]).is_err());
    }

    #[test]
    fn overlong_input_errors() {
        // 11 continuation bytes.
        let buf = vec![0x80u8; 11];
        assert!(decode_varint(&buf).is_err());
        // 10 bytes but the last contributes more than 1 bit => overflow.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x7f);
        assert!(decode_varint(&buf).is_err());
    }

    #[test]
    fn decode_reports_consumed_length() {
        let mut buf = Vec::new();
        encode_varint(300, &mut buf);
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let (v, used) = decode_varint(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }

    #[test]
    fn varint_len_matches_encoding() {
        for v in [
            0u64,
            1,
            127,
            128,
            16384,
            1 << 21,
            1 << 28,
            1 << 35,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_varint(v, &mut buf);
            assert_eq!(varint_len(v), buf.len(), "value {v}");
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in any::<u64>()) {
            let (decoded, used) = roundtrip(v);
            prop_assert_eq!(decoded, v);
            prop_assert_eq!(used, varint_len(v));
        }
    }
}
