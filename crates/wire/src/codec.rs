//! The bounds-checked wire reader/writer and the `Encode`/`Decode` traits.

use crate::varint::{decode_varint, encode_varint};
use crate::MAX_FIELD_LEN;
use bytes::{BufMut, BytesMut};
use irec_types::{IrecError, Result};

/// Append-only writer building a wire message.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(256),
        }
    }

    /// Creates a writer with a capacity hint.
    pub fn with_capacity(capacity: usize) -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a varint-encoded u64.
    pub fn put_varint(&mut self, value: u64) {
        let mut tmp = Vec::with_capacity(10);
        encode_varint(value, &mut tmp);
        self.buf.put_slice(&tmp);
    }

    /// Writes a varint-encoded u32.
    pub fn put_u32v(&mut self, value: u32) {
        self.put_varint(value as u64);
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.put_u8(value);
    }

    /// Writes a fixed-width big-endian u64 (used where constant size matters, e.g. hashes of
    /// canonical byte strings).
    pub fn put_u64_fixed(&mut self, value: u64) {
        self.buf.put_u64(value);
    }

    /// Writes a boolean as one byte.
    pub fn put_bool(&mut self, value: bool) {
        self.buf.put_u8(u8::from(value));
    }

    /// Writes raw bytes without a length prefix.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.put_slice(bytes);
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_varint(bytes.len() as u64);
        self.buf.put_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Returns the bytes written so far without consuming the writer.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

/// Bounds-checked reader over a wire message.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Number of bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all input has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Errors unless all input has been consumed; call after decoding a top-level message.
    pub fn finish(&self) -> Result<()> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(IrecError::decode(format!(
                "{} trailing bytes after message",
                self.remaining()
            )))
        }
    }

    /// Reads a varint-encoded u64.
    pub fn get_varint(&mut self) -> Result<u64> {
        let (value, used) = decode_varint(&self.buf[self.pos..])?;
        self.pos += used;
        Ok(value)
    }

    /// Reads a varint-encoded u32, rejecting values that do not fit.
    pub fn get_u32v(&mut self) -> Result<u32> {
        let v = self.get_varint()?;
        u32::try_from(v).map_err(|_| IrecError::decode("varint does not fit in u32"))
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        if self.remaining() < 1 {
            return Err(IrecError::decode("unexpected end of input reading u8"));
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a fixed-width big-endian u64.
    pub fn get_u64_fixed(&mut self) -> Result<u64> {
        if self.remaining() < 8 {
            return Err(IrecError::decode("unexpected end of input reading u64"));
        }
        let bytes: [u8; 8] = self.buf[self.pos..self.pos + 8]
            .try_into()
            .expect("slice is 8 bytes");
        self.pos += 8;
        Ok(u64::from_be_bytes(bytes))
    }

    /// Reads a boolean encoded as one byte (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(IrecError::decode(format!("invalid boolean byte {other}"))),
        }
    }

    /// Reads exactly `len` raw bytes.
    pub fn get_raw(&mut self, len: usize) -> Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(IrecError::decode(format!(
                "unexpected end of input: need {len} bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_varint()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(IrecError::decode(format!(
                "field length {len} exceeds maximum {MAX_FIELD_LEN}"
            )));
        }
        self.get_raw(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| IrecError::decode("invalid UTF-8 string"))
    }
}

/// Values that can be serialized to the wire format.
pub trait Encode {
    /// Appends the encoding of `self` to `writer`.
    fn encode(&self, writer: &mut WireWriter);

    /// Convenience: encodes into a fresh byte vector.
    fn encode_to_vec(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }
}

/// Values that can be deserialized from the wire format.
pub trait Decode: Sized {
    /// Reads one value from `reader`.
    fn decode(reader: &mut WireReader<'_>) -> Result<Self>;
}

impl Encode for u64 {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_varint(*self);
    }
}

impl Decode for u64 {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        reader.get_varint()
    }
}

impl Encode for String {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_string(self);
    }
}

impl Decode for String {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        reader.get_string()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_varint(self.len() as u64);
        for item in self {
            item.encode(writer);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let len = reader.get_varint()? as usize;
        // A non-empty element occupies at least one byte; reject absurd counts early.
        if len > reader.remaining().max(1) * 2 && len > 1_000_000 {
            return Err(IrecError::decode(format!(
                "implausible collection length {len}"
            )));
        }
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(reader)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, writer: &mut WireWriter) {
        match self {
            None => writer.put_bool(false),
            Some(v) => {
                writer.put_bool(true);
                v.encode(writer);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        if reader.get_bool()? {
            Ok(Some(T::decode(reader)?))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_bytes, to_bytes};
    use proptest::prelude::*;

    #[test]
    fn writer_reader_primitives() {
        let mut w = WireWriter::new();
        w.put_varint(300);
        w.put_u8(7);
        w.put_bool(true);
        w.put_u64_fixed(0xDEADBEEF);
        w.put_bytes(b"hello");
        w.put_string("world");
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes);
        assert_eq!(r.get_varint().unwrap(), 300);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u64_fixed().unwrap(), 0xDEADBEEF);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.get_string().unwrap(), "world");
        assert!(r.finish().is_ok());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.put_bytes(&[1, 2, 3, 4, 5]);
        let mut bytes = w.into_bytes();
        bytes.truncate(3);
        let mut r = WireReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn trailing_bytes_detected_by_finish() {
        let bytes = [0x01, 0x02];
        let mut r = WireReader::new(&bytes);
        let _ = r.get_u8().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut r = WireReader::new(&[2]);
        assert!(r.get_bool().is_err());
    }

    #[test]
    fn oversized_field_rejected() {
        let mut w = WireWriter::new();
        w.put_varint((MAX_FIELD_LEN + 1) as u64);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn u32_varint_range_check() {
        let mut w = WireWriter::new();
        w.put_varint(u64::from(u32::MAX) + 1);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_u32v().is_err());
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 300, 400_000];
        let encoded = to_bytes(&v);
        let decoded: Vec<u64> = from_bytes(&encoded).unwrap();
        assert_eq!(decoded, v);

        let some: Option<String> = Some("abc".to_string());
        let none: Option<String> = None;
        assert_eq!(
            from_bytes::<Option<String>>(&to_bytes(&some)).unwrap(),
            some
        );
        assert_eq!(
            from_bytes::<Option<String>>(&to_bytes(&none)).unwrap(),
            none
        );
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xff, 0xfe, 0xfd]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(r.get_string().is_err());
    }

    #[test]
    fn implausible_collection_length_rejected() {
        let mut w = WireWriter::new();
        w.put_varint(u64::MAX);
        let bytes = w.into_bytes();
        assert!(from_bytes::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn writer_capacity_and_len() {
        let mut w = WireWriter::with_capacity(64);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.len(), 1);
        assert_eq!(w.as_slice(), &[1]);
    }

    proptest! {
        #[test]
        fn prop_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let mut w = WireWriter::new();
            w.put_bytes(&data);
            let encoded = w.into_bytes();
            let mut r = WireReader::new(&encoded);
            prop_assert_eq!(r.get_bytes().unwrap(), &data[..]);
            prop_assert!(r.finish().is_ok());
        }

        #[test]
        fn prop_u64_vec_roundtrip(data in proptest::collection::vec(any::<u64>(), 0..128)) {
            let encoded = to_bytes(&data);
            let decoded: Vec<u64> = from_bytes(&encoded).unwrap();
            prop_assert_eq!(decoded, data);
        }

        #[test]
        fn prop_reader_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Feeding arbitrary bytes to every getter must never panic.
            let mut r = WireReader::new(&data);
            let _ = r.get_varint();
            let _ = r.get_u8();
            let _ = r.get_bool();
            let _ = r.get_u64_fixed();
            let _ = r.get_bytes();
            let _ = r.get_string();
        }
    }
}
