//! The Fig. 8 simulation campaign: the set of simulation runs needed to regenerate the three
//! large-scale figures of the paper's §VIII-C.

use crate::args::BenchArgs;
use irec_core::{NodeConfig, RacConfig};
use irec_metrics::delay::{pop_pair_delays, relative_to_baseline, PopPairDelays};
use irec_metrics::tlf::tlf_per_as_pair;
use irec_metrics::{Cdf, RegisteredPath};
use irec_sim::{PdCampaign, PdPairResult, Simulation};
use irec_topology::pop::{points_of_presence, DEFAULT_POP_RADIUS_KM};
use irec_topology::{
    GeneratorConfig, GroupingConfig, PointOfPresence, Topology, TopologyGenerator,
};
use irec_types::{AsId, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The data produced by the campaign, consumed by the fig8a/fig8b/fig8c binaries.
#[derive(Debug, Default)]
pub struct Fig8Data {
    /// Registered paths per algorithm series (1SP, 5SP, HD, DON, DOB2000, DOB300).
    pub paths_by_series: BTreeMap<String, Vec<RegisteredPath>>,
    /// Full per-pair PD campaign results in pair order (paths, iteration counts, pull
    /// overhead and per-pair wall-clock — the fig8b PD series and the fig8c throughput
    /// table both derive from here).
    pub pd_pairs: Vec<PdPairResult>,
    /// Wall-clock time of the whole PD campaign (warm-up excluded). Unlike the sum of the
    /// per-pair times, this reflects the `--pd-parallelism` fan-out.
    pub pd_campaign_elapsed: std::time::Duration,
    /// Per-interface-per-period overhead per series.
    pub overhead_by_series: BTreeMap<String, Vec<u64>>,
    /// The per-AS points of presence of the campaign topology.
    pub pops: BTreeMap<AsId, Vec<PointOfPresence>>,
    /// Number of ASes / links of the campaign topology.
    pub topology_size: (usize, usize),
}

impl Fig8Data {
    /// The PoP-pair minimum delays of one series.
    pub fn pop_delays(&self, topology: &Topology, series: &str) -> PopPairDelays {
        let paths = self
            .paths_by_series
            .get(series)
            .cloned()
            .unwrap_or_default();
        pop_pair_delays(topology, &self.pops, &paths)
    }

    /// The Fig. 8a CDF of one series: delay relative to the 1SP baseline.
    pub fn relative_delay_cdf(&self, topology: &Topology, series: &str, missing_ratio: f64) -> Cdf {
        let baseline = self.pop_delays(topology, "1SP");
        let series_delays = self.pop_delays(topology, series);
        Cdf::new(relative_to_baseline(
            &series_delays,
            &baseline,
            missing_ratio,
        ))
    }

    /// The Fig. 8b CDF of tolerable link failures for a push-based series.
    pub fn tlf_cdf(&self, series: &str) -> Cdf {
        let paths = self
            .paths_by_series
            .get(series)
            .cloned()
            .unwrap_or_default();
        let tlf = tlf_per_as_pair(&paths);
        Cdf::new(tlf.values().map(|&v| v.min(1_000) as f64).collect())
    }

    /// The discovered PD path sets, one per pair that found anything (the Fig. 8b
    /// samples).
    pub fn pd_paths(&self) -> impl Iterator<Item = &Vec<RegisteredPath>> {
        self.pd_pairs
            .iter()
            .map(|pair| &pair.result.paths)
            .filter(|set| !set.is_empty())
    }

    /// The Fig. 8b CDF for the PD series (per sampled AS pair).
    pub fn pd_tlf_cdf(&self) -> Cdf {
        let samples: Vec<f64> = self
            .pd_paths()
            .map(|set| {
                let links: Vec<Vec<_>> = set.iter().map(|p| p.links.clone()).collect();
                irec_metrics::tlf::min_links_to_disconnect(&links).min(1_000) as f64
            })
            .collect();
        Cdf::new(samples)
    }

    /// The Fig. 8c CDF of one series (PCBs per interface per period, non-zero cells only, as
    /// the paper plots on a log axis).
    pub fn overhead_cdf(&self, series: &str) -> Cdf {
        let samples = self
            .overhead_by_series
            .get(series)
            .cloned()
            .unwrap_or_default();
        Cdf::new(samples.into_iter().map(|v| v as f64).collect())
    }
}

/// The campaign: builds the topology, runs one simulation per series, and the PD workflow on
/// top of an HD + on-demand simulation.
pub struct Fig8Campaign {
    args: BenchArgs,
    topology: Arc<Topology>,
}

impl Fig8Campaign {
    /// Creates the campaign for the given arguments (topology size, rounds, seed, PD pairs).
    pub fn new(args: BenchArgs) -> Self {
        let config = GeneratorConfig {
            num_ases: args.ases,
            seed: args.seed,
            ..Default::default()
        };
        let topology = Arc::new(TopologyGenerator::new(config).generate());
        Fig8Campaign { args, topology }
    }

    /// The campaign topology.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topology
    }

    fn run_series(
        &self,
        rac: RacConfig,
        grouping: Option<GroupingConfig>,
    ) -> Result<(Vec<RegisteredPath>, Vec<u64>)> {
        let name = rac.name.clone();
        // Apply the worker budgets at the simulation level only (node phase + delivery
        // plane): with hundreds of nodes per round that is where the parallelism is, and
        // also enabling each node's RAC engine would oversubscribe the machine with up to
        // parallelism^2 threads and distort the very wall-clock numbers the campaign
        // measures.
        let mut sim = Simulation::new(
            Arc::clone(&self.topology),
            self.args.to_sim_config(),
            move |_| NodeConfig::default().with_racs(vec![rac.clone()]),
        )?;
        if let Some(grouping) = grouping {
            sim.set_geographic_interface_groups(grouping)?;
        }
        sim.run_rounds(self.args.rounds)?;
        let paths = sim.registered_paths_by(&name);
        let overhead = sim.overhead().nonzero_samples();
        Ok((paths, overhead))
    }

    /// The `(origin, target)` pairs the PD campaign runs, sampled deterministically from
    /// the seed; the paper runs PD for all AS pairs, which is not laptop-feasible — the
    /// sampled distribution preserves the CDF shape.
    pub fn pd_pairs(&self) -> Vec<(AsId, AsId)> {
        sample_pd_pairs(
            &self.topology.as_ids(),
            self.args.pd_pairs.max(1),
            self.args.seed,
        )
    }

    fn run_pd(&self, data: &mut Fig8Data) -> Result<Vec<u64>> {
        // Warm up one base simulation (simulation-level parallelism only, as in
        // `run_series`), then fan the independent per-pair workflows out over the PD
        // campaign engine — each pair on its own snapshot of the warm base, results
        // merged in pair order regardless of `--pd-parallelism`.
        let mut sim = Simulation::new(
            Arc::clone(&self.topology),
            self.args.to_sim_config(),
            move |_| {
                NodeConfig::default().with_racs(vec![
                    RacConfig::static_rac("HD", "HD"),
                    RacConfig::on_demand_rac("on-demand"),
                ])
            },
        )?;
        sim.run_rounds(self.args.rounds)?;

        let campaign_start = std::time::Instant::now();
        let results = PdCampaign::new(self.pd_pairs(), 20)
            .with_rounds_per_iteration(3)
            .with_parallelism(self.args.pd_parallelism)
            .with_deep_clone(self.args.pd_deep_clone)
            .run(&sim)?;
        data.pd_campaign_elapsed = campaign_start.elapsed();
        // The PD series of Fig. 8c: the pairs' pull-overhead samples, concatenated in
        // pair order (each pair's run owns its snapshot's counters).
        let mut overhead = Vec::new();
        for pair in &results {
            overhead.extend(pair.pull_overhead.iter().copied());
        }
        data.pd_pairs = results;
        Ok(overhead)
    }

    /// Runs the whole campaign.
    pub fn run(&self) -> Result<Fig8Data> {
        let mut data = Fig8Data {
            topology_size: (self.topology.num_ases(), self.topology.num_links()),
            pops: points_of_presence(&self.topology, DEFAULT_POP_RADIUS_KM),
            ..Fig8Data::default()
        };

        let series: Vec<(RacConfig, Option<GroupingConfig>)> = vec![
            (RacConfig::static_rac("1SP", "1SP"), None),
            (RacConfig::static_rac("5SP", "5SP"), None),
            (RacConfig::static_rac("HD", "HD"), None),
            (RacConfig::static_rac("DON", "DO"), None),
            (
                RacConfig::static_rac("DOB2000", "DO")
                    .with_extended_paths(true)
                    .with_interface_groups(true),
                Some(GroupingConfig::KM_2000),
            ),
            (
                RacConfig::static_rac("DOB300", "DO")
                    .with_extended_paths(true)
                    .with_interface_groups(true),
                Some(GroupingConfig::KM_300),
            ),
        ];
        for (rac, grouping) in series {
            let name = rac.name.clone();
            let (paths, overhead) = self.run_series(rac, grouping)?;
            data.paths_by_series.insert(name.clone(), paths);
            data.overhead_by_series.insert(name, overhead);
        }

        let pd_overhead = self.run_pd(&mut data)?;
        data.overhead_by_series
            .insert("PD".to_string(), pd_overhead);
        Ok(data)
    }
}

/// Deterministically samples `(origin, target)` pairs from `as_ids`: `attempts` seeded
/// draws, self-pairs skipped (so the result may hold fewer than `attempts` pairs). The
/// single sampling recipe behind [`Fig8Campaign::pd_pairs`] and the bench workload's
/// `pd_campaign_pairs` — one place to change if the sampling ever needs to get smarter.
pub fn sample_pd_pairs(as_ids: &[AsId], attempts: usize, seed: u64) -> Vec<(AsId, AsId)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5044);
    let mut pairs = Vec::new();
    for _ in 0..attempts {
        let a = *as_ids.choose(&mut rng).expect("topology is non-empty");
        let b = *as_ids.choose(&mut rng).expect("topology is non-empty");
        if a != b {
            pairs.push((a, b));
        }
    }
    pairs
}

/// Helper used by the binaries: prints one CDF series as tab-separated `value fraction` rows.
pub fn print_cdf(label: &str, cdf: &Cdf) {
    println!("# series: {label} ({} samples)", cdf.len());
    if cdf.is_empty() {
        println!("# (no samples)");
        return;
    }
    for (value, fraction) in cdf.points() {
        println!("{label}\t{value:.4}\t{fraction:.4}");
    }
}

/// Helper: prints summary statistics of a CDF (median / p25 / p75 / min / max).
pub fn print_summary(label: &str, cdf: &Cdf) {
    if cdf.is_empty() {
        println!("{label:>10}: no samples");
        return;
    }
    println!(
        "{label:>10}: n={:<6} min={:<10.3} p25={:<10.3} median={:<10.3} p75={:<10.3} max={:<10.3}",
        cdf.len(),
        cdf.min().unwrap_or(f64::NAN),
        cdf.quantile(0.25).unwrap_or(f64::NAN),
        cdf.median().unwrap_or(f64::NAN),
        cdf.quantile(0.75).unwrap_or(f64::NAN),
        cdf.max().unwrap_or(f64::NAN),
    );
}

/// A reduced-size campaign used by the integration tests (small topology, few rounds).
pub fn test_campaign(seed: u64) -> Fig8Campaign {
    Fig8Campaign::new(BenchArgs {
        ases: 12,
        rounds: 3,
        seed,
        pd_pairs: 2,
        reps: 1,
        max_racs: 2,
        parallelism: 1,
        delivery_parallelism: 1,
        ingress_shards: 0,
        pd_parallelism: 1,
        path_shards: 0,
        pd_deep_clone: false,
        round_scheduler: irec_sim::RoundScheduler::Barrier,
        ..BenchArgs::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end campaign run checked against all figure pipelines (a single shared run
    /// keeps the test-suite runtime bounded; the figure binaries exercise larger scales).
    #[test]
    fn campaign_produces_all_series_and_figure_cdfs() {
        let campaign = test_campaign(3);
        let data = campaign.run().unwrap();
        for series in ["1SP", "5SP", "HD", "DON", "DOB2000", "DOB300"] {
            assert!(
                data.paths_by_series.contains_key(series),
                "missing series {series}"
            );
            assert!(
                !data.paths_by_series[series].is_empty(),
                "series {series} has no registered paths"
            );
            assert!(data.overhead_by_series.contains_key(series));
        }
        assert!(data.overhead_by_series.contains_key("PD"));
        assert_eq!(data.topology_size.0, 12);
        // The PD campaign reports one result per sampled pair, in pair order.
        assert_eq!(data.pd_pairs.len(), campaign.pd_pairs().len());
        for (pair, sampled) in data.pd_pairs.iter().zip(campaign.pd_pairs()) {
            assert_eq!((pair.origin, pair.target), sampled);
        }

        // Fig. 8a pipeline: relative delays are computable and the baseline is exactly 1.0.
        let cdf = data.relative_delay_cdf(campaign.topology(), "5SP", 1.5);
        assert!(!cdf.is_empty());
        assert!(cdf.min().unwrap() > 0.0);
        let baseline = data.relative_delay_cdf(campaign.topology(), "1SP", 1.5);
        assert!((baseline.median().unwrap() - 1.0).abs() < 1e-9);

        // Fig. 8b pipeline: HD's median disjointness is at least 1SP's.
        let sp1 = data.tlf_cdf("1SP");
        let hd = data.tlf_cdf("HD");
        assert!(!sp1.is_empty() && !hd.is_empty());
        assert!(hd.median().unwrap() >= sp1.median().unwrap());

        // Fig. 8c pipeline: per-interface overhead samples exist, 5SP sends at least as many
        // beacons as 1SP in total.
        let sp1_overhead: f64 = data.overhead_cdf("1SP").samples().iter().sum();
        let sp5_overhead: f64 = data.overhead_cdf("5SP").samples().iter().sum();
        assert!(sp5_overhead >= sp1_overhead);
    }
}
