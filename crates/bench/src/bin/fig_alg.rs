//! Algorithm-family figure: registered-path quality per selection algorithm.
//!
//! ```text
//! cargo run -p irec_bench --bin fig_alg --release -- [--ases 60] [--rounds 8] \
//!     [--algorithm A] [--aco-seed N] [--aco-budget N] \
//!     [--round-scheduler S] [--parallelism N] [--ingress-shards N] [--path-shards N]
//! ```
//!
//! Deploys one selection algorithm fleet-wide per run — the fixed sweep `5SP` (truncation
//! heuristic), `5YEN` (exact Yen's k-shortest enumeration), `HD` (set-valued disjointness
//! greedy) and a seeded `aco` family (composed from `--aco-seed`/`--aco-budget`), plus
//! `--algorithm` when it names a spec outside the sweep — and prints two CDFs per family
//! over every registered path: end-to-end latency in milliseconds and AS-level hop count.
//! The per-family summary adds the coverage view HD optimizes (distinct inter-domain
//! links traversed by the selected plane) next to path count and selection overhead.
//!
//! Expected shape: `5YEN` matches or tightens `5SP`'s latency CDF (the heuristic truncates
//! the exact enumeration), `HD` trades latency for strictly higher link coverage, and the
//! ant colony lands between the extremes with its spread controlled by the iteration
//! budget.
//!
//! The tables are byte-identical for every `--round-scheduler`, `--parallelism`,
//! `--ingress-shards` and `--path-shards` value; the algorithm knobs are *workload* knobs
//! and deliberately move the tables.

use irec_bench::campaign::{print_cdf, print_summary};
use irec_bench::workload::algorithm_pass;
use irec_bench::BenchArgs;
use irec_metrics::Cdf;
use irec_types::{AsId, IfId};
use std::collections::BTreeSet;

fn main() {
    let args = BenchArgs::from_env();
    let aco_spec = format!("aco:{}:{}", args.aco_seed, args.aco_budget);
    let mut specs = vec![
        "5SP".to_string(),
        "5YEN".to_string(),
        "HD".to_string(),
        aco_spec,
    ];
    if let Some(extra) = args.algorithm_spec() {
        if !specs.contains(&extra) {
            specs.push(extra);
        }
    }
    let width = args.parallelism.max(args.delivery_parallelism);
    eprintln!(
        "# fig_alg — {} ASes (seed {}), {} rounds per family, families {specs:?}",
        args.ases, args.seed, args.rounds
    );
    println!("# fig_alg — registered-path quality per selection algorithm");
    println!("# columns: series, value, CDF fraction");
    println!("# lat@A: end-to-end path latency (ms) under algorithm A");
    println!("# hops@A: AS-level path hop count under algorithm A");

    let mut summaries = Vec::new();
    for spec in &specs {
        let (paths, _, _, overhead) = algorithm_pass(
            spec,
            args.ases,
            args.rounds,
            args.round_scheduler,
            width,
            args.ingress_shards,
            args.path_shards,
            args.seed,
        );
        assert!(!paths.is_empty(), "the {spec} run must register paths");
        let coverage: BTreeSet<(AsId, IfId)> =
            paths.iter().flat_map(|p| p.links.iter().copied()).collect();
        let selection_overhead: u64 = overhead.iter().sum();
        eprintln!(
            "# {spec}: {} paths, {} distinct links covered, overhead {selection_overhead}",
            paths.len(),
            coverage.len()
        );
        let latency = Cdf::new(
            paths
                .iter()
                .map(|p| p.metrics.latency.as_millis_f64())
                .collect(),
        );
        let hops = Cdf::new(paths.iter().map(|p| p.metrics.hops as f64).collect());
        print_cdf(&format!("lat@{spec}"), &latency);
        print_cdf(&format!("hops@{spec}"), &hops);
        summaries.push((
            spec,
            paths.len(),
            coverage.len(),
            selection_overhead,
            latency,
            hops,
        ));
    }

    println!("#\n# summary per family:");
    for (spec, paths, coverage, overhead, latency, hops) in &summaries {
        println!("# {spec}: {paths} paths, {coverage} distinct links covered, overhead {overhead}");
        print!("# ");
        print_summary(&format!("lat@{spec}"), latency);
        print!("# ");
        print_summary(&format!("hops@{spec}"), hops);
    }
}
