//! Determinism probe: runs three fixed simulation scenarios — two beaconing scenarios plus
//! a PD campaign — and prints every registered path, every overhead counter and every
//! per-pair PD result in full. With `--churn-rate > 0` a fourth scenario appends a churn
//! run (per-step deltas plus the final plane state); with `--algorithm` a fifth appends
//! a run where every AS deploys the requested catalog spec (e.g. `5YEN` or a seeded
//! `aco` family).
//!
//! ```text
//! cargo run -p irec_bench --bin determinism --release -- [--parallelism N] [--delivery-parallelism N] [--ingress-shards N] [--pd-parallelism N] [--path-shards N] [--round-scheduler S] [--incremental-selection M] [--churn-rate R] [--churn-seed N] [--churn-kinds K] [--algorithm A] [--aco-seed N] [--aco-budget N] [--ases 12] [--rounds 3] [--seed 5]
//! ```
//!
//! The output is **byte-identical for every `--parallelism`, `--delivery-parallelism`,
//! `--ingress-shards`, `--pd-parallelism`, `--path-shards`, `--round-scheduler` and
//! `--incremental-selection` value** — that is the determinism guarantee of the parallel
//! execution engine, of the message-delivery plane, of the sharded ingress database, of
//! the sharded path service, of the PD campaign engine, of the work-item DAG round
//! scheduler and of the incremental selection tables, and the CI determinism job enforces
//! it by diffing a sequential run against each knob alone and all of them stacked. All
//! seven arguments are deliberately excluded from the output for exactly that reason.
//! Incremental-selection counters (reused/recomputed/invalidated) go to **stderr**, like
//! every piece of how-it-ran reporting, so they never pollute the diffed stdout. The
//! churn knobs are different: they are *workload* knobs, so CI diffs runs with the same
//! churn knobs across parallelism planes against each other.

use irec_bench::BenchArgs;
use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_sim::{ChurnConfig, ChurnEngine, PdCampaign, Simulation};
use irec_topology::builder::{figure1, figure1_topology};
use irec_topology::{GeneratorConfig, TopologyGenerator};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::from_env();

    // Scenario 1: the quickstart setup on the paper's Fig. 1 topology.
    let figure1_sim = Simulation::new(Arc::new(figure1_topology()), args.to_sim_config(), |_| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![
                RacConfig::static_rac("DO", "DO"),
                RacConfig::static_rac("widest", "widest"),
            ])
            .with_parallelism(args.parallelism)
    })
    .expect("figure-1 simulation setup");
    dump("figure1", figure1_sim, 6);

    // Scenario 2: a generated internet topology with the paper's static RAC set.
    let config = GeneratorConfig {
        num_ases: args.ases,
        seed: args.seed,
        ..Default::default()
    };
    let generated = Simulation::new(
        Arc::new(TopologyGenerator::new(config).generate()),
        args.to_sim_config(),
        |_| {
            NodeConfig::default()
                .with_racs(vec![
                    RacConfig::static_rac("1SP", "1SP"),
                    RacConfig::static_rac("5SP", "5SP"),
                    RacConfig::static_rac("HD", "HD"),
                    RacConfig::static_rac("DON", "DO"),
                ])
                .with_parallelism(args.parallelism)
        },
    )
    .expect("generated simulation setup");
    dump("generated", generated, args.rounds);

    // Scenario 3: the PD campaign on Fig. 1 — exercises the `--pd-parallelism` worker
    // pool and the sharded path service's concurrent pull-return commits end to end.
    let mut base = Simulation::new(Arc::new(figure1_topology()), args.to_sim_config(), |_| {
        NodeConfig::default()
            .with_policy(PropagationPolicy::All)
            .with_racs(vec![
                RacConfig::static_rac("HD", "HD"),
                RacConfig::on_demand_rac("on-demand"),
            ])
            .with_parallelism(args.parallelism)
    })
    .expect("PD base simulation setup");
    base.run_rounds(6).expect("PD warm-up rounds");
    // `max_paths` must exceed the HD seed count of the warmed base, or every workflow
    // finishes on its seeds alone and the probe never originates a single pull beacon —
    // the assertion below keeps the scenario honest.
    let results = PdCampaign::new(
        vec![
            (figure1::SRC, figure1::DST),
            (figure1::DST, figure1::SRC),
            (figure1::SRC, figure1::DST),
        ],
        6,
    )
    .with_rounds_per_iteration(3)
    .with_parallelism(args.pd_parallelism)
    .run(&base)
    .expect("PD campaign run");
    assert!(
        results
            .iter()
            .any(|pair| pair.result.iterations > 0 && !pair.pull_overhead.is_empty()),
        "PD scenario ran zero pull iterations — the probe no longer exercises the pull pipeline"
    );
    println!("## scenario: pd-campaign");
    for (index, pair) in results.iter().enumerate() {
        println!(
            "pd-pair\t{index}\t{}\t{}\titerations={}\tempty={}\tpull_overhead={:?}",
            pair.origin,
            pair.target,
            pair.result.iterations,
            pair.result.empty_iterations,
            pair.pull_overhead
        );
        for p in &pair.result.paths {
            println!(
                "pd-path\t{index}\t{}\t{}\t{}\t{}\t{:?}",
                p.algorithm, p.metrics.latency, p.metrics.bandwidth, p.metrics.hops, p.links
            );
        }
    }

    // Scenario 4 (only with `--churn-rate > 0`): the churn engine on a generated
    // topology. Churn knobs are *workload* knobs — they change this scenario's output
    // deliberately (and deterministically), unlike the parallelism/shard/scheduler knobs,
    // which must leave it byte-identical. The CI churn rows therefore diff churn runs
    // against each other (same churn knobs, different parallelism planes), never against
    // a churn-free run. The scenario is appended after the three fixed ones so enabling
    // churn leaves their bytes untouched.
    if args.churn_rate > 0.0 {
        let parallelism = args.parallelism;
        let node_config = move |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
                .with_parallelism(parallelism)
        };
        let config = GeneratorConfig {
            num_ases: args.ases,
            seed: args.seed,
            ..Default::default()
        };
        let mut sim = Simulation::new(
            Arc::new(TopologyGenerator::new(config).generate()),
            args.to_sim_config(),
            node_config,
        )
        .expect("churn simulation setup");
        let mut engine = ChurnEngine::new(
            ChurnConfig::default()
                .with_rate(args.churn_rate)
                .with_seed(args.churn_seed)
                .with_kinds(args.churn_kinds),
            node_config,
        );
        let report = engine.run(&mut sim, 4).expect("churn scenario converges");
        println!("## scenario: churn");
        for step in &report.steps {
            let deltas: Vec<String> = step.deltas.iter().map(|d| d.to_string()).collect();
            println!(
                "churn-step\t{}\tround={}\tdeltas=[{}]\tsettle={}\tdropped_no_node={}\tdropped_link_down={}\tdelivered={}",
                step.step,
                step.round,
                deltas.join(","),
                step.settle_rounds,
                step.dropped_no_node,
                step.dropped_link_down,
                step.delivered
            );
        }
        dump_state("churn-final", &sim);
    }

    // Scenario 5 (only with `--algorithm`): every AS runs a single RAC with the requested
    // catalog spec on the generated topology. Like the churn knobs this is a *workload*
    // knob — `--algorithm 5YEN` or `--algorithm aco` (seeded via `--aco-seed`/
    // `--aco-budget`) changes the selection plane deliberately, but for a fixed spec the
    // output must stay byte-identical across every parallelism/shard/scheduler knob: ACO's
    // randomness comes entirely from seeded per-(origin, group, egress, iteration, ant)
    // streams, never from execution order. The CI algorithm rows diff runs with the same
    // spec across parallelism planes. Appended last so enabling it leaves every other
    // scenario's bytes untouched.
    if let Some(spec) = args.algorithm_spec() {
        let parallelism = args.parallelism;
        let rac_spec = spec.clone();
        let config = GeneratorConfig {
            num_ases: args.ases,
            seed: args.seed,
            ..Default::default()
        };
        let sim = Simulation::new(
            Arc::new(TopologyGenerator::new(config).generate()),
            args.to_sim_config(),
            move |_| {
                NodeConfig::default()
                    .with_policy(PropagationPolicy::All)
                    .with_racs(vec![RacConfig::static_rac(&rac_spec, &rac_spec)])
                    .with_parallelism(parallelism)
            },
        )
        .expect("algorithm scenario setup");
        dump(&format!("algorithm {spec}"), sim, args.rounds);
    }
}

/// Runs `rounds` beaconing rounds and prints every observable output of the simulation in
/// its natural (deterministic) order — registration order included, so any scheduling
/// nondeterminism shows up as a diff.
fn dump(label: &str, mut sim: Simulation, rounds: usize) {
    sim.run_rounds(rounds).expect("beaconing rounds");
    dump_state(label, &sim);
}

/// Prints every observable output of an already-run simulation.
fn dump_state(label: &str, sim: &Simulation) {
    println!("## scenario: {label}");
    println!(
        "counters\tdelivered={}\tdropped_no_node={}\tdropped_link_down={}\trejected={}\toccupancy={}\tconnectivity={:.6}",
        sim.delivered_messages(),
        sim.dropped_no_node(),
        sim.dropped_link_down(),
        sim.rejected_messages(),
        sim.ingress_occupancy(),
        sim.connectivity()
    );
    println!(
        "overhead\ttotal={}\tsamples={:?}",
        sim.overhead().total(),
        sim.overhead().nonzero_samples()
    );
    for p in sim.registered_paths() {
        println!(
            "path\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:?}",
            p.holder,
            p.origin,
            p.algorithm,
            p.group,
            p.origin_interface,
            p.holder_interface,
            p.metrics.latency,
            p.metrics.bandwidth,
            p.metrics.hops,
            p.links
        );
    }
    // How-it-ran reporting, like `SchedulerStats`: stderr only, so the diffed stdout
    // stays byte-identical between `--incremental-selection on` and `off`.
    let inc = sim.incremental_stats();
    eprintln!(
        "incremental\tscenario={label}\treused={}\trecomputed={}\tinvalidated={}",
        inc.reused, inc.recomputed, inc.invalidated
    );
}
