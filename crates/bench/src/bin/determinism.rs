//! Determinism probe: runs two fixed simulation scenarios and prints every registered path
//! and every overhead counter in full.
//!
//! ```text
//! cargo run -p irec_bench --bin determinism --release -- [--parallelism N] [--delivery-parallelism N] [--ingress-shards N] [--ases 12] [--rounds 3] [--seed 5]
//! ```
//!
//! The output is **byte-identical for every `--parallelism`, `--delivery-parallelism` and
//! `--ingress-shards` value** — that is the determinism guarantee of the parallel execution
//! engine, of the message-delivery plane and of the sharded ingress database, and the CI
//! determinism job enforces it by diffing a sequential run against `--parallelism 4`,
//! `--delivery-parallelism 4` and sharded (`--ingress-shards {2, 4, 7}` alone, plus shard
//! count 4 stacked with both worker knobs) runs. All three arguments are deliberately
//! excluded from the output for exactly that reason.

use irec_bench::BenchArgs;
use irec_core::{NodeConfig, PropagationPolicy, RacConfig};
use irec_sim::{Simulation, SimulationConfig};
use irec_topology::builder::figure1_topology;
use irec_topology::{GeneratorConfig, TopologyGenerator};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::from_env();

    // Scenario 1: the quickstart setup on the paper's Fig. 1 topology.
    let figure1 = Simulation::new(
        Arc::new(figure1_topology()),
        SimulationConfig::default()
            .with_parallelism(args.parallelism)
            .with_delivery_parallelism(args.delivery_parallelism),
        |_| {
            NodeConfig::default()
                .with_policy(PropagationPolicy::All)
                .with_racs(vec![
                    RacConfig::static_rac("DO", "DO"),
                    RacConfig::static_rac("widest", "widest"),
                ])
                .with_parallelism(args.parallelism)
                .with_ingress_shards(args.ingress_shards)
        },
    )
    .expect("figure-1 simulation setup");
    dump("figure1", figure1, 6);

    // Scenario 2: a generated internet topology with the paper's static RAC set.
    let config = GeneratorConfig {
        num_ases: args.ases,
        seed: args.seed,
        ..Default::default()
    };
    let generated = Simulation::new(
        Arc::new(TopologyGenerator::new(config).generate()),
        SimulationConfig::default()
            .with_parallelism(args.parallelism)
            .with_delivery_parallelism(args.delivery_parallelism),
        |_| {
            NodeConfig::default()
                .with_racs(vec![
                    RacConfig::static_rac("1SP", "1SP"),
                    RacConfig::static_rac("5SP", "5SP"),
                    RacConfig::static_rac("HD", "HD"),
                    RacConfig::static_rac("DON", "DO"),
                ])
                .with_parallelism(args.parallelism)
                .with_ingress_shards(args.ingress_shards)
        },
    )
    .expect("generated simulation setup");
    dump("generated", generated, args.rounds);
}

/// Runs `rounds` beaconing rounds and prints every observable output of the simulation in
/// its natural (deterministic) order — registration order included, so any scheduling
/// nondeterminism shows up as a diff.
fn dump(label: &str, mut sim: Simulation, rounds: usize) {
    sim.run_rounds(rounds).expect("beaconing rounds");
    println!("## scenario: {label}");
    println!(
        "counters\tdelivered={}\tdropped_no_node={}\trejected={}\toccupancy={}\tconnectivity={:.6}",
        sim.delivered_messages(),
        sim.dropped_no_node(),
        sim.rejected_messages(),
        sim.ingress_occupancy(),
        sim.connectivity()
    );
    println!(
        "overhead\ttotal={}\tsamples={:?}",
        sim.overhead().total(),
        sim.overhead().nonzero_samples()
    );
    for p in sim.registered_paths() {
        println!(
            "path\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{:?}",
            p.holder,
            p.origin,
            p.algorithm,
            p.group,
            p.origin_interface,
            p.holder_interface,
            p.metrics.latency,
            p.metrics.bandwidth,
            p.metrics.hops,
            p.links
        );
    }
}
