//! Regenerates **Fig. 8b** of the paper: the CDF, over AS pairs, of tolerable link failures
//! (TLF) for 1SP, 5SP, HD and PD.
//!
//! ```text
//! cargo run -p irec-bench --bin fig8b --release -- [--ases 60] [--rounds 8] [--pd-pairs 10]
//! ```
//!
//! TLF is the minimum number of inter-domain links that must fail to disconnect all
//! registered paths between an AS pair (capped by the 20-path registration budget). Expected
//! shape: PD ≈ maximal for almost all sampled pairs, HD close behind, 5SP far lower, 1SP ≈ 1.

use irec_bench::campaign::{print_cdf, print_summary, Fig8Campaign};
use irec_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    eprintln!(
        "# Fig. 8b — building topology with {} ASes (seed {}), {} rounds, {} PD pairs",
        args.ases, args.seed, args.rounds, args.pd_pairs
    );
    let campaign = Fig8Campaign::new(args);
    let data = campaign.run().expect("campaign run succeeds");
    let (ases, links) = data.topology_size;
    println!("# Fig. 8b — tolerable link failures per AS pair");
    println!("# topology: {ases} ASes, {links} inter-domain links");
    println!("# columns: series, TLF, CDF fraction");

    let mut summaries = Vec::new();
    for series in ["1SP", "5SP", "HD"] {
        let cdf = data.tlf_cdf(series);
        print_cdf(series, &cdf);
        summaries.push((series.to_string(), cdf));
    }
    let pd = data.pd_tlf_cdf();
    print_cdf("PD", &pd);
    summaries.push(("PD".to_string(), pd));

    println!("#\n# summary (TLF, higher is better):");
    for (series, cdf) in &summaries {
        print!("# ");
        print_summary(series, cdf);
    }
}
