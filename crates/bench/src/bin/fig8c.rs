//! Regenerates **Fig. 8c** of the paper: the CDF of PCBs sent per interface per beaconing
//! period, for 1SP, 5SP, HD, PD, DON, DOB2000 and DOB300.
//!
//! ```text
//! cargo run -p irec-bench --bin fig8c --release -- [--ases 60] [--rounds 8]
//! ```
//!
//! The counts are per egress interface and per 10-simulated-minute period (non-zero cells,
//! matching the paper's log-scale x-axis). Expected shape: the push-based algorithms
//! (1SP/5SP/DON/DOB) have uniform per-interface overhead — 5SP above 1SP, the DOB variants
//! growing with the number of interface groups — while HD and PD send far fewer beacons in
//! most periods, with occasional PD spikes from per-pair pull rounds.

use irec_bench::campaign::{print_cdf, print_summary, Fig8Campaign};
use irec_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    eprintln!(
        "# Fig. 8c — building topology with {} ASes (seed {}), {} rounds",
        args.ases, args.seed, args.rounds
    );
    let campaign = Fig8Campaign::new(args);
    let data = campaign.run().expect("campaign run succeeds");
    let (ases, links) = data.topology_size;
    println!("# Fig. 8c — PCBs per interface per period");
    println!("# topology: {ases} ASes, {links} inter-domain links");
    println!("# columns: series, PCBs per interface per period, CDF fraction");

    let mut summaries = Vec::new();
    for series in ["1SP", "5SP", "HD", "PD", "DON", "DOB2000", "DOB300"] {
        let cdf = data.overhead_cdf(series);
        print_cdf(series, &cdf);
        summaries.push((series, cdf));
    }
    println!("#\n# summary (PCBs per interface per period):");
    for (series, cdf) in &summaries {
        print!("# ");
        print_summary(series, cdf);
    }
}
