//! Regenerates **Fig. 8c** of the paper: the CDF of PCBs sent per interface per beaconing
//! period, for 1SP, 5SP, HD, PD, DON, DOB2000 and DOB300 — plus the PD campaign's
//! per-pair throughput table.
//!
//! ```text
//! cargo run -p irec_bench --bin fig8c --release -- [--ases 60] [--rounds 8] \
//!     [--pd-pairs 10] [--pd-parallelism N] [--path-shards N]
//! ```
//!
//! The counts are per egress interface and per 10-simulated-minute period (non-zero cells,
//! matching the paper's log-scale x-axis). Expected shape: the push-based algorithms
//! (1SP/5SP/DON/DOB) have uniform per-interface overhead — 5SP above 1SP, the DOB variants
//! growing with the number of interface groups — while HD and PD send far fewer beacons in
//! most periods, with occasional PD spikes from per-pair pull rounds.
//!
//! The PD campaign fans its `(origin, target)` pairs out over `--pd-parallelism` workers
//! (each pair on its own simulation snapshot); the CDF data is byte-identical for every
//! worker and `--path-shards` value — only the per-pair wall-clock column moves.

use irec_bench::campaign::{print_cdf, print_summary, Fig8Campaign};
use irec_bench::report::{fmt_ms, fmt_pcbs_per_sec};
use irec_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    eprintln!(
        "# Fig. 8c — building topology with {} ASes (seed {}), {} rounds, \
         pd-parallelism {}, path-shards {}",
        args.ases, args.seed, args.rounds, args.pd_parallelism, args.path_shards
    );
    let campaign = Fig8Campaign::new(args);
    let data = campaign.run().expect("campaign run succeeds");
    let (ases, links) = data.topology_size;
    println!("# Fig. 8c — PCBs per interface per period");
    println!("# topology: {ases} ASes, {links} inter-domain links");
    println!("# columns: series, PCBs per interface per period, CDF fraction");

    let mut summaries = Vec::new();
    for series in ["1SP", "5SP", "HD", "PD", "DON", "DOB2000", "DOB300"] {
        let cdf = data.overhead_cdf(series);
        print_cdf(series, &cdf);
        summaries.push((series, cdf));
    }
    println!("#\n# summary (PCBs per interface per period):");
    for (series, cdf) in &summaries {
        print!("# ");
        print_summary(series, cdf);
    }

    // The PD campaign's per-pair throughput table. Wall-clock times go to comment rows:
    // they vary run to run, while everything above is deterministic.
    println!("#\n# PD campaign — per-pair throughput:");
    println!(
        "# pair\torigin\ttarget\tpaths\titerations\tempty\tpull_pcbs\telapsed_ms\tpaths_per_s"
    );
    let mut total_paths = 0usize;
    for (index, pair) in data.pd_pairs.iter().enumerate() {
        let paths = pair.result.paths.len();
        total_paths += paths;
        println!(
            "# {index}\t{}\t{}\t{paths}\t{}\t{}\t{}\t{}\t{}",
            pair.origin,
            pair.target,
            pair.result.iterations,
            pair.result.empty_iterations,
            pair.pull_overhead.iter().sum::<u64>(),
            fmt_ms(pair.elapsed),
            fmt_pcbs_per_sec(paths as u64, pair.elapsed),
        );
    }
    // The campaign row uses the campaign's wall-clock, not the sum of the per-pair
    // times: with `--pd-parallelism N` the pairs overlap, and this is the row where the
    // fan-out's speedup shows up.
    println!(
        "# campaign\t-\t-\t{total_paths}\t-\t-\t-\t{}\t{}",
        fmt_ms(data.pd_campaign_elapsed),
        fmt_pcbs_per_sec(total_paths as u64, data.pd_campaign_elapsed),
    );
}
