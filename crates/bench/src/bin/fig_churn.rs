//! Churn figure: convergence-time and dropped-message CDFs per churn rate.
//!
//! ```text
//! cargo run -p irec_bench --bin fig_churn --release -- [--ases 60] [--rounds 8] \
//!     [--churn-rate R] [--churn-seed N] [--churn-kinds K] \
//!     [--round-scheduler S] [--parallelism N] [--ingress-shards N] [--path-shards N] \
//!     [--incremental-selection M]
//! ```
//!
//! Runs one seeded churn campaign per rate — the fixed sweep `0.5, 1.0, 2.0` deltas per
//! step, plus `--churn-rate` when it names a rate outside the sweep — with `--rounds`
//! churn steps each, and prints two CDFs per rate: the settle rounds the plane needed
//! after each step (convergence time, in beaconing rounds) and the messages lost to churn
//! per step (dropped at delivery time because a link endpoint was down or the addressee
//! had left). Every step is gated by the churn invariant checker (steady registered paths
//! *and* no-blackhole within the convergence budget), so a completed run doubles as an
//! invariant pass over every scenario it shipped.
//!
//! Expected shape: higher rates apply more deltas per step, so both CDFs shift right —
//! more settle rounds per step and more dropped messages — while rate-independent floors
//! stay visible (a catalog swap settles in one round and drops nothing).
//!
//! The tables are byte-identical for every `--round-scheduler`, `--parallelism`,
//! `--ingress-shards`, `--path-shards` and `--incremental-selection` value; the churn
//! knobs are *workload* knobs and deliberately move the tables. With
//! `--incremental-selection on` the per-rate reuse counters go to stderr.

use irec_bench::campaign::{print_cdf, print_summary};
use irec_bench::workload::churn_pass_incremental;
use irec_bench::BenchArgs;
use irec_metrics::Cdf;
use irec_sim::ChurnConfig;

fn main() {
    let args = BenchArgs::from_env();
    let mut rates = vec![0.5, 1.0, 2.0];
    if args.churn_rate > 0.0 && !rates.contains(&args.churn_rate) {
        rates.push(args.churn_rate);
        rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    }
    let width = args.parallelism.max(args.delivery_parallelism);
    eprintln!(
        "# fig_churn — {} ASes (seed {}), {} steps per rate, churn seed {}, kinds {}, \
         rates {rates:?}",
        args.ases, args.seed, args.rounds, args.churn_seed, args.churn_kinds
    );
    println!("# fig_churn — convergence and message loss under churn");
    println!("# columns: series, value, CDF fraction");
    println!("# conv@R: settle rounds per churn step at R deltas/step");
    println!("# drop@R: messages dropped per churn step at R deltas/step");

    let mut summaries = Vec::new();
    for &rate in &rates {
        let churn = ChurnConfig::default()
            .with_rate(rate)
            .with_seed(args.churn_seed)
            .with_kinds(args.churn_kinds);
        let ((steps, _, _, _), inc) = churn_pass_incremental(
            args.ases,
            args.rounds,
            churn,
            args.round_scheduler,
            width,
            args.ingress_shards,
            args.path_shards,
            args.incremental_selection,
            args.seed,
        );
        let deltas: usize = steps.iter().map(|s| s.deltas.len()).sum();
        eprintln!(
            "# rate {rate}: {deltas} deltas over {} steps, all invariants held",
            steps.len()
        );
        eprintln!(
            "# rate {rate}: incremental reused={} recomputed={} invalidated={}",
            inc.reused, inc.recomputed, inc.invalidated
        );
        let convergence = Cdf::new(steps.iter().map(|s| s.settle_rounds as f64).collect());
        let dropped = Cdf::new(steps.iter().map(|s| s.dropped_total() as f64).collect());
        print_cdf(&format!("conv@{rate}"), &convergence);
        print_cdf(&format!("drop@{rate}"), &dropped);
        summaries.push((rate, deltas, convergence, dropped));
    }

    println!("#\n# summary per rate:");
    for (rate, deltas, convergence, dropped) in &summaries {
        println!("# rate {rate}: {deltas} deltas applied, invariant checker passed");
        print!("# ");
        print_summary(&format!("conv@{rate}"), convergence);
        print!("# ");
        print_summary(&format!("drop@{rate}"), dropped);
    }
}
