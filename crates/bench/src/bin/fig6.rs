//! Regenerates **Fig. 6** of the paper: PCB processing latency of the IREC sub-tasks
//! (sandbox setup, candidate marshalling, algorithm execution) compared to the legacy SCION
//! control service, for candidate-set sizes |Φ| = 1 … 4096.
//!
//! ```text
//! cargo run -p irec-bench --bin fig6 --release -- [--reps 5]
//! ```
//!
//! Output: one tab-separated row per |Φ| with the four latency series in milliseconds plus
//! the IREC/legacy ratio. The paper reports a ~426× ratio at |Φ| = 64 on its hardware; the
//! absolute numbers differ here, the shape (orders-of-magnitude gap at small |Φ|, execution
//! growing roughly linearly with |Φ| while setup and marshalling grow much more slowly) is
//! what this binary reproduces.

use irec_bench::report::{fmt_ms, header, worker_ladder};
use irec_bench::workload::{measure_delivery_point, measure_engine_point, measure_phi};
use irec_bench::BenchArgs;

fn main() {
    let args = BenchArgs::from_env();
    let sizes: [usize; 13] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

    println!("# Fig. 6 — PCB processing latency (ms) vs candidate set size |Phi|");
    println!("# repetitions per point: {}", args.reps);
    header(&[
        "phi",
        "wasm_setup_ms",
        "marshal_ms",
        "execution_ms",
        "irec_total_ms",
        "legacy_ms",
        "irec_over_legacy",
    ]);
    for phi in sizes {
        let m = measure_phi(phi, args.reps, args.seed);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.1}",
            phi,
            fmt_ms(m.setup),
            fmt_ms(m.marshal),
            fmt_ms(m.execute),
            fmt_ms(m.irec_total()),
            fmt_ms(m.legacy),
            m.ratio()
        );
    }

    // Second table (`--parallelism N`): the same setup/marshal/execute breakdown measured
    // through the parallel RAC execution engine against worker count. CPU columns stay
    // roughly constant (same work) while wall-clock drops as workers are added.
    let engine_phi = 256usize;
    let worker_counts = worker_ladder(args.parallelism);
    println!();
    println!(
        "# Engine scaling — RAC phase breakdown vs worker count (|Phi|={engine_phi}, 4 RACs x 4 batches)"
    );
    header(&[
        "workers",
        "wasm_setup_ms",
        "marshal_ms",
        "execution_ms",
        "cpu_total_ms",
        "wall_ms",
        "speedup",
    ]);
    // `worker_counts` always starts with 1; that first row doubles as the speedup baseline
    // (so the workers=1 row prints speedup 1.00 by construction and the point is not
    // measured twice).
    let mut base_wall = None;
    for workers in worker_counts {
        let (timing, wall) = measure_engine_point(
            engine_phi,
            workers,
            args.reps,
            args.seed,
            args.ingress_shards,
        );
        let base = *base_wall.get_or_insert(wall);
        let speedup = base.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{:.2}",
            workers,
            fmt_ms(timing.setup),
            fmt_ms(timing.marshal),
            fmt_ms(timing.execute),
            fmt_ms(timing.total()),
            fmt_ms(wall),
            speedup
        );
    }

    // Third table (`--delivery-parallelism N`): end-to-end simulation wall-clock against
    // the delivery plane's verify-stage worker count. The delivery counters are identical
    // for every row (the plane's determinism guarantee); only the wall-clock moves.
    let delivery_counts = worker_ladder(args.delivery_parallelism);
    println!();
    println!(
        "# Delivery-plane scaling — simulation wall-clock vs verify workers ({} ASes, {} rounds)",
        args.ases, args.rounds
    );
    header(&[
        "workers",
        "delivered",
        "rejected",
        "dropped_no_node",
        "wall_ms",
        "speedup",
    ]);
    let mut delivery_base = None;
    for workers in delivery_counts {
        let (stats, wall) = measure_delivery_point(
            args.ases,
            args.rounds,
            workers,
            args.ingress_shards,
            args.seed,
        );
        let base = *delivery_base.get_or_insert(wall);
        let speedup = base.as_secs_f64() / wall.as_secs_f64().max(f64::EPSILON);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{:.2}",
            workers,
            stats.delivered,
            stats.rejected,
            stats.dropped_no_node,
            fmt_ms(wall),
            speedup
        );
    }
}
