//! CI bench-regression gate: compares a quick criterion run (JSON lines produced by the
//! vendored shim under `IREC_CRITERION_JSON`) against the checked-in baseline and fails —
//! exit code 1 — when any kernel's machine-normalized score regressed by more than the
//! threshold. See `irec_bench::regression` for the mechanics.
//!
//! ```text
//! # gate (CI): compare against the checked-in baseline, write the summary artifact
//! cargo run --release -p irec_bench --bin bench_regression -- \
//!     --input bench-raw.jsonl --baseline crates/bench/baselines/bench_baseline.json \
//!     --output BENCH_ci.json [--threshold 0.25]
//!
//! # refresh the baseline after an intentional perf change
//! cargo run --release -p irec_bench --bin bench_regression -- \
//!     --input bench-raw.jsonl --write-baseline crates/bench/baselines/bench_baseline.json
//! ```

use irec_bench::regression::{
    baseline_from_samples, calibration_from_samples, compare, format_baseline,
    measure_calibration_ns, parse_baseline, parse_samples, Status,
};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut options: HashMap<String, String> = HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let Some(key) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument: {arg}");
            return ExitCode::FAILURE;
        };
        let Some(value) = args.next() else {
            eprintln!("--{key} requires a value");
            return ExitCode::FAILURE;
        };
        options.insert(key.to_string(), value);
    }

    let Some(input) = options.get("input") else {
        eprintln!("--input <bench-raw.jsonl> is required");
        return ExitCode::FAILURE;
    };
    let raw = match std::fs::read_to_string(input) {
        Ok(raw) => raw,
        Err(e) => {
            eprintln!("cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let samples = parse_samples(&raw);
    if samples.is_empty() {
        eprintln!(
            "{input} contains no bench records — did the benches run with IREC_CRITERION_JSON set?"
        );
        return ExitCode::FAILURE;
    }
    // Prefer the calibration rows the criterion sweeps interleaved with the workload
    // kernels: they were measured under the same scheduler and cache conditions as the
    // means they normalize. An in-process measurement is only a fallback for input files
    // recorded without the calibration bench.
    let calibration_ns = match calibration_from_samples(&samples) {
        Some(ns) => {
            eprintln!(
                "calibration: {ns:.0} ns (interleaved calibration/mix), {} bench records",
                samples.len()
            );
            ns
        }
        None => {
            eprintln!("no calibration/mix rows in {input}; measuring calibration kernel...");
            let ns = measure_calibration_ns();
            eprintln!("calibration: {ns:.0} ns, {} bench records", samples.len());
            ns
        }
    };

    // Refresh mode: record the run as the new baseline and exit.
    if let Some(path) = options.get("write-baseline") {
        let baseline = baseline_from_samples(&samples, calibration_ns);
        if let Err(e) = std::fs::write(path, format_baseline(&baseline)) {
            eprintln!("cannot write baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "baseline written to {path} ({} kernels)",
            baseline.scores.len()
        );
        return ExitCode::SUCCESS;
    }

    // Gate mode.
    let Some(baseline_path) = options.get("baseline") else {
        eprintln!("--baseline <bench_baseline.json> is required (or use --write-baseline)");
        return ExitCode::FAILURE;
    };
    let baseline = match std::fs::read_to_string(baseline_path)
        .map_err(|e| e.to_string())
        .and_then(|text| parse_baseline(&text))
    {
        Ok(baseline) => baseline,
        Err(e) => {
            eprintln!("cannot load baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let threshold: f64 = options
        .get("threshold")
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.25);

    let report = compare(&samples, &baseline, calibration_ns, threshold);
    for row in &report.rows {
        let detail = match (row.baseline_score, row.ratio) {
            (Some(base), Some(ratio)) => {
                format!("score {:.4} vs baseline {base:.4} (x{ratio:.3})", row.score)
            }
            _ => format!("score {:.4} (no baseline)", row.score),
        };
        let marker = match row.status {
            Status::Ok => "ok       ",
            Status::Regressed => "REGRESSED",
            Status::New => "new      ",
        };
        println!("{marker} {:<28} {detail}", row.bench);
    }
    for bench in &report.missing {
        println!("skipped   {bench:<28} (in baseline, not measured on this machine)");
    }

    if let Some(output) = options.get("output") {
        if let Err(e) = std::fs::write(output, report.to_json()) {
            eprintln!("cannot write {output}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("summary artifact written to {output}");
    }

    if report.regressed() {
        eprintln!(
            "FAIL: at least one kernel regressed more than {:.0}% against {baseline_path}",
            threshold * 100.0
        );
        eprintln!(
            "if the slowdown is intentional, refresh with: cargo run --release -p irec_bench --bin bench_regression -- --input {input} --write-baseline {baseline_path}"
        );
        return ExitCode::FAILURE;
    }
    eprintln!("all kernels within {:.0}% of baseline", threshold * 100.0);
    ExitCode::SUCCESS
}
