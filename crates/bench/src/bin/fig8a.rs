//! Regenerates **Fig. 8a** of the paper: the CDF, over PoP pairs, of the minimum propagation
//! delay achieved by 5SP, DON, DOB2000 and DOB300, relative to the 1SP baseline.
//!
//! ```text
//! cargo run -p irec-bench --bin fig8a --release -- [--ases 60] [--rounds 8] [--seed 7]
//! ```
//!
//! Use `--ases 500` for the paper-scale topology. PoP pairs for which 1SP finds a path but
//! the series does not are reported with the sentinel ratio 1.5 (the paper's
//! "greater-than-one tails"). Expected shape: DOB300 < DOB2000 < DON < 5SP ≤ 1SP for most
//! PoP pairs, with DOB300 having the fewest missing pairs.

use irec_bench::campaign::{print_cdf, print_summary, Fig8Campaign};
use irec_bench::BenchArgs;

/// Sentinel relative delay for PoP pairs a series cannot connect (the >1 tail of the paper).
const MISSING_RATIO: f64 = 1.5;

fn main() {
    let args = BenchArgs::from_env();
    eprintln!(
        "# Fig. 8a — building topology with {} ASes (seed {}), {} beaconing rounds",
        args.ases, args.seed, args.rounds
    );
    let campaign = Fig8Campaign::new(args);
    let data = campaign.run().expect("campaign run succeeds");
    let (ases, links) = data.topology_size;
    println!("# Fig. 8a — latency between PoPs relative to 1SP");
    println!("# topology: {ases} ASes, {links} inter-domain links");
    println!("# columns: series, relative delay, CDF fraction");

    let mut summaries = Vec::new();
    for series in ["5SP", "DON", "DOB2000", "DOB300"] {
        let cdf = data.relative_delay_cdf(campaign.topology(), series, MISSING_RATIO);
        print_cdf(series, &cdf);
        summaries.push((series, cdf));
    }
    println!("#\n# summary (relative delay, lower is better):");
    for (series, cdf) in &summaries {
        print!("# ");
        print_summary(series, cdf);
    }
}
