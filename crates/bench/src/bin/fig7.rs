//! Regenerates **Fig. 7** of the paper: PCB processing throughput for an increasing number
//! of parallel RACs, for candidate-set sizes |Φ| ∈ {16, 64, 256, 1024, 4096}.
//!
//! ```text
//! cargo run -p irec-bench --bin fig7 --release -- [--max-racs 16]
//! ```
//!
//! Each RAC runs on its own thread and repeatedly processes the candidate set (the paper:
//! "Once the algorithm has computed the set of optimal PCBs from Φ, the RAC immediately
//! fetches Φ and runs the algorithm again"). The expected shape: throughput grows roughly
//! linearly with the number of RACs and sub-linearly with |Φ| (larger sets amortize the
//! per-batch setup and marshalling overhead, so per-PCB throughput is higher).

use irec_bench::report::{fmt_pcbs_per_sec, header, worker_ladder};
use irec_bench::workload::{
    candidate_set, measure_delivery_point, on_demand_rac, rac_processing_latency, tag_candidates,
    workload_local_as,
};
use irec_bench::BenchArgs;
use std::time::{Duration, Instant};

/// How long each (|Φ|, #RACs) point runs.
const MEASURE_WINDOW: Duration = Duration::from_millis(400);

fn main() {
    let args = BenchArgs::from_env();
    let sizes: [usize; 5] = [16, 64, 256, 1024, 4096];
    // The preset scan covers worker counts up to `--max-racs`; `--parallelism N` keeps its
    // global meaning ("I want N workers") by guaranteeing N itself is one of the measured
    // points, without widening the preset sweep.
    let rac_counts: Vec<usize> = {
        let mut v = vec![1usize, 2, 4, 8, 16, 24, 32];
        v.retain(|&n| n <= args.max_racs.max(1));
        if args.parallelism > 1 && !v.contains(&args.parallelism) {
            v.push(args.parallelism);
            v.sort_unstable();
        }
        if v.is_empty() {
            v.push(1);
        }
        v
    };

    println!("# Fig. 7 — PCB processing throughput (PCB/s) vs number of RACs");
    println!("# measure window per point: {MEASURE_WINDOW:?}");
    header(&["racs", "phi", "pcbs_per_second"]);

    for &phi in &sizes {
        for &racs in &rac_counts {
            let throughput = measure_point(phi, racs, args.seed);
            println!("{racs}\t{phi}\t{throughput}");
        }
    }

    // Second table (`--delivery-parallelism N`): control-plane message throughput of the
    // simulation's delivery plane against its verify-stage worker count.
    let delivery_counts = worker_ladder(args.delivery_parallelism);
    println!();
    println!(
        "# Delivery-plane throughput — delivered messages/s vs verify workers ({} ASes, {} rounds)",
        args.ases, args.rounds
    );
    header(&["workers", "delivered", "messages_per_second"]);
    for workers in delivery_counts {
        let (stats, wall) = measure_delivery_point(
            args.ases,
            args.rounds,
            workers,
            args.ingress_shards,
            args.seed,
        );
        println!(
            "{}\t{}\t{}",
            workers,
            stats.delivered,
            fmt_pcbs_per_sec(stats.delivered, wall)
        );
    }
}

fn measure_point(phi: usize, racs: usize, seed: u64) -> String {
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(racs);
        for worker in 0..racs {
            handles.push(scope.spawn(move || {
                let local_as = workload_local_as();
                let (rac, _, store) = on_demand_rac();
                let base = candidate_set(phi, seed + worker as u64);
                let tagged = tag_candidates(&base, &store);
                let mut processed: u64 = 0;
                let begin = Instant::now();
                while begin.elapsed() < MEASURE_WINDOW {
                    rac_processing_latency(&rac, &tagged, &local_as)
                        .expect("benchmark processing succeeds");
                    processed += phi as u64;
                }
                processed
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .sum()
    });
    fmt_pcbs_per_sec(total, start.elapsed())
}
