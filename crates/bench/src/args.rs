//! A tiny `--key value` argument parser shared by the figure binaries (no external
//! dependencies).

use irec_sim::{ChurnKinds, IncrementalSelectionMode, RoundScheduler, SimulationConfig};
use std::collections::HashMap;

/// Parsed benchmark arguments with defaults suitable for a laptop-scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchArgs {
    /// Number of ASes of the generated topology (`--ases`, default 60; the paper uses 500).
    pub ases: usize,
    /// Number of beaconing rounds to simulate (`--rounds`, default 8).
    pub rounds: usize,
    /// PRNG seed (`--seed`, default 7).
    pub seed: u64,
    /// Number of (origin, target) AS pairs sampled for the PD workflow (`--pd-pairs`,
    /// default 10).
    pub pd_pairs: usize,
    /// Repetitions per measurement point for the micro-benchmarks (`--reps`, default 5).
    pub reps: usize,
    /// Maximum number of parallel RACs for the throughput scan (`--max-racs`,
    /// default = available parallelism capped at 16).
    pub max_racs: usize,
    /// Worker threads of the parallel execution engines (`--parallelism`, default 1 =
    /// sequential). Threaded into the simulation's node phase, each node's RAC engine, and
    /// the Fig. 6 engine-scaling section.
    pub parallelism: usize,
    /// Worker threads of the message-delivery plane's verify stage
    /// (`--delivery-parallelism`, default 1 = sequential). Threaded into every simulation
    /// the binaries build and into the delivery-scaling sections of fig6/fig7.
    pub delivery_parallelism: usize,
    /// Shard count of every node's ingress database (`--ingress-shards`, default 0 = auto:
    /// the next power of two of `--parallelism`). Threaded into every simulation the
    /// binaries build, the engine workloads and the `ingress_sharding` criterion bench;
    /// the simulation output is byte-identical for every value.
    pub ingress_shards: usize,
    /// Worker threads of the PD campaign (`--pd-parallelism`, default 1 = sequential):
    /// how many `(origin, target)` pull workflows run concurrently, each on its own
    /// simulation snapshot. Campaign results are byte-identical for every value.
    pub pd_parallelism: usize,
    /// Shard count of every node's path service (`--path-shards`, default 0 = auto: the
    /// next power of two of `--parallelism`). Threaded into every simulation the binaries
    /// build; the simulation output is byte-identical for every value.
    pub path_shards: usize,
    /// Use the deep-`Clone` reference implementation for per-pair PD campaign snapshots
    /// instead of the default copy-on-write snapshots (`--pd-deep-clone`, default false).
    /// Campaign output is byte-identical either way — this knob exists for A/B-ing the
    /// snapshot cost (see `docs/KNOBS.md`).
    pub pd_deep_clone: bool,
    /// Round scheduler of every simulation the binaries build (`--round-scheduler
    /// {barrier,dag}`, default barrier). Under `dag` the rounds run as a work-item DAG on
    /// one pool of `max(parallelism, delivery-parallelism)` workers; the simulation output
    /// is byte-identical either way.
    pub round_scheduler: RoundScheduler,
    /// Incremental re-selection mode of every node the binaries build
    /// (`--incremental-selection {off,on}`, default off). Under `on` static RACs reuse
    /// the previous round's selections for batches whose content is unchanged; the
    /// simulation output is byte-identical either way.
    pub incremental_selection: IncrementalSelectionMode,
    /// Expected churn deltas per step of the churn engine (`--churn-rate`, default 0 =
    /// churn disabled). A *workload* knob: it changes what is simulated — deterministically
    /// for a fixed `--churn-seed` — unlike the parallelism/shard knobs, which never change
    /// the output.
    pub churn_rate: f64,
    /// PRNG seed of the churn timeline (`--churn-seed`, default 11), deliberately separate
    /// from `--seed` so the same topology can be churned with different timelines.
    pub churn_seed: u64,
    /// Enabled churn delta kinds with optional weights (`--churn-kinds`, default `all`;
    /// e.g. `link-down,link-up` or `link-down=3,node-leave`).
    pub churn_kinds: ChurnKinds,
    /// Selection algorithm of every RAC the binaries deploy (`--algorithm`, default none =
    /// each binary's built-in mix). Any catalog spec: `5SP`, `5YEN`, `HD`,
    /// `aco[:<seed>[:<iterations>]]`, ... A *workload* knob, like the churn family: it
    /// changes what is computed, deterministically for a fixed spec.
    pub algorithm: Option<String>,
    /// PRNG seed of the ant-colony algorithm family (`--aco-seed`, default 1). Only
    /// consulted when `--algorithm aco` is given without an explicit `:<seed>` suffix.
    pub aco_seed: u64,
    /// Iteration budget of the ant-colony algorithm family (`--aco-budget`, default 16,
    /// cap 1024). Only consulted when `--algorithm aco` is given without an explicit
    /// iteration suffix.
    pub aco_budget: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        BenchArgs {
            ases: 60,
            rounds: 8,
            seed: 7,
            pd_pairs: 10,
            reps: 5,
            max_racs: cores.min(16),
            parallelism: 1,
            delivery_parallelism: 1,
            ingress_shards: 0,
            pd_parallelism: 1,
            path_shards: 0,
            pd_deep_clone: false,
            round_scheduler: RoundScheduler::Barrier,
            incremental_selection: IncrementalSelectionMode::Off,
            churn_rate: 0.0,
            churn_seed: 11,
            churn_kinds: ChurnKinds::default(),
            algorithm: None,
            aco_seed: 1,
            aco_budget: 16,
        }
    }
}

impl BenchArgs {
    /// Parses `--key value` pairs from an iterator of arguments (unknown keys are ignored so
    /// binaries stay forward compatible).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut map: HashMap<String, String> = HashMap::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if let Some(value) = iter.peek() {
                    if !value.starts_with("--") {
                        map.insert(key.to_string(), value.clone());
                        iter.next();
                        continue;
                    }
                }
                map.insert(key.to_string(), String::from("true"));
            }
        }
        let mut parsed = BenchArgs::default();
        let get = |map: &HashMap<String, String>, key: &str| -> Option<usize> {
            map.get(key).and_then(|v| v.parse().ok())
        };
        if let Some(v) = get(&map, "ases") {
            parsed.ases = v.max(5);
        }
        if let Some(v) = get(&map, "rounds") {
            parsed.rounds = v.max(1);
        }
        if let Some(v) = map.get("seed").and_then(|v| v.parse().ok()) {
            parsed.seed = v;
        }
        if let Some(v) = get(&map, "pd-pairs") {
            parsed.pd_pairs = v;
        }
        if let Some(v) = get(&map, "reps") {
            parsed.reps = v.max(1);
        }
        if let Some(v) = get(&map, "max-racs") {
            parsed.max_racs = v.clamp(1, 64);
        }
        if let Some(v) = get(&map, "parallelism") {
            parsed.parallelism = v.clamp(1, 64);
        }
        if let Some(v) = get(&map, "delivery-parallelism") {
            parsed.delivery_parallelism = v.clamp(1, 64);
        }
        if let Some(v) = get(&map, "ingress-shards") {
            parsed.ingress_shards = v.min(256);
        }
        if let Some(v) = get(&map, "pd-parallelism") {
            parsed.pd_parallelism = v.clamp(1, 64);
        }
        if let Some(v) = get(&map, "path-shards") {
            parsed.path_shards = v.min(256);
        }
        if let Some(v) = map.get("pd-deep-clone") {
            parsed.pd_deep_clone = matches!(v.as_str(), "true" | "1" | "yes");
        }
        if let Some(v) = map.get("round-scheduler").and_then(|v| v.parse().ok()) {
            parsed.round_scheduler = v;
        }
        if let Some(v) = map
            .get("incremental-selection")
            .and_then(|v| v.parse().ok())
        {
            parsed.incremental_selection = v;
        }
        if let Some(v) = map.get("churn-rate").and_then(|v| v.parse::<f64>().ok()) {
            parsed.churn_rate = if v.is_finite() { v.max(0.0) } else { 0.0 };
        }
        if let Some(v) = map.get("churn-seed").and_then(|v| v.parse().ok()) {
            parsed.churn_seed = v;
        }
        if let Some(v) = map.get("churn-kinds").and_then(|v| v.parse().ok()) {
            parsed.churn_kinds = v;
        }
        if let Some(v) = map.get("algorithm") {
            if v != "true" && !v.is_empty() {
                parsed.algorithm = Some(v.clone());
            }
        }
        if let Some(v) = map.get("aco-seed").and_then(|v| v.parse().ok()) {
            parsed.aco_seed = v;
        }
        if let Some(v) = get(&map, "aco-budget") {
            parsed.aco_budget = v.clamp(1, 1024);
        }
        parsed
    }

    /// The effective `--algorithm` catalog spec, with the bare `aco` family name expanded
    /// to `aco:<--aco-seed>:<--aco-budget>`. Explicit suffixes (`aco:9`, `aco:9:4`) win
    /// over the dedicated knobs, like every other spec.
    pub fn algorithm_spec(&self) -> Option<String> {
        self.algorithm.as_deref().map(|name| {
            if name.eq_ignore_ascii_case("aco") {
                format!("aco:{}:{}", self.aco_seed, self.aco_budget)
            } else {
                name.to_string()
            }
        })
    }

    /// The [`SimulationConfig`] these arguments describe: the one place the figure
    /// binaries and campaign runner translate knobs into a simulation, so no caller
    /// hand-rolls the plumbing (or misses a knob added later). Node-level shard counts
    /// ride along — [`SimulationConfig::with_ingress_shards`] /
    /// [`SimulationConfig::with_path_shards`] push them into every node the simulation
    /// builds, including mid-run churn joins.
    pub fn to_sim_config(&self) -> SimulationConfig {
        SimulationConfig::default()
            .with_parallelism(self.parallelism)
            .with_delivery_parallelism(self.delivery_parallelism)
            .with_round_scheduler(self.round_scheduler)
            .with_ingress_shards(self.ingress_shards)
            .with_path_shards(self.path_shards)
            .with_incremental_selection(self.incremental_selection)
    }

    /// One-screen summary of every `--key value` knob shared by the figure binaries.
    ///
    /// The full table — auto-default rules, determinism guarantees, and the
    /// `IREC_CRITERION_*` environment hooks — lives in `docs/KNOBS.md`.
    pub fn help_text() -> &'static str {
        "Shared figure-binary knobs (all `--key value`; unknown keys are ignored):\n\
         \n\
         \x20 --ases N                  topology size in ASes (default 60, min 5)\n\
         \x20 --rounds N                beaconing rounds to simulate (default 8)\n\
         \x20 --seed N                  PRNG seed (default 7)\n\
         \x20 --reps N                  repetitions per measurement point (default 5)\n\
         \x20 --pd-pairs N              (origin, target) pairs of the PD campaign (default 10)\n\
         \x20 --max-racs N              upper bound of the RAC-count scan (default cores, cap 16)\n\
         \x20 --parallelism N           node-phase + RAC-engine workers (default 1 = sequential)\n\
         \x20 --delivery-parallelism N  delivery-plane verify/apply workers (default 1)\n\
         \x20 --pd-parallelism N        concurrent PD campaign pairs (default 1)\n\
         \x20 --ingress-shards N        ingress-DB shards per node (default 0 = auto)\n\
         \x20 --path-shards N           path-service shards per node (default 0 = auto)\n\
         \x20 --pd-deep-clone           use deep-Clone PD snapshots instead of copy-on-write\n\
         \x20 --round-scheduler S       round scheduler: barrier (default) or dag\n\
         \x20 --incremental-selection M reuse unchanged RAC selections across rounds:\n\
         \x20                           off (default) or on\n\
         \x20 --churn-rate R            expected churn deltas per step (default 0 = off)\n\
         \x20 --churn-seed N            churn-timeline PRNG seed (default 11)\n\
         \x20 --churn-kinds K           delta kinds, e.g. all or link-down=3,node-leave\n\
         \x20 --algorithm A             RAC selection algorithm spec, e.g. 5SP, 5YEN, HD,\n\
         \x20                           aco[:<seed>[:<iters>]] (default: binary's own mix)\n\
         \x20 --aco-seed N              ant-colony PRNG seed for a bare --algorithm aco\n\
         \x20                           (default 1)\n\
         \x20 --aco-budget N            ant-colony iteration budget for a bare\n\
         \x20                           --algorithm aco (default 16, cap 1024)\n\
         \n\
         Every parallelism/shard value yields byte-identical simulation output.\n\
         Churn knobs are workload knobs: they change the timeline, deterministically.\n\
         So is --algorithm: it changes the selection plane, deterministically per spec.\n\
         Full table with auto-default rules and IREC_CRITERION_* env hooks: docs/KNOBS.md\n"
    }

    /// Parses the current process arguments (skipping the binary name).
    ///
    /// `--help`/`-h` print [`BenchArgs::help_text`] and exit.
    pub fn from_env() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", Self::help_text());
            std::process::exit(0);
        }
        Self::parse(args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> BenchArgs {
        BenchArgs::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_arguments() {
        let a = parse(&[]);
        assert_eq!(a.ases, 60);
        assert_eq!(a.rounds, 8);
        assert!(a.max_racs >= 1);
        assert_eq!(a.parallelism, 1);
        assert_eq!(a.delivery_parallelism, 1);
        assert_eq!(a.ingress_shards, 0);
        assert_eq!(a.pd_parallelism, 1);
        assert_eq!(a.path_shards, 0);
    }

    #[test]
    fn round_scheduler_parses_and_defaults_to_barrier() {
        assert_eq!(parse(&[]).round_scheduler, RoundScheduler::Barrier);
        assert_eq!(
            parse(&["--round-scheduler", "dag"]).round_scheduler,
            RoundScheduler::Dag
        );
        assert_eq!(
            parse(&["--round-scheduler", "barrier"]).round_scheduler,
            RoundScheduler::Barrier
        );
        // Unparsable values fall back to the default, like every other knob.
        assert_eq!(
            parse(&["--round-scheduler", "eager"]).round_scheduler,
            RoundScheduler::Barrier
        );
    }

    #[test]
    fn incremental_selection_parses_and_defaults_to_off() {
        assert_eq!(
            parse(&[]).incremental_selection,
            IncrementalSelectionMode::Off
        );
        assert_eq!(
            parse(&["--incremental-selection", "on"]).incremental_selection,
            IncrementalSelectionMode::On
        );
        assert_eq!(
            parse(&["--incremental-selection", "off"]).incremental_selection,
            IncrementalSelectionMode::Off
        );
        // Unparsable values fall back to the default, like every other knob.
        assert_eq!(
            parse(&["--incremental-selection", "maybe"]).incremental_selection,
            IncrementalSelectionMode::Off
        );
    }

    #[test]
    fn to_sim_config_carries_every_simulation_knob() {
        let a = parse(&[
            "--parallelism",
            "4",
            "--delivery-parallelism",
            "3",
            "--round-scheduler",
            "dag",
            "--ingress-shards",
            "7",
            "--path-shards",
            "5",
            "--incremental-selection",
            "on",
        ]);
        let config = a.to_sim_config();
        assert_eq!(config.parallelism, 4);
        assert_eq!(config.delivery_parallelism, 3);
        assert_eq!(config.round_scheduler, RoundScheduler::Dag);
        assert_eq!(config.ingress_shards, 7);
        assert_eq!(config.path_shards, 5);
        assert_eq!(config.incremental_selection, IncrementalSelectionMode::On);
        // Defaults translate to the default simulation config.
        assert_eq!(parse(&[]).to_sim_config(), SimulationConfig::default());
    }

    #[test]
    fn parses_known_keys() {
        let a = parse(&[
            "--ases",
            "120",
            "--rounds",
            "12",
            "--seed",
            "99",
            "--pd-pairs",
            "3",
            "--reps",
            "2",
            "--max-racs",
            "4",
            "--parallelism",
            "6",
            "--delivery-parallelism",
            "3",
            "--ingress-shards",
            "7",
            "--pd-parallelism",
            "5",
            "--path-shards",
            "9",
        ]);
        assert_eq!(a.ases, 120);
        assert_eq!(a.rounds, 12);
        assert_eq!(a.seed, 99);
        assert_eq!(a.pd_pairs, 3);
        assert_eq!(a.reps, 2);
        assert_eq!(a.max_racs, 4);
        assert_eq!(a.parallelism, 6);
        assert_eq!(a.delivery_parallelism, 3);
        assert_eq!(a.ingress_shards, 7);
        assert_eq!(a.pd_parallelism, 5);
        assert_eq!(a.path_shards, 9);
    }

    #[test]
    fn ignores_unknown_keys_and_clamps() {
        let a = parse(&["--bogus", "x", "--ases", "1", "--max-racs", "1000"]);
        assert_eq!(a.ases, 5);
        assert_eq!(a.max_racs, 64);
        let p = parse(&["--parallelism", "0"]);
        assert_eq!(p.parallelism, 1);
        let d = parse(&["--delivery-parallelism", "500"]);
        assert_eq!(d.delivery_parallelism, 64);
        let i = parse(&["--ingress-shards", "9000"]);
        assert_eq!(i.ingress_shards, 256);
        let p = parse(&["--pd-parallelism", "0", "--path-shards", "9000"]);
        assert_eq!(p.pd_parallelism, 1);
        assert_eq!(p.path_shards, 256);
    }

    #[test]
    fn pd_deep_clone_parses_as_bare_flag_and_with_value() {
        assert!(!parse(&[]).pd_deep_clone);
        // A bare `--pd-deep-clone` (no value) is recorded as "true" by the parser.
        assert!(parse(&["--pd-deep-clone"]).pd_deep_clone);
        assert!(parse(&["--pd-deep-clone", "1"]).pd_deep_clone);
        assert!(!parse(&["--pd-deep-clone", "false"]).pd_deep_clone);
    }

    #[test]
    fn churn_knobs_parse_clamp_and_default_to_off() {
        let a = parse(&[]);
        assert_eq!(a.churn_rate, 0.0);
        assert_eq!(a.churn_seed, 11);
        assert_eq!(a.churn_kinds, ChurnKinds::default());
        let a = parse(&[
            "--churn-rate",
            "1.5",
            "--churn-seed",
            "42",
            "--churn-kinds",
            "link-down=3,link-up",
        ]);
        assert_eq!(a.churn_rate, 1.5);
        assert_eq!(a.churn_seed, 42);
        assert_eq!(a.churn_kinds.link_down, 3);
        assert_eq!(a.churn_kinds.link_up, 1);
        assert_eq!(a.churn_kinds.node_leave, 0);
        // Negative, non-finite, and unparsable values fall back to off/default.
        assert_eq!(parse(&["--churn-rate", "-2"]).churn_rate, 0.0);
        assert_eq!(parse(&["--churn-rate", "inf"]).churn_rate, 0.0);
        assert_eq!(
            parse(&["--churn-kinds", "bogus-kind"]).churn_kinds,
            ChurnKinds::default()
        );
    }

    #[test]
    fn algorithm_knobs_parse_and_compose_specs() {
        let a = parse(&[]);
        assert_eq!(a.algorithm, None);
        assert_eq!(a.aco_seed, 1);
        assert_eq!(a.aco_budget, 16);
        assert_eq!(a.algorithm_spec(), None);

        let a = parse(&["--algorithm", "5YEN"]);
        assert_eq!(a.algorithm.as_deref(), Some("5YEN"));
        assert_eq!(a.algorithm_spec().as_deref(), Some("5YEN"));

        // A bare `aco` composes the dedicated seed/budget knobs into the spec.
        let a = parse(&[
            "--algorithm",
            "aco",
            "--aco-seed",
            "42",
            "--aco-budget",
            "8",
        ]);
        assert_eq!(a.algorithm_spec().as_deref(), Some("aco:42:8"));

        // An explicit spec suffix wins over the dedicated knobs.
        let a = parse(&["--algorithm", "aco:9:4", "--aco-seed", "42"]);
        assert_eq!(a.algorithm_spec().as_deref(), Some("aco:9:4"));

        // The budget clamps to the catalog's iteration cap; a value-less `--algorithm`
        // stays off instead of deploying a RAC literally named "true".
        assert_eq!(parse(&["--aco-budget", "0"]).aco_budget, 1);
        assert_eq!(parse(&["--aco-budget", "90000"]).aco_budget, 1024);
        assert_eq!(parse(&["--algorithm"]).algorithm, None);
    }

    #[test]
    fn help_text_covers_every_knob_and_points_at_the_docs_table() {
        let help = BenchArgs::help_text();
        for knob in [
            "--ases",
            "--rounds",
            "--seed",
            "--reps",
            "--pd-pairs",
            "--max-racs",
            "--parallelism",
            "--delivery-parallelism",
            "--pd-parallelism",
            "--ingress-shards",
            "--path-shards",
            "--pd-deep-clone",
            "--round-scheduler",
            "--incremental-selection",
            "--churn-rate",
            "--churn-seed",
            "--churn-kinds",
            "--algorithm",
            "--aco-seed",
            "--aco-budget",
        ] {
            assert!(help.contains(knob), "help text is missing {knob}");
        }
        assert!(help.contains("docs/KNOBS.md"));
        assert!(help.contains("IREC_CRITERION_"));
    }

    #[test]
    fn flag_without_value_is_tolerated() {
        let a = parse(&["--verbose", "--rounds", "3"]);
        assert_eq!(a.rounds, 3);
    }
}
