//! The CI bench-regression harness: compares a quick criterion run against a checked-in
//! baseline and fails on kernel regressions.
//!
//! ## How it works
//!
//! 1. CI runs the criterion benches (`rac_engine_scaling`, `delivery_scaling`,
//!    `ingress_sharding`, `pd_campaign_scaling`, `pd_snapshot_cost`,
//!    `dag_scheduler_scaling`) with `IREC_CRITERION_QUICK=1` and
//!    `IREC_CRITERION_JSON=<path>`; the vendored criterion shim appends one JSON line per
//!    benchmark (`{"bench":"group/id","mean_ns":…,"iters":…}`). Every suite also registers
//!    the **calibration kernel** ([`calibration_pass`]) as the `calibration/mix` bench, so
//!    each sweep interleaves a calibration measurement with the workload kernels it
//!    normalizes — same scheduler pressure, same cache state, same moment in time.
//! 2. The `bench_regression` binary reads those lines, takes the best `calibration/mix`
//!    measurement ([`calibration_from_samples`]; it falls back to an in-process
//!    [`measure_calibration_ns`] for input files recorded without the calibration bench),
//!    and normalizes every workload mean into a machine-speed-independent *score* =
//!    `mean_ns / calibration_ns`. The checked-in baseline stores scores, not raw
//!    nanoseconds, so a baseline recorded on one box is comparable on another. The
//!    calibration kernel deliberately mirrors the workloads' operation mix — allocator
//!    traffic, ordered-map churn and mutex hand-offs, not pure ALU — so machine-to-machine
//!    differences in memory and lock performance cancel out of the scores instead of
//!    showing up as phantom regressions.
//! 3. A kernel regresses when its score exceeds the baseline score by more than the
//!    threshold (25 % by default). The binary writes a `BENCH_ci.json` summary artifact
//!    and exits non-zero on any regression.
//!
//! Refreshing the baseline after an intentional perf change is one line (from a fresh
//! `bench-raw.jsonl` produced by step 1):
//!
//! ```text
//! cargo run --release -p irec_bench --bin bench_regression -- --input bench-raw.jsonl --write-baseline crates/bench/baselines/bench_baseline.json
//! ```
//!
//! Everything here is dependency-free: the JSON written and read is the flat format shown
//! above, parsed with a purpose-built reader (the build environment has no `serde_json`).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Instant;

/// The bench id under which every suite registers the calibration kernel. Rows with this
/// id are the run's machine-speed normalizer — they are excluded from scoring and from
/// baselines.
pub const CALIBRATION_BENCH: &str = "calibration/mix";

/// One benchmark measurement as emitted by the criterion shim.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSample {
    /// `group/id` identifier, e.g. `rac_engine_scaling/4`.
    pub bench: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

/// The checked-in baseline: the calibration measurement it was recorded under and the
/// normalized score of every kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Calibration-kernel nanoseconds on the recording machine (informational; scores are
    /// already normalized by it).
    pub calibration_ns: f64,
    /// Normalized score (`mean_ns / calibration_ns`) per bench id.
    pub scores: BTreeMap<String, f64>,
}

/// Outcome of one kernel's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Within the threshold of the baseline.
    Ok,
    /// Slower than baseline by more than the threshold.
    Regressed,
    /// Not present in the baseline (new kernel or parameter point).
    New,
}

impl Status {
    fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Regressed => "regressed",
            Status::New => "new",
        }
    }
}

/// One row of the comparison report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportRow {
    /// Bench id.
    pub bench: String,
    /// Measured mean nanoseconds.
    pub mean_ns: f64,
    /// Normalized score of this run.
    pub score: f64,
    /// Baseline score, when the baseline knows this kernel.
    pub baseline_score: Option<f64>,
    /// `score / baseline_score`, when comparable.
    pub ratio: Option<f64>,
    /// Verdict.
    pub status: Status,
}

/// The full comparison report (serialized into `BENCH_ci.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Calibration nanoseconds measured for this run.
    pub calibration_ns: f64,
    /// Regression threshold (fractional, e.g. `0.25`).
    pub threshold: f64,
    /// Per-kernel rows, in bench-id order.
    pub rows: Vec<ReportRow>,
    /// Baseline kernels absent from this run (e.g. parameter points the CI machine's core
    /// count filtered out) — reported, never failed on.
    pub missing: Vec<String>,
}

impl Report {
    /// Whether any kernel regressed.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.status == Status::Regressed)
    }

    /// Serializes the report as the `BENCH_ci.json` artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"calibration_ns\": {:.1},\n  \"threshold\": {},\n  \"regressed\": {},\n",
            self.calibration_ns,
            self.threshold,
            self.regressed()
        ));
        out.push_str("  \"results\": [\n");
        for (index, row) in self.rows.iter().enumerate() {
            let baseline = row
                .baseline_score
                .map(|s| format!("{s:.6}"))
                .unwrap_or_else(|| "null".to_string());
            let ratio = row
                .ratio
                .map(|r| format!("{r:.4}"))
                .unwrap_or_else(|| "null".to_string());
            out.push_str(&format!(
                "    {{\"bench\": \"{}\", \"mean_ns\": {:.1}, \"score\": {:.6}, \
                 \"baseline_score\": {baseline}, \"ratio\": {ratio}, \"status\": \"{}\"}}{}\n",
                json_escape(&row.bench),
                row.mean_ns,
                row.score,
                row.status.as_str(),
                if index + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n  \"missing\": [");
        for (index, bench) in self.missing.iter().enumerate() {
            if index > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(bench)));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Parses the criterion shim's JSON-lines output. Unparseable lines are skipped (the file
/// may interleave with other build output in pathological setups). Repeated records for
/// the same bench id — CI runs every suite several times into one file — reduce to the
/// **minimum** mean (best-of-N): quick-mode means are noisy upwards (scheduler
/// preemption, cache interference from the previous suite), never downwards, so the
/// minimum is the robust estimate of the kernel's true cost on this machine.
pub fn parse_samples(jsonl: &str) -> Vec<BenchSample> {
    let mut by_bench: BTreeMap<String, BenchSample> = BTreeMap::new();
    for line in jsonl.lines() {
        let line = line.trim();
        if !line.starts_with('{') {
            continue;
        }
        let (Some(bench), Some(mean_ns)) = (
            extract_string(line, "bench"),
            extract_number(line, "mean_ns"),
        ) else {
            continue;
        };
        let iters = extract_number(line, "iters").unwrap_or(0.0) as u64;
        let sample = BenchSample {
            bench: bench.clone(),
            mean_ns,
            iters,
        };
        by_bench
            .entry(bench)
            .and_modify(|best| {
                if mean_ns < best.mean_ns {
                    *best = sample.clone();
                }
            })
            .or_insert(sample);
    }
    by_bench.into_values().collect()
}

/// Serializes a baseline into the checked-in JSON format.
pub fn format_baseline(baseline: &Baseline) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"calibration_ns\": {:.1},\n  \"benches\": {{\n",
        baseline.calibration_ns
    ));
    for (index, (bench, score)) in baseline.scores.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {:.6}{}\n",
            json_escape(bench),
            score,
            if index + 1 < baseline.scores.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Parses the checked-in baseline format produced by [`format_baseline`].
pub fn parse_baseline(json: &str) -> Result<Baseline, String> {
    let calibration_ns = extract_number(json, "calibration_ns")
        .ok_or_else(|| "baseline is missing \"calibration_ns\"".to_string())?;
    let benches_start = json
        .find("\"benches\"")
        .ok_or_else(|| "baseline is missing \"benches\"".to_string())?;
    let object_start = json[benches_start..]
        .find('{')
        .map(|offset| benches_start + offset)
        .ok_or_else(|| "baseline \"benches\" is not an object".to_string())?;
    let object_end = json[object_start..]
        .find('}')
        .map(|offset| object_start + offset)
        .ok_or_else(|| "baseline \"benches\" object is unterminated".to_string())?;
    let mut scores = BTreeMap::new();
    for entry in json[object_start + 1..object_end].split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .rsplit_once(':')
            .ok_or_else(|| format!("malformed baseline entry: {entry}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("malformed baseline score in: {entry}"))?;
        scores.insert(key, value);
    }
    Ok(Baseline {
        calibration_ns,
        scores,
    })
}

/// Builds a baseline from a run's samples and its calibration measurement. Calibration
/// rows ([`CALIBRATION_BENCH`]) are the normalizer, not a kernel — they never enter the
/// baseline.
pub fn baseline_from_samples(samples: &[BenchSample], calibration_ns: f64) -> Baseline {
    Baseline {
        calibration_ns,
        scores: samples
            .iter()
            .filter(|s| s.bench != CALIBRATION_BENCH)
            .map(|s| (s.bench.clone(), s.mean_ns / calibration_ns))
            .collect(),
    }
}

/// Compares a run against the baseline: a kernel regresses when its normalized score
/// exceeds the baseline score by more than `threshold` (fractional). Calibration rows
/// ([`CALIBRATION_BENCH`]) are never scored — they are the unit scores are expressed in.
pub fn compare(
    samples: &[BenchSample],
    baseline: &Baseline,
    calibration_ns: f64,
    threshold: f64,
) -> Report {
    let mut rows: Vec<ReportRow> = samples
        .iter()
        .filter(|s| s.bench != CALIBRATION_BENCH)
        .map(|sample| {
            let score = sample.mean_ns / calibration_ns;
            match baseline.scores.get(&sample.bench) {
                Some(&baseline_score) => {
                    let ratio = score / baseline_score;
                    ReportRow {
                        bench: sample.bench.clone(),
                        mean_ns: sample.mean_ns,
                        score,
                        baseline_score: Some(baseline_score),
                        ratio: Some(ratio),
                        status: if ratio > 1.0 + threshold {
                            Status::Regressed
                        } else {
                            Status::Ok
                        },
                    }
                }
                None => ReportRow {
                    bench: sample.bench.clone(),
                    mean_ns: sample.mean_ns,
                    score,
                    baseline_score: None,
                    ratio: None,
                    status: Status::New,
                },
            }
        })
        .collect();
    rows.sort_by(|a, b| a.bench.cmp(&b.bench));
    let measured: std::collections::BTreeSet<&str> =
        samples.iter().map(|s| s.bench.as_str()).collect();
    let missing = baseline
        .scores
        .keys()
        .filter(|k| !measured.contains(k.as_str()))
        .cloned()
        .collect();
    Report {
        calibration_ns,
        threshold,
        rows,
        missing,
    }
}

/// The best calibration measurement embedded in a run's samples: the minimum
/// [`CALIBRATION_BENCH`] mean across however many interleaved sweeps the input holds.
/// `None` when the run carried no calibration rows (pre-refinement input files).
pub fn calibration_from_samples(samples: &[BenchSample]) -> Option<f64> {
    samples
        .iter()
        .filter(|s| s.bench == CALIBRATION_BENCH && s.mean_ns > 0.0)
        .map(|s| s.mean_ns)
        .fold(None, |best: Option<f64>, mean| {
            Some(best.map_or(mean, |b| b.min(mean)))
        })
}

/// One pass of the calibration kernel: a fixed, deterministic workload whose operation mix
/// mirrors the benched kernels — `BTreeMap` entry/push churn over 512 keys (ordered-map
/// walks plus allocator traffic from the growing/drained buckets), a mutex hand-off every
/// 7th operation (the delivery plane's and DAG executor's lock cadence), and splitmix64
/// mixing between them. Returns the accumulated checksum so callers (and `black_box`) keep
/// the work observable.
///
/// This is a **deliberate private workload**, not a reuse of any core-crate code path:
/// every checked-in baseline score is expressed in units of this exact pass, so the kernel
/// must never change without refreshing `bench_baseline.json` in the same commit.
pub fn calibration_pass() -> u64 {
    const OPS: u64 = 1 << 16;
    const KEYS: u64 = 512;
    const BUCKET_DRAIN_LEN: usize = 32;
    let mut map: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    let shared = Mutex::new(0u64);
    let mut acc = 0u64;
    for i in 0..OPS {
        let mixed = calibration_mix(i ^ acc);
        let bucket = map.entry(mixed % KEYS).or_default();
        bucket.push(mixed);
        if bucket.len() >= BUCKET_DRAIN_LEN {
            acc = acc.wrapping_add(bucket.drain(..).fold(0u64, u64::wrapping_add));
        }
        if i % 7 == 0 {
            let mut guard = shared.lock();
            *guard = guard.wrapping_add(mixed);
            acc ^= *guard;
        }
    }
    for bucket in map.values() {
        acc = acc.wrapping_add(bucket.iter().fold(0u64, |sum, &v| sum.wrapping_add(v)));
    }
    let locked = *shared.lock();
    acc.wrapping_add(locked)
}

/// Measures the calibration kernel in-process: best (minimum) of three
/// [`calibration_pass`] runs so scheduler noise biases towards the machine's true speed.
/// The gate prefers the interleaved `calibration/mix` rows from the criterion run itself
/// ([`calibration_from_samples`]); this is the fallback for inputs recorded without them.
pub fn measure_calibration_ns() -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        std::hint::black_box(calibration_pass());
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best
}

/// The splitmix64 finalizer mixing the calibration kernel's key stream: fixed,
/// platform-independent integer work between the allocator/lock operations.
const fn calibration_mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Extracts a `"key": "string"` field from a flat JSON object.
fn extract_string(json: &str, key: &str) -> Option<String> {
    let value = field_value(json, key)?;
    let value = value.trim();
    if !value.starts_with('"') {
        return None;
    }
    let inner = &value[1..];
    let end = inner.find('"')?;
    Some(inner[..end].to_string())
}

/// Extracts a `"key": number` field from a flat JSON object.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let value = field_value(json, key)?;
    let numeric: String = value
        .trim()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    numeric.parse().ok()
}

/// The raw text following `"key":` (up to the end of the input; callers trim to the value
/// themselves).
fn field_value<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let key_start = json.find(&needle)?;
    let rest = &json[key_start + needle.len()..];
    let colon = rest.find(':')?;
    Some(&rest[colon + 1..])
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(bench: &str, mean_ns: f64) -> BenchSample {
        BenchSample {
            bench: bench.to_string(),
            mean_ns,
            iters: 10,
        }
    }

    #[test]
    fn parses_shim_json_lines_keeping_the_best_record_per_bench() {
        let jsonl = "\
noise that is not json\n\
{\"bench\":\"rac_engine_scaling/1\",\"mean_ns\":1234.5,\"iters\":42}\n\
{\"bench\":\"delivery_scaling/4\",\"mean_ns\":99.0,\"iters\":7}\n\
{\"bench\":\"rac_engine_scaling/1\",\"mean_ns\":1000.0,\"iters\":50}\n\
{\"bench\":\"rac_engine_scaling/1\",\"mean_ns\":1100.0,\"iters\":48}\n";
        let samples = parse_samples(jsonl);
        assert_eq!(samples.len(), 2);
        // Best-of-N: the minimum mean wins, regardless of record order.
        let engine = samples
            .iter()
            .find(|s| s.bench == "rac_engine_scaling/1")
            .unwrap();
        assert_eq!(engine.mean_ns, 1000.0);
        assert_eq!(engine.iters, 50);
    }

    #[test]
    fn baseline_roundtrips_through_its_own_format() {
        let baseline =
            baseline_from_samples(&[sample("a/1", 500.0), sample("b/2", 2_000.0)], 1_000.0);
        assert_eq!(baseline.scores["a/1"], 0.5);
        let parsed = parse_baseline(&format_baseline(&baseline)).unwrap();
        assert_eq!(parsed.calibration_ns, baseline.calibration_ns);
        assert_eq!(parsed.scores.len(), 2);
        assert!((parsed.scores["a/1"] - 0.5).abs() < 1e-9);
        assert!((parsed.scores["b/2"] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parse_baseline_rejects_garbage() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("{\"calibration_ns\": 1.0}").is_err());
        assert!(parse_baseline("{\"calibration_ns\": 1.0, \"benches\": {\"a\": x}}").is_err());
    }

    #[test]
    fn comparison_flags_regressions_over_threshold_only() {
        let baseline = baseline_from_samples(
            &[
                sample("a/1", 1_000.0),
                sample("b/1", 1_000.0),
                sample("gone/1", 1_000.0),
            ],
            1_000.0,
        );
        // Same machine speed (calibration 1000): a/1 is 20% slower (ok at 25%), b/1 is
        // 30% slower (regressed), c/1 is new.
        let run = [
            sample("a/1", 1_200.0),
            sample("b/1", 1_300.0),
            sample("c/1", 50.0),
        ];
        let report = compare(&run, &baseline, 1_000.0, 0.25);
        assert!(report.regressed());
        let status: BTreeMap<&str, Status> = report
            .rows
            .iter()
            .map(|r| (r.bench.as_str(), r.status))
            .collect();
        assert_eq!(status["a/1"], Status::Ok);
        assert_eq!(status["b/1"], Status::Regressed);
        assert_eq!(status["c/1"], Status::New);
        assert_eq!(report.missing, vec!["gone/1".to_string()]);
        // The artifact serializes without panicking and mentions the verdict.
        let json = report.to_json();
        assert!(json.contains("\"regressed\": true"));
        assert!(json.contains("\"status\": \"regressed\""));
        assert!(json.contains("\"missing\": [\"gone/1\"]"));
    }

    #[test]
    fn normalization_cancels_machine_speed() {
        let baseline = baseline_from_samples(&[sample("a/1", 1_000.0)], 1_000.0);
        // A machine 3x slower: calibration and the kernel both take 3x as long — the
        // score matches the baseline exactly, no false regression.
        let run = [sample("a/1", 3_000.0)];
        let report = compare(&run, &baseline, 3_000.0, 0.25);
        assert!(!report.regressed());
        assert!((report.rows[0].ratio.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_is_positive_and_repeatable_within_bounds() {
        let a = measure_calibration_ns();
        assert!(a > 0.0);
        // A second measurement lands within an order of magnitude (very loose: CI boxes
        // are noisy; the min-of-3 keeps this stable in practice).
        let b = measure_calibration_ns();
        assert!(a / b < 10.0 && b / a < 10.0);
    }

    #[test]
    fn calibration_pass_is_deterministic() {
        // The checksum pins the exact operation sequence: any change to the kernel (key
        // count, drain length, lock cadence) changes the unit every baseline score is
        // expressed in and must come with a baseline refresh.
        assert_eq!(calibration_pass(), calibration_pass());
    }

    #[test]
    fn calibration_rows_normalize_but_are_never_scored() {
        let run = [
            sample(CALIBRATION_BENCH, 500.0),
            sample("a/1", 1_000.0),
            sample(CALIBRATION_BENCH, 400.0),
        ];
        // The embedded calibration is the best (minimum) interleaved measurement.
        assert_eq!(calibration_from_samples(&run), Some(400.0));
        assert_eq!(calibration_from_samples(&[sample("a/1", 1.0)]), None);
        // Neither baselines nor comparison reports carry a calibration row.
        let baseline = baseline_from_samples(&run, 400.0);
        assert_eq!(baseline.scores.len(), 1);
        assert!((baseline.scores["a/1"] - 2.5).abs() < 1e-9);
        let report = compare(&run, &baseline, 400.0, 0.25);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].bench, "a/1");
        assert!(!report.regressed());
        assert!(report.missing.is_empty());
    }
}
