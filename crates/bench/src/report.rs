//! Small formatting helpers shared by the figure binaries.

use std::time::Duration;

/// Formats a duration in the unit used by the paper's Fig. 6 (milliseconds, log axis), with
/// enough precision for sub-microsecond values.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64() * 1e3)
}

/// Formats a throughput value in PCBs per second.
pub fn fmt_pcbs_per_sec(pcbs: u64, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    format!("{:.0}", pcbs as f64 / secs)
}

/// Prints a table header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

/// The worker-count ladder of the scaling tables: the preset powers of two up to and
/// including `max`, with `max` itself appended when it is not a preset value — so the
/// user-requested worker count is always one of the measured points.
pub fn worker_ladder(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&w| w <= max)
        .collect();
    if !counts.contains(&max) {
        counts.push(max);
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millisecond_formatting() {
        assert_eq!(fmt_ms(Duration::from_millis(2)), "2.000000");
        assert_eq!(fmt_ms(Duration::from_micros(5)), "0.005000");
    }

    #[test]
    fn worker_ladder_covers_presets_and_requested_max() {
        assert_eq!(worker_ladder(1), vec![1]);
        assert_eq!(worker_ladder(4), vec![1, 2, 4]);
        assert_eq!(worker_ladder(6), vec![1, 2, 4, 6]);
        assert_eq!(worker_ladder(32), vec![1, 2, 4, 8, 16, 32]);
        // Degenerate input still measures the sequential baseline.
        assert_eq!(worker_ladder(0), vec![1]);
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_pcbs_per_sec(1000, Duration::from_secs(2)), "500");
        // Zero elapsed time does not divide by zero.
        assert!(!fmt_pcbs_per_sec(10, Duration::ZERO).is_empty());
    }
}
