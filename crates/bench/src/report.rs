//! Small formatting helpers shared by the figure binaries.

use std::time::Duration;

/// Formats a duration in the unit used by the paper's Fig. 6 (milliseconds, log axis), with
/// enough precision for sub-microsecond values.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64() * 1e3)
}

/// Formats a throughput value in PCBs per second.
pub fn fmt_pcbs_per_sec(pcbs: u64, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    format!("{:.0}", pcbs as f64 / secs)
}

/// Prints a table header row.
pub fn header(columns: &[&str]) {
    println!("{}", columns.join("\t"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn millisecond_formatting() {
        assert_eq!(fmt_ms(Duration::from_millis(2)), "2.000000");
        assert_eq!(fmt_ms(Duration::from_micros(5)), "0.005000");
    }

    #[test]
    fn throughput_formatting() {
        assert_eq!(fmt_pcbs_per_sec(1000, Duration::from_secs(2)), "500");
        // Zero elapsed time does not divide by zero.
        assert!(!fmt_pcbs_per_sec(10, Duration::ZERO).is_empty());
    }
}
