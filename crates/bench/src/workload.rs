//! The |Φ| workload of §VII-B: synthetic candidate PCB sets and the measurement kernels for
//! the Fig. 6 / Fig. 7 experiments.

use irec_algorithms::incremental::IncrementalStats;
use irec_algorithms::score::KShortestPaths;
use irec_algorithms::{AlgorithmContext, Candidate, CandidateBatch, RoutingAlgorithm};
use irec_core::beacon_db::{BatchKey, StoredBeacon};
use irec_core::PropagationPolicy;
use irec_core::{
    execute_racs, NodeConfig, Rac, RacConfig, RacTiming, ShardedIngressDb, SharedAlgorithmStore,
};
use irec_crypto::{KeyRegistry, Signer};
use irec_metrics::RegisteredPath;
use irec_pcb::{Pcb, PcbExtensions, StaticInfo};
use irec_sim::{
    ChurnConfig, ChurnEngine, ChurnStep, DeliveryStats, IncrementalSelectionMode, PdCampaign,
    RoundScheduler, SchedulerStats, Simulation, SimulationConfig,
};
use irec_topology::{AsNode, GeneratorConfig, Interface, Tier, TopologyGenerator};
use irec_types::{
    AlgorithmId, AsId, Bandwidth, GeoCoord, IfId, InterfaceGroupId, Latency, LinkId, Result,
    SimDuration, SimTime,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The origin AS all synthetic candidates come from.
pub const WORKLOAD_ORIGIN: AsId = AsId(1);
/// The AS running the benchmarked RAC.
pub const WORKLOAD_LOCAL_AS: AsId = AsId(900);

/// A single latency measurement row of the Fig. 6 series.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Candidate-set size |Φ|.
    pub phi: usize,
    /// Sandbox/algorithm instantiation latency ("WASM setup").
    pub setup: Duration,
    /// Candidate marshalling latency ("gRPC calls").
    pub marshal: Duration,
    /// Algorithm execution latency ("WASM module execution").
    pub execute: Duration,
    /// Latency of the legacy control service on the same candidate set.
    pub legacy: Duration,
}

impl Measurement {
    /// Total IREC processing latency (setup + marshal + execute).
    pub fn irec_total(&self) -> Duration {
        self.setup + self.marshal + self.execute
    }

    /// The IREC/legacy latency ratio (the paper reports ~426× at |Φ| = 64).
    pub fn ratio(&self) -> f64 {
        let legacy = self.legacy.as_nanos().max(1) as f64;
        self.irec_total().as_nanos() as f64 / legacy
    }
}

/// Generates a synthetic candidate set of size `phi`: beacons from one origin with 2–6 AS
/// hops and randomized latency/bandwidth metadata, all received by the benchmarked AS.
pub fn candidate_set(phi: usize, seed: u64) -> Vec<Arc<StoredBeacon>> {
    candidate_set_for(WORKLOAD_ORIGIN, phi, seed)
}

/// Like [`candidate_set`], for an arbitrary origin AS — the multi-batch engine workload
/// needs candidate batches from several distinct origins.
pub fn candidate_set_for(origin: AsId, phi: usize, seed: u64) -> Vec<Arc<StoredBeacon>> {
    let registry = KeyRegistry::with_ases(7, 64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(phi);
    for i in 0..phi {
        let hops = rng.gen_range(2..=6usize);
        let mut pcb = Pcb::originate(
            origin,
            i as u64,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none(),
        );
        for h in 0..hops {
            let asn = if h == 0 {
                origin
            } else {
                AsId(1 + h as u64 * 3 + (i as u64 % 3))
            };
            let signer = Signer::new(asn, registry.clone());
            let info = StaticInfo {
                link_latency: Latency::from_micros(rng.gen_range(1_000..40_000)),
                link_bandwidth: Bandwidth::from_mbps(rng.gen_range(10..10_000)),
                intra_latency: Latency::from_micros(rng.gen_range(0..2_000)),
                egress_location: Some(GeoCoord::new(
                    rng.gen_range(-60.0..60.0),
                    rng.gen_range(-180.0..180.0),
                )),
            };
            let ingress = if h == 0 { IfId::NONE } else { IfId(1) };
            let egress = IfId(2 + (i % 4) as u32);
            pcb.extend(ingress, egress, info, &signer)
                .expect("synthetic beacon extension is valid");
        }
        out.push(Arc::new(StoredBeacon {
            pcb,
            ingress: IfId(1 + (i % 2) as u32),
            received_at: SimTime::ZERO,
        }));
    }
    out
}

/// The local AS the benchmarked RAC runs in: a handful of interfaces with distinct locations
/// so extended-path optimization has something to chew on.
pub fn workload_local_as() -> AsNode {
    let mut node = AsNode::new(WORKLOAD_LOCAL_AS, Tier::Tier2);
    let locations = [(47.37, 8.54), (50.11, 8.68), (40.71, -74.0), (1.35, 103.82)];
    for (i, (lat, lon)) in locations.iter().enumerate() {
        let ifid = IfId(i as u32 + 1);
        node.interfaces.insert(
            ifid,
            Interface {
                id: ifid,
                owner: node.id,
                location: GeoCoord::new(*lat, *lon),
                link: LinkId(i as u64),
            },
        );
    }
    node
}

/// Builds the on-demand RAC used by the Fig. 6 / Fig. 7 measurements: it runs the legacy
/// SCION selection (20 shortest paths), shipped as an IRVM module and fetched/verified like
/// any on-demand algorithm — "our RAC implementation, configured as an on-demand RAC (i.e.,
/// the one with higher overhead)".
pub fn on_demand_rac() -> (
    Rac,
    Vec<Arc<StoredBeacon>>, /* template tagging */
    SharedAlgorithmStore,
) {
    let store = SharedAlgorithmStore::new();
    let program = irec_irvm::programs::shortest_path(20);
    let reference = store.publish(WORKLOAD_ORIGIN, AlgorithmId(1), program.to_module_bytes());
    let rac = Rac::new_on_demand(
        RacConfig::on_demand_rac("bench-od"),
        std::sync::Arc::new(store.clone()),
    )
    .expect("on-demand RAC config is valid");
    // Tag template: candidates must carry the algorithm reference so the on-demand RAC
    // processes them. We return an empty vec here; `tag_candidates` applies the reference.
    let _ = reference;
    (rac, Vec::new(), store)
}

/// Tags a candidate set with the on-demand algorithm reference so an on-demand RAC processes
/// it (origins embed the reference when originating). Signatures are recomputed because the
/// extension is part of the signed header.
pub fn tag_candidates(
    candidates: &[Arc<StoredBeacon>],
    store: &SharedAlgorithmStore,
) -> Vec<Arc<StoredBeacon>> {
    let registry = KeyRegistry::with_ases(7, 64);
    let program = irec_irvm::programs::shortest_path(20);
    let reference = store.publish(WORKLOAD_ORIGIN, AlgorithmId(1), program.to_module_bytes());
    candidates
        .iter()
        .map(|stored| {
            let mut pcb = Pcb::originate(
                stored.pcb.origin,
                stored.pcb.sequence,
                stored.pcb.created_at,
                stored.pcb.expires_at,
                PcbExtensions::none().with_algorithm(reference),
            );
            for entry in &stored.pcb.entries {
                let signer = Signer::new(entry.hop.asn, registry.clone());
                pcb.extend(
                    entry.hop.ingress,
                    entry.hop.egress,
                    entry.static_info,
                    &signer,
                )
                .expect("re-tagging preserves validity");
            }
            Arc::new(StoredBeacon {
                pcb,
                ingress: stored.ingress,
                received_at: stored.received_at,
            })
        })
        .collect()
}

/// Measures one IREC RAC processing pass over `candidates` (setup + marshal + execute).
/// The candidate set is shared, not consumed — repeated passes reuse the same snapshot.
pub fn rac_processing_latency(
    rac: &Rac,
    candidates: &[Arc<StoredBeacon>],
    local_as: &AsNode,
) -> Result<RacTiming> {
    let key = BatchKey {
        origin: WORKLOAD_ORIGIN,
        group: InterfaceGroupId::DEFAULT,
        target: None,
    };
    let egress: Vec<IfId> = local_as.interfaces.keys().copied().collect();
    let (_outputs, timing) = rac.process_candidates(&key, candidates, local_as, &egress)?;
    Ok(timing)
}

/// Measures the legacy control service on the same candidate set: the native 20-shortest
/// selection with no sandbox and no marshalling boundary.
pub fn legacy_selection_latency(candidates: &[Arc<StoredBeacon>], local_as: &AsNode) -> Duration {
    let algorithm = KShortestPaths::legacy_scion();
    let batch = CandidateBatch {
        origin: WORKLOAD_ORIGIN,
        group: InterfaceGroupId::DEFAULT,
        target: None,
        candidates: candidates
            .iter()
            .map(|b| Candidate::new(b.pcb.clone(), b.ingress))
            .collect(),
    };
    let egress: Vec<IfId> = local_as.interfaces.keys().copied().collect();
    let ctx = AlgorithmContext::new(local_as, egress, 20);
    let start = std::time::Instant::now();
    let _ = algorithm
        .select(&batch, &ctx)
        .expect("legacy selection succeeds");
    start.elapsed()
}

/// A multi-batch, multi-RAC workload for the parallel execution engine: `origins` candidate
/// batches of `phi` beacons each in one ingress database of `ingress_shards` shards
/// (`0` = single shard), processed by four static RACs (1SP, 5SP, DO, widest) — the ≥4-RAC
/// workload the engine-scaling measurements run on.
pub fn engine_workload(
    phi: usize,
    origins: u64,
    seed: u64,
    ingress_shards: usize,
) -> (Vec<Rac>, ShardedIngressDb) {
    let racs: Vec<Rac> = ["1SP", "5SP", "DO", "widest"]
        .iter()
        .map(|name| Rac::new_static(RacConfig::static_rac(*name, *name)).expect("catalog name"))
        .collect();
    let db = ShardedIngressDb::new(ingress_shards.max(1));
    for index in 0..origins.max(1) {
        let origin = AsId(WORKLOAD_ORIGIN.value() + index * 100);
        for stored in candidate_set_for(origin, phi, seed.wrapping_add(index)) {
            db.insert(stored.pcb.clone(), stored.ingress, stored.received_at);
        }
    }
    (racs, db)
}

/// One insert + evict pass of the ingress-sharding workload: inserts every beacon into a
/// fresh `shards`-shard database from `workers` scoped threads (each thread owns the
/// origins that hash to its claimed shards, so per-shard insertion order stays
/// deterministic), then runs one parallel eviction sweep at `evict_at`. Returns
/// `(stored, evicted)` — both independent of the shard and worker counts, which the
/// `ingress_sharding` criterion bench and the sharding stress test rely on.
pub fn sharded_ingress_pass(
    beacons: &[Arc<StoredBeacon>],
    shards: usize,
    workers: usize,
    evict_at: SimTime,
) -> (usize, usize) {
    let db = ShardedIngressDb::new(shards);
    let workers = workers.clamp(1, db.shard_count());
    // Partition once, O(beacons): rescanning the whole slice per shard would add an
    // O(shards × beacons) overhead term that grows with the very shard count the
    // `ingress_sharding` bench is meant to show winning.
    let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); db.shard_count()];
    for (index, stored) in beacons.iter().enumerate() {
        by_shard[db.shard_of(stored.pcb.origin)].push(index);
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let shard = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(indices) = by_shard.get(shard) else {
                    break;
                };
                for &index in indices {
                    let stored = &beacons[index];
                    db.insert_in_shard(
                        shard,
                        stored.pcb.clone(),
                        stored.ingress,
                        stored.received_at,
                    );
                }
            });
        }
    });
    let stored = db.len();
    let evicted = db.evict_expired_parallel(evict_at, SimDuration::ZERO, workers);
    (stored, evicted)
}

/// One engine-scaling measurement point: the **mean per-pass** setup/marshal/execute
/// breakdown and the mean per-pass wall-clock time, averaged over `repetitions` engine
/// passes with `workers` worker threads over the [`engine_workload`] (4 RACs × 4 candidate
/// batches). Both figures are per pass, so CPU-vs-wall comparisons are rep-independent.
pub fn measure_engine_point(
    phi: usize,
    workers: usize,
    repetitions: usize,
    seed: u64,
    ingress_shards: usize,
) -> (RacTiming, Duration) {
    let local_as = workload_local_as();
    let (racs, db) = engine_workload(phi, 4, seed, ingress_shards);
    let egress: Vec<IfId> = local_as.interfaces.keys().copied().collect();
    let reps = repetitions.max(1);
    let mut timing = RacTiming::default();
    let start = Instant::now();
    for _ in 0..reps {
        let (_, pass) = execute_racs(&racs, &db, &local_as, &egress, SimTime::ZERO, workers)
            .expect("engine workload processes cleanly");
        timing.accumulate(&pass);
    }
    let mean = RacTiming {
        setup: timing.setup / reps as u32,
        marshal: timing.marshal / reps as u32,
        execute: timing.execute / reps as u32,
        candidates: timing.candidates / reps,
    };
    (mean, start.elapsed() / reps as u32)
}

/// Builds the delivery-plane workload: a generated-topology simulation with the paper's
/// 5SP deployment and the given delivery-plane worker count. Shared by the fig6/fig7
/// delivery-scaling sections and the `delivery_scaling` criterion bench.
pub fn delivery_workload(
    ases: usize,
    delivery_workers: usize,
    ingress_shards: usize,
    seed: u64,
) -> Simulation {
    let config = GeneratorConfig {
        num_ases: ases,
        seed,
        ..Default::default()
    };
    let topology = Arc::new(TopologyGenerator::new(config).generate());
    Simulation::new(
        topology,
        SimulationConfig::default()
            .with_delivery_parallelism(delivery_workers)
            .with_ingress_shards(ingress_shards),
        move |_| NodeConfig::default().with_racs(vec![RacConfig::static_rac("5SP", "5SP")]),
    )
    .expect("delivery workload simulation setup")
}

/// One delivery-scaling measurement point: runs `rounds` beaconing rounds of the
/// [`delivery_workload`] with `delivery_workers` verify-stage workers and returns the
/// delivery accounting plus the wall-clock time of the whole run.
///
/// The counters are byte-identical across worker counts (the delivery plane's determinism
/// guarantee); only the wall-clock changes.
pub fn measure_delivery_point(
    ases: usize,
    rounds: usize,
    delivery_workers: usize,
    ingress_shards: usize,
    seed: u64,
) -> (DeliveryStats, Duration) {
    let mut sim = delivery_workload(ases, delivery_workers, ingress_shards, seed);
    let start = Instant::now();
    sim.run_rounds(rounds.max(1))
        .expect("delivery workload rounds succeed");
    (sim.delivery_stats(), start.elapsed())
}

/// The deterministic fingerprint of one round-scheduler run: registered paths, delivery
/// accounting, ingress occupancy and per-round overhead samples — everything the
/// `--round-scheduler` knob must leave byte-identical.
pub type RoundFingerprint = (Vec<RegisteredPath>, DeliveryStats, usize, Vec<u64>);

/// Builds the round-scheduler workload: a generated-topology simulation with the paper's
/// static RAC mix, running under `scheduler` with `width` workers on both the node phase
/// and the delivery plane (so the round pool width `max(parallelism,
/// delivery_parallelism)` equals `width`). Shared by the `dag_scheduler_scaling`
/// criterion bench and the DAG determinism integration tests.
pub fn round_scheduler_workload(
    ases: usize,
    scheduler: RoundScheduler,
    width: usize,
    seed: u64,
) -> Simulation {
    let config = GeneratorConfig {
        num_ases: ases,
        seed,
        ..Default::default()
    };
    let topology = Arc::new(TopologyGenerator::new(config).generate());
    Simulation::new(
        topology,
        SimulationConfig::default()
            .with_round_scheduler(scheduler)
            .with_parallelism(width)
            .with_delivery_parallelism(width),
        |_| {
            NodeConfig::default().with_racs(vec![
                RacConfig::static_rac("5SP", "5SP"),
                RacConfig::static_rac("HD", "HD"),
            ])
        },
    )
    .expect("round-scheduler workload simulation setup")
}

/// One full run of the round-scheduler workload: `rounds` beaconing rounds from a fresh
/// simulation. Returns the deterministic fingerprint plus the scheduler's timing stats —
/// the stats are deliberately *not* part of the fingerprint (busy/idle wall-clock varies
/// run to run), but their idle counter is what the `dag_scheduler_scaling` bench compares
/// across schedulers to show speculative verify overlapping the node phase.
pub fn round_scheduler_pass(
    ases: usize,
    rounds: usize,
    scheduler: RoundScheduler,
    width: usize,
    seed: u64,
) -> (RoundFingerprint, SchedulerStats) {
    let mut sim = round_scheduler_workload(ases, scheduler, width, seed);
    sim.run_rounds(rounds.max(1))
        .expect("round-scheduler workload rounds succeed");
    (
        (
            sim.registered_paths(),
            sim.delivery_stats(),
            sim.ingress_occupancy(),
            sim.overhead().samples(),
        ),
        sim.scheduler_stats(),
    )
}

/// The node config of the algorithm-catalog workload: every AS runs one static RAC
/// instantiated from a catalog name (`5YEN`, `aco:7:8`, …). Propagation is pinned to
/// `All` so the catalog algorithm — not the propagation policy — decides what gets
/// registered. Shard counts ride on the simulation config
/// ([`SimulationConfig::with_ingress_shards`]), not here.
fn algorithm_node_config(algorithm: &str) -> NodeConfig {
    NodeConfig::default()
        .with_policy(PropagationPolicy::All)
        .with_racs(vec![RacConfig::static_rac(algorithm, algorithm)])
}

/// Builds the algorithm-catalog workload: a generated-topology simulation where every AS
/// runs the named catalog algorithm, under `scheduler` with `width` workers and the given
/// per-node shard counts. Shared by the `alg_catalog_scaling` criterion bench, the
/// algorithm determinism integration tests and the `fig_alg` binary.
#[allow(clippy::too_many_arguments)]
pub fn algorithm_workload(
    algorithm: &str,
    ases: usize,
    scheduler: RoundScheduler,
    width: usize,
    ingress_shards: usize,
    path_shards: usize,
    seed: u64,
) -> Simulation {
    let config = GeneratorConfig {
        num_ases: ases,
        seed,
        ..Default::default()
    };
    let topology = Arc::new(TopologyGenerator::new(config).generate());
    let algorithm = algorithm.to_string();
    Simulation::new(
        topology,
        SimulationConfig::default()
            .with_round_scheduler(scheduler)
            .with_parallelism(width)
            .with_delivery_parallelism(width)
            .with_ingress_shards(ingress_shards)
            .with_path_shards(path_shards),
        move |_| algorithm_node_config(&algorithm),
    )
    .expect("algorithm workload simulation setup")
}

/// One full run of the algorithm-catalog workload: `rounds` beaconing rounds from a fresh
/// simulation. The fingerprint must be byte-identical across schedulers and worker/shard
/// counts for a fixed `(algorithm, ases, rounds, seed)` tuple — stochastic algorithms
/// (ACO) included, because their randomness comes from seeded per-batch streams, never
/// from execution order.
#[allow(clippy::too_many_arguments)]
pub fn algorithm_pass(
    algorithm: &str,
    ases: usize,
    rounds: usize,
    scheduler: RoundScheduler,
    width: usize,
    ingress_shards: usize,
    path_shards: usize,
    seed: u64,
) -> RoundFingerprint {
    let mut sim = algorithm_workload(
        algorithm,
        ases,
        scheduler,
        width,
        ingress_shards,
        path_shards,
        seed,
    );
    sim.run_rounds(rounds.max(1))
        .expect("algorithm workload rounds succeed");
    (
        sim.registered_paths(),
        sim.delivery_stats(),
        sim.ingress_occupancy(),
        sim.overhead().samples(),
    )
}

/// The deterministic fingerprint of one churn run: the per-step churn report plus the
/// final registered paths, delivery accounting and ingress occupancy — everything that
/// must stay byte-identical across `--round-scheduler` and every parallelism/shard knob
/// for a fixed churn config.
pub type ChurnFingerprint = (Vec<ChurnStep>, Vec<RegisteredPath>, DeliveryStats, usize);

/// The node config of the churn workload. Propagation is pinned to `All` (not the
/// generated-topology default of valley-free) so a random link-down can only sever pairs
/// *physically* — which the no-blackhole checker excuses — never policy-blackhole them;
/// shipped churn scenarios therefore converge by construction, and the genuine
/// valley-free blackhole case stays covered by the churn invariants unit tests. Shard
/// counts and the incremental-selection flag ride on the simulation config — mid-run
/// churn joins pick them up through [`Simulation::add_node`]'s knob injection.
fn churn_node_config() -> NodeConfig {
    NodeConfig::default()
        .with_policy(PropagationPolicy::All)
        .with_racs(vec![RacConfig::static_rac("5SP", "5SP")])
}

/// Builds the churn workload: a generated-topology simulation under `scheduler` with
/// `width` workers on the node phase and delivery plane plus the given per-node shard
/// counts. Shared by the `churn_round_overhead` criterion bench, the churn determinism
/// integration tests and the `fig_churn` binary.
pub fn churn_workload(
    ases: usize,
    scheduler: RoundScheduler,
    width: usize,
    ingress_shards: usize,
    path_shards: usize,
    seed: u64,
) -> Simulation {
    churn_workload_incremental(
        ases,
        scheduler,
        width,
        ingress_shards,
        path_shards,
        IncrementalSelectionMode::Off,
        seed,
    )
}

/// [`churn_workload`] with an explicit `--incremental-selection` mode — the variant the
/// incremental rows of the `churn_round_overhead` bench and the live-round determinism
/// matrix build on.
#[allow(clippy::too_many_arguments)]
pub fn churn_workload_incremental(
    ases: usize,
    scheduler: RoundScheduler,
    width: usize,
    ingress_shards: usize,
    path_shards: usize,
    incremental: IncrementalSelectionMode,
    seed: u64,
) -> Simulation {
    let config = GeneratorConfig {
        num_ases: ases,
        seed,
        ..Default::default()
    };
    let topology = Arc::new(TopologyGenerator::new(config).generate());
    Simulation::new(
        topology,
        SimulationConfig::default()
            .with_round_scheduler(scheduler)
            .with_parallelism(width)
            .with_delivery_parallelism(width)
            .with_ingress_shards(ingress_shards)
            .with_path_shards(path_shards)
            .with_incremental_selection(incremental),
        move |_| churn_node_config(),
    )
    .expect("churn workload simulation setup")
}

/// One full churn run over the [`churn_workload`]: `steps` churn steps of the seeded
/// timeline in `churn`, applied and settled by a [`ChurnEngine`]. Returns the
/// deterministic fingerprint — byte-identical across schedulers and worker/shard counts
/// for a fixed `(ases, steps, churn, seed)` tuple, which the `churn_round_overhead`
/// bench and the churn determinism proptest matrix re-assert.
#[allow(clippy::too_many_arguments)]
pub fn churn_pass(
    ases: usize,
    steps: usize,
    churn: ChurnConfig,
    scheduler: RoundScheduler,
    width: usize,
    ingress_shards: usize,
    path_shards: usize,
    seed: u64,
) -> ChurnFingerprint {
    churn_pass_incremental(
        ases,
        steps,
        churn,
        scheduler,
        width,
        ingress_shards,
        path_shards,
        IncrementalSelectionMode::Off,
        seed,
    )
    .0
}

/// [`churn_pass`] with an explicit incremental-selection mode, additionally returning the
/// accumulated [`IncrementalStats`]. The fingerprint must be byte-identical across
/// `IncrementalSelectionMode::{Off,On}` for every scheduler × worker × shard plane (the
/// tentpole guarantee); the stats quantify how much recomputation `On` skipped — all
/// zeros under `Off`.
#[allow(clippy::too_many_arguments)]
pub fn churn_pass_incremental(
    ases: usize,
    steps: usize,
    churn: ChurnConfig,
    scheduler: RoundScheduler,
    width: usize,
    ingress_shards: usize,
    path_shards: usize,
    incremental: IncrementalSelectionMode,
    seed: u64,
) -> (ChurnFingerprint, IncrementalStats) {
    let mut sim = churn_workload_incremental(
        ases,
        scheduler,
        width,
        ingress_shards,
        path_shards,
        incremental,
        seed,
    );
    let mut engine = ChurnEngine::new(churn, move |_| churn_node_config());
    let report = engine.run(&mut sim, steps).expect("churn pass converges");
    (
        (
            report.steps,
            sim.registered_paths(),
            sim.delivery_stats(),
            sim.ingress_occupancy(),
        ),
        sim.incremental_stats(),
    )
}

/// Builds the PD campaign workload: a generated-topology simulation with the paper's
/// HD + on-demand deployment, warmed for `rounds` beaconing rounds — the base every
/// campaign pass snapshots per `(origin, target)` pair. Shared by the
/// `pd_campaign_scaling` criterion bench and the CI bench-regression harness.
pub fn pd_campaign_workload(ases: usize, rounds: usize, seed: u64) -> Simulation {
    let config = GeneratorConfig {
        num_ases: ases,
        seed,
        ..Default::default()
    };
    let topology = Arc::new(TopologyGenerator::new(config).generate());
    let mut sim = Simulation::new(topology, SimulationConfig::default(), |_| {
        NodeConfig::default().with_racs(vec![
            RacConfig::static_rac("HD", "HD"),
            RacConfig::on_demand_rac("on-demand"),
        ])
    })
    .expect("PD campaign workload simulation setup");
    sim.run_rounds(rounds.max(1))
        .expect("PD campaign warm-up rounds succeed");
    sim
}

/// Deterministically samples up to `count` `(origin, target)` pairs from the workload's
/// topology, through the same seeded recipe as the Fig. 8 campaign
/// ([`crate::campaign::sample_pd_pairs`]) with extra draw attempts so small topologies
/// still fill the requested count.
pub fn pd_campaign_pairs(base: &Simulation, count: usize, seed: u64) -> Vec<(AsId, AsId)> {
    let count = count.max(1);
    let mut pairs = crate::campaign::sample_pd_pairs(&base.topology().as_ids(), count * 4, seed);
    pairs.truncate(count);
    pairs
}

/// The deterministic fingerprint of one campaign pair: origin, target, discovered-path
/// count, iteration count, empty-iteration count, total pull-beacon overhead.
pub type PdPairFingerprint = (AsId, AsId, usize, usize, usize, u64);

/// One PD campaign pass over `pairs` with `workers` campaign workers: every pair runs its
/// pull workflow on a fresh snapshot of `base`. Returns the per-pair fingerprints in pair
/// order — byte-identical for every worker count (the campaign determinism guarantee the
/// `pd_campaign_scaling` bench re-asserts each iteration).
pub fn pd_campaign_pass(
    base: &Simulation,
    pairs: &[(AsId, AsId)],
    workers: usize,
) -> Vec<PdPairFingerprint> {
    let results = PdCampaign::new(pairs.to_vec(), 5)
        .with_rounds_per_iteration(2)
        .with_parallelism(workers)
        .run(base)
        .expect("campaign pass succeeds");
    results
        .iter()
        .map(|pair| {
            (
                pair.origin,
                pair.target,
                pair.result.paths.len(),
                pair.result.iterations,
                pair.result.empty_iterations,
                pair.pull_overhead.iter().sum(),
            )
        })
        .collect()
}

/// One per-pair snapshot-setup operation of the PD campaign over `base`: the
/// copy-on-write path ([`Simulation::snapshot_reachable_from`], the campaign default)
/// when `deep` is false, or the deep-`Clone` reference implementation when `deep` is
/// true. Returns the constructed simulation so callers (and `black_box`) keep the setup
/// work observable. Shared by the `pd_snapshot_cost` criterion bench and the COW speedup
/// regression test.
pub fn pd_snapshot_setup(base: &Simulation, origin: AsId, deep: bool) -> Simulation {
    if deep {
        base.clone()
    } else {
        base.snapshot_reachable_from(origin).into_simulation()
    }
}

/// Best-of-`reps` wall-clock of one [`pd_snapshot_setup`] operation. Teardown (dropping
/// the snapshot) is excluded from the timed window, so the figure is the pure per-pair
/// setup cost a campaign pays before its first pull iteration.
pub fn measure_snapshot_setup(
    base: &Simulation,
    origin: AsId,
    deep: bool,
    reps: usize,
) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let sim = std::hint::black_box(pd_snapshot_setup(base, origin, deep));
        best = best.min(start.elapsed());
        drop(sim);
    }
    best
}

/// Runs the complete Fig. 6 measurement for one |Φ| value, averaging over `repetitions`.
pub fn measure_phi(phi: usize, repetitions: usize, seed: u64) -> Measurement {
    let local_as = workload_local_as();
    let (rac, _, store) = on_demand_rac();
    let base = candidate_set(phi, seed);
    let tagged = tag_candidates(&base, &store);

    let mut total = Measurement {
        phi,
        ..Measurement::default()
    };
    for _ in 0..repetitions.max(1) {
        let timing = rac_processing_latency(&rac, &tagged, &local_as)
            .expect("benchmark RAC processing succeeds");
        total.setup += timing.setup;
        total.marshal += timing.marshal;
        total.execute += timing.execute;
        total.legacy += legacy_selection_latency(&base, &local_as);
    }
    let n = repetitions.max(1) as u32;
    Measurement {
        phi,
        setup: total.setup / n,
        marshal: total.marshal / n,
        execute: total.execute / n,
        legacy: total.legacy / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_has_requested_size_and_valid_beacons() {
        let set = candidate_set(32, 1);
        assert_eq!(set.len(), 32);
        for beacon in &set {
            assert!(beacon.pcb.len() >= 2);
            assert!(beacon.pcb.path_metrics().latency > Latency::ZERO);
        }
        // Deterministic for the same seed.
        let again = candidate_set(32, 1);
        assert_eq!(again[0].pcb.digest(), set[0].pcb.digest());
    }

    #[test]
    fn rac_and_legacy_kernels_produce_timings() {
        let m = measure_phi(16, 1, 3);
        assert_eq!(m.phi, 16);
        assert!(m.execute > Duration::ZERO);
        assert!(m.marshal > Duration::ZERO);
        assert!(m.irec_total() >= m.execute);
        assert!(m.ratio() > 0.0);
    }

    #[test]
    fn engine_workload_scales_and_stays_deterministic() {
        let (racs, db) = engine_workload(8, 4, 11, 4);
        assert_eq!(racs.len(), 4);
        assert_eq!(db.batch_keys().len(), 4);
        let (timing_seq, _) = measure_engine_point(8, 1, 1, 11, 1);
        let (timing_par, _) = measure_engine_point(8, 4, 1, 11, 4);
        // 4 RACs x 4 batches x 8 candidates, identical under any worker count.
        assert_eq!(timing_seq.candidates, 4 * 4 * 8);
        assert_eq!(timing_par.candidates, timing_seq.candidates);
    }

    #[test]
    fn delivery_point_counters_are_worker_independent() {
        let (sequential, _) = measure_delivery_point(8, 2, 1, 1, 5);
        assert!(sequential.delivered > 0);
        let (parallel, _) = measure_delivery_point(8, 2, 4, 4, 5);
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn sharded_ingress_pass_is_shard_and_worker_invariant() {
        // Beacons from several origins so the passes actually cross shard boundaries.
        let beacons: Vec<_> = (0..6u64)
            .flat_map(|index| {
                // Origins spaced like `engine_workload` so the synthetic hop ASes of one
                // origin never collide with another origin (which would be a loop).
                candidate_set_for(AsId(1 + index * 100), 4, 9 + index)
            })
            .collect();
        let far = SimTime::ZERO + SimDuration::from_hours(12);
        let (stored_ref, evicted_ref) = sharded_ingress_pass(&beacons, 1, 1, far);
        assert_eq!(stored_ref, 24);
        assert_eq!(evicted_ref, 24, "every synthetic beacon expires within 6h");
        for (shards, workers) in [(2, 2), (4, 4), (7, 3), (16, 8)] {
            let (stored, evicted) = sharded_ingress_pass(&beacons, shards, workers, far);
            assert_eq!((stored, evicted), (stored_ref, evicted_ref));
        }
    }

    #[test]
    fn round_scheduler_pass_is_scheduler_and_width_invariant() {
        let (reference, _) = round_scheduler_pass(8, 2, RoundScheduler::Barrier, 1, 5);
        assert!(reference.1.delivered > 0);
        assert!(!reference.0.is_empty());
        for (scheduler, width) in [
            (RoundScheduler::Barrier, 4),
            (RoundScheduler::Dag, 1),
            (RoundScheduler::Dag, 4),
        ] {
            let (fingerprint, stats) = round_scheduler_pass(8, 2, scheduler, width, 5);
            assert_eq!(
                fingerprint, reference,
                "diverged under {scheduler} x{width}"
            );
            assert_eq!(stats.rounds, 2);
            if scheduler == RoundScheduler::Dag {
                assert!(stats.items > 0, "DAG runs must account executed items");
            }
        }
    }

    #[test]
    fn churn_pass_is_scheduler_and_width_invariant() {
        let churn = ChurnConfig::default()
            .with_rate(1.0)
            .with_seed(13)
            .with_warmup_rounds(3);
        let (steps, paths, stats, occupancy) =
            churn_pass(10, 3, churn, RoundScheduler::Barrier, 1, 1, 1, 5);
        assert_eq!(steps.len(), 3);
        assert!(
            steps.iter().any(|step| !step.deltas.is_empty()),
            "a rate-1 timeline must apply deltas"
        );
        assert!(!paths.is_empty());
        for (scheduler, width, ingress, path) in [
            (RoundScheduler::Barrier, 4, 4, 7),
            (RoundScheduler::Dag, 1, 7, 4),
            (RoundScheduler::Dag, 4, 4, 4),
        ] {
            let fingerprint = churn_pass(10, 3, churn, scheduler, width, ingress, path, 5);
            assert_eq!(
                fingerprint,
                (steps.clone(), paths.clone(), stats, occupancy),
                "diverged under {scheduler} x{width} ingress={ingress} path={path}"
            );
        }
    }

    #[test]
    fn churn_pass_incremental_matches_reference_and_reuses_selections() {
        let churn = ChurnConfig::default()
            .with_rate(1.0)
            .with_seed(13)
            .with_warmup_rounds(3);
        let reference = churn_pass(10, 3, churn, RoundScheduler::Barrier, 1, 1, 1, 5);
        // `on` must be byte-identical to the from-scratch reference, even stacked with
        // the DAG scheduler, multiple workers and non-default shard counts.
        let (fingerprint, stats) = churn_pass_incremental(
            10,
            3,
            churn,
            RoundScheduler::Dag,
            4,
            4,
            4,
            IncrementalSelectionMode::On,
            5,
        );
        assert_eq!(fingerprint, reference);
        assert!(stats.reused > 0, "warm rounds must hit the tables");
        assert!(stats.recomputed > 0, "changed batches must recompute");
        // Off is the retained reference path: tables never engage.
        let (_, off) = churn_pass_incremental(
            10,
            3,
            churn,
            RoundScheduler::Barrier,
            1,
            1,
            1,
            IncrementalSelectionMode::Off,
            5,
        );
        assert_eq!(off, IncrementalStats::default());
    }

    #[test]
    fn pd_campaign_pass_is_worker_invariant() {
        let base = pd_campaign_workload(10, 2, 5);
        let pairs = pd_campaign_pairs(&base, 3, 5);
        assert!(!pairs.is_empty());
        assert!(pairs.iter().all(|(a, b)| a != b));
        let sequential = pd_campaign_pass(&base, &pairs, 1);
        assert_eq!(sequential.len(), pairs.len());
        assert!(
            sequential
                .iter()
                .any(|(_, _, _, iterations, _, pull)| *iterations > 0 && *pull > 0),
            "no pair ran a pull iteration — the bench would measure snapshot cloning only"
        );
        for workers in [2usize, 4] {
            assert_eq!(pd_campaign_pass(&base, &pairs, workers), sequential);
        }
    }

    #[test]
    fn cow_snapshot_setup_is_an_order_of_magnitude_cheaper_than_deep_clone() {
        // Warmed a little past the criterion bench's 4 rounds: the deep clone's cost
        // grows with database content while the COW setup stays O(nodes x shards), so
        // the extra warm-up widens the measured gap well clear of the 10x bar even on
        // noisy debug-mode CI runners.
        let base = pd_campaign_workload(14, 6, 7);
        let origin = pd_campaign_pairs(&base, 1, 7)[0].0;
        // Snapshots must behave like the deep clone they replace before their speed
        // matters: same topology view, same registered paths.
        let cow = pd_snapshot_setup(&base, origin, false);
        let deep = pd_snapshot_setup(&base, origin, true);
        assert_eq!(cow.rounds_run(), deep.rounds_run());
        assert_eq!(cow.registered_paths().len(), deep.registered_paths().len());
        let cow_cost = measure_snapshot_setup(&base, origin, false, 10);
        let deep_cost = measure_snapshot_setup(&base, origin, true, 10);
        let speedup = deep_cost.as_nanos() as f64 / cow_cost.as_nanos().max(1) as f64;
        assert!(
            speedup >= 10.0,
            "COW snapshot setup must be ≥10× cheaper than a deep clone \
             (deep {deep_cost:?} / cow {cow_cost:?} = {speedup:.1}×)"
        );
    }

    #[test]
    fn on_demand_rac_processes_tagged_candidates() {
        let local_as = workload_local_as();
        let (rac, _, store) = on_demand_rac();
        let tagged = tag_candidates(&candidate_set(8, 5), &store);
        let timing = rac_processing_latency(&rac, &tagged, &local_as).unwrap();
        assert_eq!(timing.candidates, 8);
        assert_eq!(rac.cached_algorithms(), 1);
    }
}
