//! Criterion benchmark for the parallel PD campaign engine: wall-clock time of a full
//! campaign — N independent `(origin, target)` pull workflows, each on its own snapshot of
//! one warmed-up base simulation — against the campaign's worker count.
//!
//! The expected shape mirrors the other scaling benches: per-campaign wall-clock drops as
//! workers are added (pairs are embarrassingly parallel), flattening once the worker count
//! approaches the pair count or the machine's core count. The per-pair results are
//! byte-identical for every worker count — the campaign determinism guarantee — which
//! every iteration re-asserts against a sequential reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::workload::{pd_campaign_pairs, pd_campaign_pass, pd_campaign_workload};
use std::time::Duration;

const ASES: usize = 14;
const WARM_ROUNDS: usize = 4;
const PAIRS: usize = 6;
const SEED: u64 = 7;

fn bench_pd_campaign_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pd_campaign_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // The base simulation is warmed once; every pass snapshots it per pair.
    let base = pd_campaign_workload(ASES, WARM_ROUNDS, SEED);
    let pairs = pd_campaign_pairs(&base, PAIRS, SEED);

    // One throwaway sequential pass pins the fingerprint every row must reproduce.
    let reference = pd_campaign_pass(&base, &pairs, 1);

    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w == 1 || w <= max_workers)
        .collect();

    for workers in worker_counts {
        group.throughput(Throughput::Elements(pairs.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let pass = pd_campaign_pass(&base, &pairs, workers);
                    assert_eq!(pass, reference, "campaign diverged at {workers} workers");
                    pass
                });
            },
        );
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(irec_bench::regression::calibration_pass));
    group.finish();
}

criterion_group!(pd_campaign, bench_pd_campaign_scaling, bench_calibration);
criterion_main!(pd_campaign);
