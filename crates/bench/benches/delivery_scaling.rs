//! Criterion benchmark for the parallel message-delivery plane: wall-clock time of a full
//! multi-round simulation (generated topology, 5SP deployment) against the delivery plane's
//! verify-stage worker count.
//!
//! The expected shape mirrors `rac_engine_scaling`: per-run wall-clock drops as verify
//! workers are added (per-destination inboxes verify independently), flattening once the
//! worker count approaches the inbox count or the machine's core count. The delivery
//! counters are byte-identical for every worker count — only the wall-clock moves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::workload::{delivery_workload, measure_delivery_point};
use std::time::Duration;

const ASES: usize = 24;
const ROUNDS: usize = 3;
const SEED: u64 = 7;
/// Fixed ingress shard count across every row: this bench measures the verify-stage worker
/// count, so the shard knob must not vary with it (the `ingress_sharding` bench owns that
/// axis).
const INGRESS_SHARDS: usize = 4;

fn bench_delivery_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("delivery_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // One throwaway run pins the message volume the throughput figure is based on.
    let (stats, _) = measure_delivery_point(ASES, ROUNDS, 1, INGRESS_SHARDS, SEED);
    let total_messages = stats.delivered + stats.rejected + stats.dropped_no_node;

    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&w| w == 1 || w <= max_workers)
        .collect();

    for workers in worker_counts {
        group.throughput(Throughput::Elements(total_messages));
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    // The simulation is stateful, so each pass builds and runs a fresh one;
                    // the build cost is identical across rows and cancels in comparisons.
                    let mut sim = delivery_workload(ASES, workers, INGRESS_SHARDS, SEED);
                    sim.run_rounds(ROUNDS).expect("benchmark rounds succeed");
                    sim.delivered_messages()
                });
            },
        );
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(irec_bench::regression::calibration_pass));
    group.finish();
}

criterion_group!(delivery, bench_delivery_scaling, bench_calibration);
criterion_main!(delivery);
