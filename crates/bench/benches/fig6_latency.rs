//! Criterion benchmark behind Fig. 6: per-sub-task PCB processing latency of an on-demand
//! IREC RAC versus the legacy control service, for varying candidate-set sizes |Φ|.
//!
//! The `fig6` binary prints the full table across |Φ| = 1…4096; this bench gives
//! statistically robust numbers for a representative subset of sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::workload::{
    candidate_set, legacy_selection_latency, on_demand_rac, rac_processing_latency, tag_candidates,
    workload_local_as,
};
use std::time::Duration;

const SIZES: [usize; 4] = [16, 64, 256, 1024];

fn bench_irec_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_irec_rac");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for phi in SIZES {
        let local_as = workload_local_as();
        let (rac, _, store) = on_demand_rac();
        let tagged = tag_candidates(&candidate_set(phi, 7), &store);
        group.throughput(Throughput::Elements(phi as u64));
        group.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, _| {
            b.iter(|| {
                rac_processing_latency(&rac, &tagged, &local_as).expect("processing succeeds")
            });
        });
    }
    group.finish();
}

fn bench_legacy_control_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_legacy_control_service");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for phi in SIZES {
        let local_as = workload_local_as();
        let candidates = candidate_set(phi, 7);
        group.throughput(Throughput::Elements(phi as u64));
        group.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, _| {
            b.iter(|| legacy_selection_latency(&candidates, &local_as));
        });
    }
    group.finish();
}

criterion_group!(fig6, bench_irec_pipeline, bench_legacy_control_service);
criterion_main!(fig6);
