//! Criterion benchmark behind Fig. 7: PCB processing throughput of parallel RACs.
//!
//! The `fig7` binary scans the full (#RACs × |Φ|) grid with wall-clock windows; this bench
//! measures the throughput-critical kernel (one RAC repeatedly re-processing a candidate
//! set) and its scaling to a small number of parallel RAC threads, with Criterion's
//! statistical machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::workload::{
    candidate_set, on_demand_rac, rac_processing_latency, tag_candidates, workload_local_as,
};
use std::time::Duration;

fn bench_parallel_racs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_parallel_racs");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    let phi = 256usize;
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let thread_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&n| n <= max_threads)
        .collect();

    for racs in thread_counts {
        group.throughput(Throughput::Elements((phi * racs) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(racs), &racs, |b, &racs| {
            b.iter(|| {
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(racs);
                    for worker in 0..racs {
                        handles.push(scope.spawn(move || {
                            let local_as = workload_local_as();
                            let (rac, _, store) = on_demand_rac();
                            let tagged = tag_candidates(&candidate_set(phi, worker as u64), &store);
                            rac_processing_latency(&rac, &tagged, &local_as)
                                .expect("processing succeeds")
                        }));
                    }
                    for h in handles {
                        h.join().expect("worker thread");
                    }
                })
            });
        });
    }
    group.finish();
}

fn bench_phi_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_phi_scaling_single_rac");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for phi in [16usize, 64, 256, 1024] {
        let local_as = workload_local_as();
        let (rac, _, store) = on_demand_rac();
        let tagged = tag_candidates(&candidate_set(phi, 3), &store);
        group.throughput(Throughput::Elements(phi as u64));
        group.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, _| {
            b.iter(|| {
                rac_processing_latency(&rac, &tagged, &local_as).expect("processing succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(fig7, bench_parallel_racs, bench_phi_scaling);
criterion_main!(fig7);
