//! Criterion benchmark for the sharded ingress database: wall-clock time of one full
//! insert + evict pass (a multi-origin beacon mix committed from scoped worker threads,
//! followed by a parallel expiry sweep) against the shard count.
//!
//! The expected shape: with one shard every insert serializes behind a single lock and the
//! pass degenerates to the pre-sharding single-map behaviour; adding shards lets inserts
//! and evictions for different origins proceed concurrently, so the per-pass wall-clock
//! drops until the shard count approaches the machine's core count. The `(stored, evicted)`
//! occupancy figures are byte-identical for every row — the sharding determinism guarantee.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::workload::{candidate_set_for, sharded_ingress_pass};
use irec_core::StoredBeacon;
use irec_types::{AsId, SimDuration, SimTime};
use std::sync::Arc;
use std::time::Duration;

const ORIGINS: u64 = 16;
const PHI_PER_ORIGIN: usize = 32;
const SEED: u64 = 7;

fn bench_ingress_sharding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingress_sharding");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // The beacon mix is built once; every pass re-inserts it into a fresh database.
    // Origins spaced like `engine_workload` so one origin's synthetic hop ASes never
    // collide with another origin.
    let beacons: Vec<Arc<StoredBeacon>> = (0..ORIGINS)
        .flat_map(|index| candidate_set_for(AsId(1 + index * 100), PHI_PER_ORIGIN, SEED + index))
        .collect();
    let evict_at = SimTime::ZERO + SimDuration::from_hours(12);

    // Pin the occupancy figures the throughput is based on (and the determinism guarantee:
    // the single-shard reference pass stores and evicts exactly the same counts).
    let (stored, evicted) = sharded_ingress_pass(&beacons, 1, 1, evict_at);
    assert_eq!(stored, beacons.len());
    assert_eq!(evicted, beacons.len());

    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let shard_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&s| s == 1 || s <= max_workers.max(4))
        .collect();

    for shards in shard_counts {
        group.throughput(Throughput::Elements(beacons.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let pass = sharded_ingress_pass(&beacons, shards, shards, evict_at);
                    assert_eq!(pass, (stored, evicted));
                    pass
                });
            },
        );
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(irec_bench::regression::calibration_pass));
    group.finish();
}

criterion_group!(sharding, bench_ingress_sharding, bench_calibration);
criterion_main!(sharding);
