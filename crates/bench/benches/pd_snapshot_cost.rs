//! Criterion benchmark for the per-pair snapshot setup cost of the PD campaign: the
//! copy-on-write path (`Simulation::snapshot_reachable_from`, the campaign default)
//! against the deep-`Clone` reference implementation, on the same warmed fig8-style
//! workload the `pd_campaign_scaling` bench uses.
//!
//! The expected shape: the COW row pays O(nodes × shards) `Arc` clones plus the
//! reachability BFS, the deep row pays a full copy of every node's ingress database and
//! path service — so the COW setup should be at least an order of magnitude cheaper
//! (the `cow_snapshot_setup_is_an_order_of_magnitude_cheaper_than_deep_clone` unit test
//! pins the ≥10× bar; this bench feeds the CI bench-regression gate so the gap cannot
//! silently erode).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use irec_bench::workload::{pd_campaign_pairs, pd_campaign_workload, pd_snapshot_setup};
use std::time::Duration;

const ASES: usize = 14;
const WARM_ROUNDS: usize = 4;
const SEED: u64 = 7;

fn bench_pd_snapshot_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("pd_snapshot_cost");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // The same warmed base every campaign pass snapshots per pair.
    let base = pd_campaign_workload(ASES, WARM_ROUNDS, SEED);
    let origin = pd_campaign_pairs(&base, 1, SEED)[0].0;

    for (id, deep) in [("cow", false), ("deep", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(id), &deep, |b, &deep| {
            b.iter(|| black_box(pd_snapshot_setup(&base, origin, deep)));
        });
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(irec_bench::regression::calibration_pass));
    group.finish();
}

criterion_group!(pd_snapshot, bench_pd_snapshot_cost, bench_calibration);
criterion_main!(pd_snapshot);
