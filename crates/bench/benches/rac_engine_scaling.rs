//! Criterion benchmark for the parallel RAC execution engine: wall-clock time of one full
//! RAC phase (4 static RACs × 4 candidate batches) against the engine's worker count.
//!
//! The expected shape: the per-pass wall-clock time drops as workers are added (the 16 work
//! items are independent), flattening once the worker count approaches the item count or the
//! machine's core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::workload::{engine_workload, workload_local_as};
use irec_core::execute_racs;
use irec_types::{IfId, SimTime};
use std::time::Duration;

fn bench_engine_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("rac_engine_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    let phi = 256usize;
    let local_as = workload_local_as();
    let (racs, db) = engine_workload(phi, 4, 7, 4);
    let egress: Vec<IfId> = local_as.interfaces.keys().copied().collect();
    let total_candidates = (phi * 4 * racs.len()) as u64;

    let max_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8, 16]
        .into_iter()
        .filter(|&w| w == 1 || w <= max_workers)
        .collect();

    for workers in worker_counts {
        group.throughput(Throughput::Elements(total_candidates));
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    execute_racs(&racs, &db, &local_as, &egress, SimTime::ZERO, workers)
                        .expect("engine pass succeeds")
                });
            },
        );
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(irec_bench::regression::calibration_pass));
    group.finish();
}

criterion_group!(engine, bench_engine_scaling, bench_calibration);
criterion_main!(engine);
