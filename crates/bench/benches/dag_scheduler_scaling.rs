//! Criterion benchmark for the work-item DAG round scheduler: wall-clock time of a full
//! beaconing run — node rounds, speculative verifies, sharded applies and housekeeping as
//! one dependency graph per round — against the scheduler's pool width.
//!
//! The expected shape: per-run wall-clock drops as workers are added, and — the point of
//! the DAG over the barrier scheduler — worker idle time drops too, because speculative
//! verification of already-staged messages overlaps the node phase instead of waiting for
//! the round barrier. Outside the timed loop this bench asserts both properties: the DAG
//! fingerprint is byte-identical to the barrier reference at every width, and at pool
//! width ≥ 4 on a ≥ 4-core machine the DAG's idle counter lands strictly below the
//! barrier's.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::regression::calibration_pass;
use irec_bench::workload::round_scheduler_pass;
use irec_sim::RoundScheduler;
use std::time::Duration;

const ASES: usize = 14;
const ROUNDS: usize = 4;
const SEED: u64 = 9;

fn bench_dag_scheduler_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_scheduler_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // One throwaway sequential barrier pass pins the fingerprint every row must reproduce.
    let (reference, _) = round_scheduler_pass(ASES, ROUNDS, RoundScheduler::Barrier, 1, SEED);

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|&w| w == 1 || w <= cores.min(16))
        .collect();

    for workers in worker_counts {
        // Outside the timed loop: the acceptance probes. Determinism — both schedulers
        // reproduce the sequential reference at this width. Overlap — the DAG scheduler
        // keeps its workers busier than the barrier, i.e. speculative verify really does
        // run during the node phase (only meaningful with real parallelism, so gated on
        // pool width and physical cores).
        let (barrier_fp, barrier_stats) =
            round_scheduler_pass(ASES, ROUNDS, RoundScheduler::Barrier, workers, SEED);
        let (dag_fp, dag_stats) =
            round_scheduler_pass(ASES, ROUNDS, RoundScheduler::Dag, workers, SEED);
        assert_eq!(
            barrier_fp, reference,
            "barrier diverged at {workers} workers"
        );
        assert_eq!(dag_fp, reference, "dag diverged at {workers} workers");
        if workers >= 4 && cores >= 4 {
            assert!(
                dag_stats.idle_nanos < barrier_stats.idle_nanos,
                "DAG idle ({} ns) must be strictly below barrier idle ({} ns) at \
                 {workers} workers — speculative verify no longer overlaps the node phase",
                dag_stats.idle_nanos,
                barrier_stats.idle_nanos
            );
        }

        group.throughput(Throughput::Elements(ROUNDS as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let (fingerprint, stats) =
                        round_scheduler_pass(ASES, ROUNDS, RoundScheduler::Dag, workers, SEED);
                    assert_eq!(fingerprint, reference, "dag diverged at {workers} workers");
                    stats
                });
            },
        );
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(calibration_pass));
    group.finish();
}

criterion_group!(
    dag_scheduler,
    bench_dag_scheduler_scaling,
    bench_calibration
);
criterion_main!(dag_scheduler);
