//! Criterion benchmark for the churn engine: wall-clock time of a full churn campaign —
//! warmup, per-step delta application (withdrawal sweeps included) and the settle loop
//! with its invariant checks — against the churn rate.
//!
//! The expected shape: per-run wall-clock grows with the rate, because more deltas per
//! step mean more withdrawal sweeps and more settle rounds before the registered-path set
//! steadies. The rate-0 row is the overhead floor: a churn engine that draws nothing still
//! pays one settle round per step, so its gap to a plain `run_rounds` loop is the price of
//! the convergence/no-blackhole bookkeeping itself. Each rate also gets an
//! `incremental/<rate>` row: the same campaign with `--incremental-selection on`, whose
//! gap to the from-scratch row is what reusing unchanged batch selections buys a live
//! round. Outside the timed loop this bench asserts the churn determinism guarantee: the
//! fingerprint at every rate is byte-identical between the barrier and DAG schedulers,
//! across worker/shard counts, and between incremental-selection on and off — and at
//! nonzero rates the incremental run must recompute strictly fewer selections than a
//! from-scratch run performs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::regression::calibration_pass;
use irec_bench::workload::{churn_pass, churn_pass_incremental};
use irec_sim::{ChurnConfig, IncrementalSelectionMode, RoundScheduler};
use std::time::Duration;

const ASES: usize = 14;
const STEPS: usize = 3;
const SEED: u64 = 9;
const CHURN_SEED: u64 = 2;

fn config_at(rate: f64) -> ChurnConfig {
    ChurnConfig::default()
        .with_rate(rate)
        .with_seed(CHURN_SEED)
        .with_warmup_rounds(3)
}

fn bench_churn_round_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_round_overhead");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for rate in [0.0, 1.0, 2.0] {
        // Outside the timed loop: the determinism probes. One sequential barrier pass
        // pins the fingerprint; the DAG scheduler and the parallelism/shard planes must
        // reproduce it byte for byte at this rate.
        let reference = churn_pass(
            ASES,
            STEPS,
            config_at(rate),
            RoundScheduler::Barrier,
            1,
            1,
            1,
            SEED,
        );
        for (scheduler, width, ingress, path) in [
            (RoundScheduler::Dag, 1, 1, 1),
            (RoundScheduler::Dag, 4, 4, 7),
            (RoundScheduler::Barrier, 4, 7, 4),
        ] {
            let fingerprint = churn_pass(
                ASES,
                STEPS,
                config_at(rate),
                scheduler,
                width,
                ingress,
                path,
                SEED,
            );
            assert_eq!(
                fingerprint, reference,
                "churn fingerprint diverged at rate {rate} under {scheduler} x{width} \
                 ingress={ingress} path={path}"
            );
        }

        // The incremental probes, also outside the timed loop: `on` must reproduce the
        // from-scratch fingerprint byte for byte on every plane, and at nonzero rates it
        // must *reuse* part of the work — recomputing strictly fewer selections than the
        // from-scratch total (reused + recomputed is exactly what a from-scratch run
        // computes, so `reused > 0` ⟺ strictly fewer recomputes).
        for (scheduler, width, ingress, path) in [
            (RoundScheduler::Barrier, 1, 1, 1),
            (RoundScheduler::Dag, 4, 4, 7),
        ] {
            let (fingerprint, stats) = churn_pass_incremental(
                ASES,
                STEPS,
                config_at(rate),
                scheduler,
                width,
                ingress,
                path,
                IncrementalSelectionMode::On,
                SEED,
            );
            assert_eq!(
                fingerprint, reference,
                "incremental fingerprint diverged at rate {rate} under {scheduler} \
                 x{width} ingress={ingress} path={path}"
            );
            if rate > 0.0 {
                let from_scratch = stats.reused + stats.recomputed;
                assert!(
                    stats.recomputed < from_scratch,
                    "incremental selection at rate {rate} recomputed every selection \
                     ({} of {from_scratch}) — the tables never reused anything",
                    stats.recomputed
                );
            }
        }

        group.throughput(Throughput::Elements(STEPS as u64));
        group.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &rate| {
            b.iter(|| {
                churn_pass(
                    ASES,
                    STEPS,
                    config_at(rate),
                    RoundScheduler::Barrier,
                    1,
                    1,
                    1,
                    SEED,
                )
            });
        });
        // The incremental row: same campaign with the selection tables on. The gap to
        // the row above is what skipping unchanged batch selections buys a live round.
        group.bench_with_input(BenchmarkId::new("incremental", rate), &rate, |b, &rate| {
            b.iter(|| {
                churn_pass_incremental(
                    ASES,
                    STEPS,
                    config_at(rate),
                    RoundScheduler::Barrier,
                    1,
                    1,
                    1,
                    IncrementalSelectionMode::On,
                    SEED,
                )
            });
        });
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(calibration_pass));
    group.finish();
}

criterion_group!(
    churn_overhead,
    bench_churn_round_overhead,
    bench_calibration
);
criterion_main!(churn_overhead);
