//! Criterion benchmark for the algorithm catalog: wall-clock time of a full beaconing
//! run — origination, delivery, per-batch selection and path registration — against the
//! deployed selection algorithm, on one fixed generated topology.
//!
//! The expected shape: the truncation heuristic (`5SP`) is the floor; exact Yen's
//! enumeration (`5YEN`) pays for its loop-free spur scans; `HD`'s set-valued greedy sits
//! between them; and the seeded ant colony (`aco:<seed>:<iters>`) scales with its
//! iteration budget times the ant count, dominating the sweep. Outside the timed loop
//! this bench asserts the catalog determinism guarantee: every family's fingerprint is
//! byte-identical between the barrier and DAG schedulers and across worker/shard counts —
//! ACO's stochasticity comes from seeded streams, never from execution order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irec_bench::regression::calibration_pass;
use irec_bench::workload::algorithm_pass;
use irec_sim::RoundScheduler;
use std::time::Duration;

const ASES: usize = 12;
const ROUNDS: usize = 3;
const SEED: u64 = 9;

/// One member per family: heuristic truncation, exact enumeration, set-valued greedy,
/// seeded stochastic. The ACO iteration budget is kept small — the kernel measures the
/// family's per-iteration slope, not a production-sized search.
const ALGORITHMS: &[&str] = &["5SP", "5YEN", "HD", "aco:7:4"];

fn bench_alg_catalog_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg_catalog_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &algorithm in ALGORITHMS {
        // Outside the timed loop: the determinism probes. One sequential barrier pass
        // pins the fingerprint; the DAG scheduler and the parallelism/shard planes must
        // reproduce it byte for byte for this algorithm.
        let reference = algorithm_pass(
            algorithm,
            ASES,
            ROUNDS,
            RoundScheduler::Barrier,
            1,
            1,
            1,
            SEED,
        );
        assert!(
            !reference.0.is_empty(),
            "the {algorithm} kernel must register paths"
        );
        for (scheduler, width, ingress, path) in [
            (RoundScheduler::Dag, 1, 1, 1),
            (RoundScheduler::Dag, 4, 4, 7),
            (RoundScheduler::Barrier, 4, 7, 4),
        ] {
            let fingerprint = algorithm_pass(
                algorithm, ASES, ROUNDS, scheduler, width, ingress, path, SEED,
            );
            assert_eq!(
                fingerprint, reference,
                "{algorithm} fingerprint diverged under {scheduler} x{width} \
                 ingress={ingress} path={path}"
            );
        }

        group.throughput(Throughput::Elements(ROUNDS as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| {
                    algorithm_pass(
                        algorithm,
                        ASES,
                        ROUNDS,
                        RoundScheduler::Barrier,
                        1,
                        1,
                        1,
                        SEED,
                    )
                });
            },
        );
    }
    group.finish();
}

/// The machine-speed normalizer for the bench-regression gate: every sweep interleaves
/// one `calibration/mix` measurement with the workload kernels it normalizes.
fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.bench_function("mix", |b| b.iter(calibration_pass));
    group.finish();
}

criterion_group!(alg_catalog, bench_alg_catalog_scaling, bench_calibration);
criterion_main!(alg_catalog);
