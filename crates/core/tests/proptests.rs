//! Property-based suites pinning the core invariants the simulator relies on:
//!
//! * `RacTiming`, `PcbMessage` and `PullReturn` survive a wire encode/decode round-trip
//!   unchanged (the delivery plane's message types are wire-clean);
//! * the ingress database never hands out an expired beacon, its dedup set (`seen`) always
//!   matches the stored digests, and `live_len` agrees with what queries can observe;
//! * the egress database's `evict_expired` count equals the number of hashes actually
//!   deleted, for any interleaving of insertions and (even non-monotonic) eviction sweeps.

use irec_core::beacon_db::BatchKey;
use irec_core::{
    EgressDb, IngressDb, PathService, PcbMessage, PullReturn, RacTiming, RegisteredPath,
    ShardedIngressDb, ShardedPathService,
};
use irec_pcb::{Pcb, PcbExtensions, PcbId};
use irec_types::{
    AsId, Bandwidth, IfId, InterfaceGroupId, Latency, PathMetrics, SimDuration, SimTime,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

proptest! {
    #[test]
    fn rac_timing_wire_roundtrip(
        components in (0u64..200_000_000_000, 0u64..200_000_000_000, 0u64..200_000_000_000),
        candidates in 0usize..5_000_000,
    ) {
        let timing = RacTiming {
            setup: Duration::from_nanos(components.0),
            marshal: Duration::from_nanos(components.1),
            execute: Duration::from_nanos(components.2),
            candidates,
        };
        let bytes = irec_wire::to_bytes(&timing);
        let decoded: RacTiming = irec_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded, timing);
        prop_assert_eq!(decoded.total(), timing.total());
    }

    #[test]
    fn rac_timing_decode_rejects_truncation(
        components in (1u64..1_000_000, 1u64..1_000_000, 1u64..1_000_000),
        cut in 1usize..4,
    ) {
        let timing = RacTiming {
            setup: Duration::from_nanos(components.0),
            marshal: Duration::from_nanos(components.1),
            execute: Duration::from_nanos(components.2),
            candidates: 7,
        };
        let mut bytes = irec_wire::to_bytes(&timing);
        let len = bytes.len();
        bytes.truncate(len - cut.min(len));
        prop_assert!(irec_wire::from_bytes::<RacTiming>(&bytes).is_err());
    }

    /// A `PcbMessage` survives the wire round-trip unchanged for any addressing and any
    /// beacon extension combination, and truncated encodings are rejected.
    #[test]
    fn pcb_message_wire_roundtrip(
        from_as in 1u64..1_000_000, from_if in 0u32..1_000,
        to_as in 1u64..1_000_000, to_if in 0u32..1_000,
        origin in 1u64..50, seq in 0u64..100, validity in 1u64..12,
        target in proptest::option::of(1u64..50),
        group in proptest::option::of(1u32..8),
        cut in 1usize..6,
    ) {
        let message = PcbMessage {
            from_as: AsId(from_as),
            from_if: IfId(from_if),
            to_as: AsId(to_as),
            to_if: IfId(to_if),
            pcb: extended_pcb(origin, seq, validity, target, group),
        };
        let bytes = irec_wire::to_bytes(&message);
        let decoded: PcbMessage = irec_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &message);
        let mut truncated = bytes.clone();
        let len = truncated.len();
        truncated.truncate(len - cut.min(len));
        prop_assert!(irec_wire::from_bytes::<PcbMessage>(&truncated).is_err());
    }

    /// Same round-trip guarantee for `PullReturn`.
    #[test]
    fn pull_return_wire_roundtrip(
        from_as in 1u64..1_000_000, to_as in 1u64..1_000_000,
        target_ingress in 0u32..1_000,
        origin in 1u64..50, seq in 0u64..100, validity in 1u64..12,
        group in proptest::option::of(1u32..8),
        cut in 1usize..6,
    ) {
        let ret = PullReturn {
            from_as: AsId(from_as),
            to_as: AsId(to_as),
            target_ingress: IfId(target_ingress),
            pcb: extended_pcb(origin, seq, validity, Some(to_as), group),
        };
        let bytes = irec_wire::to_bytes(&ret);
        let decoded: PullReturn = irec_wire::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &ret);
        let mut truncated = bytes.clone();
        let len = truncated.len();
        truncated.truncate(len - cut.min(len));
        prop_assert!(irec_wire::from_bytes::<PullReturn>(&truncated).is_err());
    }

    /// Insert a batch of beacons, query and evict at random times: no expired beacon is
    /// ever returned by any query path, and `live_len` matches what the queries observe.
    #[test]
    fn ingress_db_never_returns_expired_beacons(
        beacons in proptest::collection::vec((1u64..5, 0u64..6, 1u64..10), 1..25),
        probe_hours in 0u64..12,
        evict_hours in 0u64..12,
    ) {
        let mut db = IngressDb::new();
        for (origin, seq, validity) in &beacons {
            db.insert(test_pcb(*origin, *seq, *validity), IfId(1), SimTime::ZERO);
        }
        let probe = SimTime::ZERO + SimDuration::from_hours(probe_hours);

        let mut observed = 0usize;
        for key in db.batch_keys() {
            for beacon in db.beacons_for(&key, probe) {
                prop_assert!(!beacon.pcb.is_expired(probe));
                observed += 1;
            }
            if let Some(view) = db.batch_view(&key, probe) {
                prop_assert!(view.beacons.iter().all(|b| !b.pcb.is_expired(probe)));
            }
            for beacon in db.beacons_for_origin(key.origin, key.target, probe) {
                prop_assert!(!beacon.pcb.is_expired(probe));
            }
        }
        prop_assert_eq!(db.live_len(probe), observed);

        // Eviction at an arbitrary time keeps the same guarantees for later probes.
        let evict_at = SimTime::ZERO + SimDuration::from_hours(evict_hours);
        let before = db.len();
        let evicted = db.evict_expired(evict_at, SimDuration::ZERO);
        prop_assert_eq!(db.len(), before - evicted);
        let probe_after = if probe >= evict_at { probe } else { evict_at };
        prop_assert_eq!(
            db.live_len(probe_after),
            db.batch_keys()
                .iter()
                .map(|k| db.beacons_for(k, probe_after).len())
                .sum::<usize>()
        );
    }

    /// The dedup set always matches the stored digests: while a beacon is stored its digest
    /// is refused, and once evicted it can be inserted again.
    #[test]
    fn ingress_db_seen_matches_stored_digests(
        beacons in proptest::collection::vec((1u64..4, 0u64..5, 1u64..8), 1..20),
    ) {
        let mut db = IngressDb::new();
        let mut stored: Vec<Pcb> = Vec::new();
        for (origin, seq, validity) in &beacons {
            let pcb = test_pcb(*origin, *seq, *validity);
            if db.insert(pcb.clone(), IfId(1), SimTime::ZERO) {
                stored.push(pcb);
            }
        }
        prop_assert_eq!(db.len(), stored.len());
        // Every stored digest is refused on re-insertion.
        for pcb in &stored {
            prop_assert!(!db.insert(pcb.clone(), IfId(2), SimTime::ZERO));
        }
        prop_assert_eq!(db.len(), stored.len());
        // Evict everything: the dedup set must be cleared alongside the beacons.
        let evicted = db.evict_expired(SimTime::MAX, SimDuration::ZERO);
        prop_assert_eq!(evicted, stored.len());
        prop_assert!(db.is_empty());
        for pcb in &stored {
            prop_assert!(db.insert(pcb.clone(), IfId(1), SimTime::ZERO));
        }
    }

    /// The sharded ingress database is observably byte-identical to the single-map
    /// reference for **any** shard count: for a random sequence of inserts, evictions and
    /// queries, shard counts 1, 2, 4, 7 and 16 all produce the same insert verdicts, the
    /// same `batch_keys()` *order*, the same `len`/`live_len`, the same per-key query
    /// results and the same eviction counts as one `IngressDb`.
    #[test]
    fn sharded_ingress_db_matches_single_map_reference(
        ops in proptest::collection::vec(
            // kind 0/1 = insert (different ingress interfaces), 2 = eviction sweep.
            (0u8..3, 1u64..9, 0u64..6, 1u64..10, 0u64..12),
            1..40,
        ),
        probe_hours in 0u64..12,
    ) {
        for shards in [1usize, 2, 4, 7, 16] {
            let mut reference = IngressDb::new();
            let sharded = ShardedIngressDb::new(shards);
            prop_assert_eq!(sharded.shard_count(), shards);
            for (kind, origin, seq, validity, hours) in &ops {
                if *kind == 2 {
                    // Eviction sweep at an arbitrary (not necessarily monotonic) time,
                    // with the hours doubling as a grace window every other sweep.
                    let now = SimTime::ZERO + SimDuration::from_hours(*hours);
                    let grace = if hours % 2 == 0 {
                        SimDuration::ZERO
                    } else {
                        SimDuration::from_hours(*validity)
                    };
                    prop_assert_eq!(
                        sharded.evict_expired(now, grace),
                        reference.evict_expired(now, grace),
                        "eviction counts diverged at {} shards", shards
                    );
                } else {
                    let pcb = test_pcb(*origin, *seq, *validity);
                    let ingress = IfId(*kind as u32 + 1);
                    let received = SimTime::ZERO + SimDuration::from_hours(*hours);
                    prop_assert_eq!(
                        sharded.insert(pcb.clone(), ingress, received),
                        reference.insert(pcb, ingress, received),
                        "insert verdicts diverged at {} shards", shards
                    );
                }
                prop_assert_eq!(sharded.len(), reference.len());
            }
            // Deterministic, shard-merged iteration order: the exact key sequence of the
            // single map, not just the same set.
            prop_assert_eq!(sharded.batch_keys(), reference.batch_keys());
            let probe = SimTime::ZERO + SimDuration::from_hours(probe_hours);
            prop_assert_eq!(sharded.live_len(probe), reference.live_len(probe));
            for key in reference.batch_keys() {
                prop_assert_eq!(
                    sharded.beacons_for(&key, probe),
                    reference.beacons_for(&key, probe)
                );
                prop_assert_eq!(
                    sharded.beacons_for_origin(key.origin, key.target, probe),
                    reference.beacons_for_origin(key.origin, key.target, probe)
                );
                prop_assert_eq!(
                    sharded.batch_view(&key, probe).map(|v| v.beacons),
                    reference.batch_view(&key, probe).map(|v| v.beacons)
                );
            }
            // Final drain: the counts agree all the way to empty.
            prop_assert_eq!(
                sharded.evict_expired(SimTime::MAX, SimDuration::ZERO),
                reference.evict_expired(SimTime::MAX, SimDuration::ZERO)
            );
            prop_assert!(sharded.is_empty());
        }
    }

    /// The destination-sharded path service is observably byte-identical to the
    /// single-map reference for **any** shard count: for a random registration sequence —
    /// fresh paths, refreshes and limit evictions included — shard counts 1, 2, 4, 7 and
    /// 16 all produce the same `all()` *order*, the same per-destination lookups, the
    /// same destination list and the same limit-eviction counts as one `PathService`.
    #[test]
    fn sharded_path_service_matches_single_map_reference(
        ops in proptest::collection::vec(
            // (destination, algorithm index, path id, registration hour)
            (1u64..8, 0usize..4, 0u64..24, 0u64..10),
            1..60,
        ),
        limit in 1usize..5,
    ) {
        for shards in [1usize, 2, 4, 7, 16] {
            let mut reference = PathService::with_limit(limit);
            let sharded = ShardedPathService::with_limit(limit, shards);
            prop_assert_eq!(sharded.shard_count(), shards);
            for (destination, alg, id, hour) in &ops {
                let path = test_path(*destination, *alg, *id, *hour);
                reference.register(path.clone());
                sharded.register(path);
                prop_assert_eq!(sharded.len(), reference.len());
                prop_assert_eq!(
                    sharded.evictions(),
                    reference.evictions(),
                    "eviction counts diverged at {} shards", shards
                );
            }
            // Deterministic, shard-merged iteration order: the exact registration
            // sequence of the single map, not just the same set.
            prop_assert_eq!(
                sharded.all(),
                reference.all().into_iter().cloned().collect::<Vec<_>>()
            );
            prop_assert_eq!(sharded.destinations(), reference.destinations());
            prop_assert_eq!(sharded.is_empty(), reference.is_empty());
            for destination in 1u64..8 {
                prop_assert_eq!(
                    sharded.paths_to(AsId(destination)),
                    reference
                        .paths_to(AsId(destination))
                        .into_iter()
                        .cloned()
                        .collect::<Vec<_>>(),
                    "paths_to({}) diverged at {} shards", destination, shards
                );
                for algorithm in PATH_ALGORITHMS {
                    prop_assert_eq!(
                        sharded.paths_to_by(AsId(destination), algorithm),
                        reference
                            .paths_to_by(AsId(destination), algorithm)
                            .into_iter()
                            .cloned()
                            .collect::<Vec<_>>()
                    );
                }
            }
        }
    }

    /// Copy-on-write isolation, model-checked: for any base contents and any per-snapshot
    /// write sequences, a `cow_clone` mutated by one "campaign pair" never leaks writes
    /// into the base database or into sibling snapshots — at every shard count the PD
    /// campaign can run under. Each snapshot must end up observably identical to an
    /// independently built deep copy that replayed the same writes.
    #[test]
    fn cow_snapshots_isolate_writes_from_base_and_siblings(
        base_ops in proptest::collection::vec((1u64..9, 0u64..6, 1u64..10), 0..15),
        snapshot_ops in proptest::collection::vec(
            proptest::collection::vec((1u64..9, 0u64..6, 1u64..10), 1..10),
            1..4,
        ),
    ) {
        for shards in [1usize, 4, 7, 16] {
            // --- Ingress side -------------------------------------------------------
            let base = ShardedIngressDb::new(shards);
            for (origin, seq, validity) in &base_ops {
                base.insert(test_pcb(*origin, *seq, *validity), IfId(1), SimTime::ZERO);
            }
            let base_reference = base.clone(); // deep: pins the base's expected contents
            let snapshots: Vec<ShardedIngressDb> =
                snapshot_ops.iter().map(|_| base.cow_clone()).collect();
            let mut references: Vec<ShardedIngressDb> =
                snapshot_ops.iter().map(|_| base.clone()).collect();
            for ((snapshot, reference), ops) in
                snapshots.iter().zip(references.iter_mut()).zip(&snapshot_ops)
            {
                for (origin, seq, validity) in ops {
                    // Distinct ingress interface per side, so a leaked write is visible
                    // even when base and snapshot insert the same beacon.
                    let pcb = test_pcb(*origin, *seq, *validity);
                    snapshot.insert(pcb.clone(), IfId(7), SimTime::ZERO);
                    reference.insert(pcb, IfId(7), SimTime::ZERO);
                }
            }
            // The base saw nothing.
            prop_assert_eq!(base.batch_keys(), base_reference.batch_keys());
            prop_assert_eq!(base.len(), base_reference.len());
            // Every snapshot equals its own deep-copy replay — writes of siblings (which
            // may target the very same shards) are invisible to it.
            for (snapshot, reference) in snapshots.iter().zip(&references) {
                prop_assert_eq!(snapshot.len(), reference.len());
                prop_assert_eq!(snapshot.batch_keys(), reference.batch_keys());
                for key in reference.batch_keys() {
                    prop_assert_eq!(
                        snapshot.beacons_for(&key, SimTime::ZERO),
                        reference.beacons_for(&key, SimTime::ZERO),
                        "snapshot contents diverged at {} shards", shards
                    );
                }
            }

            // --- Path-service side --------------------------------------------------
            let base = ShardedPathService::new(shards);
            for (destination, alg, id) in &base_ops {
                base.register(test_path(*destination, (*alg % 4) as usize, *id, 0));
            }
            let base_reference = base.clone();
            let snapshots: Vec<ShardedPathService> =
                snapshot_ops.iter().map(|_| base.cow_clone()).collect();
            let mut references: Vec<ShardedPathService> =
                snapshot_ops.iter().map(|_| base.clone()).collect();
            for ((snapshot, reference), ops) in
                snapshots.iter().zip(references.iter_mut()).zip(&snapshot_ops)
            {
                for (destination, alg, id) in ops {
                    // Offset ids keep snapshot registrations distinct from base ones.
                    let path = test_path(*destination, (*alg % 4) as usize, 1_000 + *id, 1);
                    snapshot.register(path.clone());
                    reference.register(path);
                }
            }
            prop_assert_eq!(base.all(), base_reference.all());
            for (snapshot, reference) in snapshots.iter().zip(&references) {
                prop_assert_eq!(
                    snapshot.all(),
                    reference.all(),
                    "snapshot registrations diverged at {} shards", shards
                );
            }
        }
    }

    /// Model-checked egress bookkeeping: for any interleaving of `filter_new_egresses` and
    /// eviction sweeps (including re-appearing digests and non-monotonic sweep times), the
    /// `removed` count equals the number of hashes actually deleted and `len()` tracks a
    /// reference model exactly.
    #[test]
    fn egress_db_eviction_count_is_exact(
        ops in proptest::collection::vec((0u8..3, 1u64..5, 0u64..4, 1u64..9), 1..40),
    ) {
        let mut db = EgressDb::new();
        // Reference model: live digest -> expiry time.
        let mut model: HashMap<irec_pcb::PcbId, SimTime> = HashMap::new();
        for (kind, origin, seq, hours) in &ops {
            if *kind == 2 {
                // Eviction sweep at an arbitrary (not necessarily monotonic) time.
                let now = SimTime::ZERO + SimDuration::from_hours(*hours);
                let before = db.len();
                let removed = db.evict_expired(now);
                let expected: Vec<_> = model
                    .iter()
                    .filter(|(_, expiry)| **expiry <= now)
                    .map(|(id, _)| *id)
                    .collect();
                prop_assert_eq!(removed, expected.len());
                prop_assert_eq!(before - removed, db.len());
                for id in expected {
                    model.remove(&id);
                }
            } else {
                let pcb = test_pcb(*origin, *seq, *hours);
                let egress = IfId(*kind as u32 + 1);
                db.filter_new_egresses(&pcb, &[egress]);
                model.insert(pcb.digest(), pcb.expires_at);
                prop_assert!(db.contains(&pcb, egress));
            }
            prop_assert_eq!(db.len(), model.len());
        }
        // Final drain: everything left must be deleted, counted exactly once.
        let removed = db.evict_expired(SimTime::MAX);
        prop_assert_eq!(removed, model.len());
        prop_assert!(db.is_empty());
    }
}

/// The algorithm names the path-service proptest registers under (a fixed palette keeps
/// refreshes likely while still spreading registrations over several keys).
const PATH_ALGORITHMS: [&str; 4] = ["1SP", "5SP", "HD", "PD"];

/// A registered path whose identity (digest and link sequence) varies by
/// `(destination, algorithm, id)`: re-registering the same triple refreshes, different
/// triples never collide.
fn test_path(destination: u64, alg: usize, id: u64, at_hours: u64) -> RegisteredPath {
    let mut digest = [0u8; 32];
    digest[..8].copy_from_slice(&destination.to_le_bytes());
    digest[8..16].copy_from_slice(&id.to_le_bytes());
    digest[16] = alg as u8;
    RegisteredPath {
        pcb_id: PcbId(irec_crypto::Digest(digest)),
        destination: AsId(destination),
        destination_interface: IfId(1),
        local_interface: IfId(2),
        algorithm: PATH_ALGORITHMS[alg].to_string(),
        group: InterfaceGroupId::DEFAULT,
        metrics: PathMetrics {
            latency: Latency::from_millis(5 + id),
            bandwidth: Bandwidth::from_mbps(100),
            hops: 2,
        },
        links: vec![
            (AsId(destination), IfId(id as u32)),
            (AsId(500 + alg as u64), IfId(1)),
        ],
        registered_at: SimTime::ZERO + SimDuration::from_hours(at_hours),
    }
}

/// A minimal PCB (origination only — ingress/egress databases never verify signatures), with
/// digest varying by `(origin, seq, validity)`.
fn test_pcb(origin: u64, seq: u64, validity_hours: u64) -> Pcb {
    Pcb::originate(
        AsId(origin),
        seq,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_hours(validity_hours),
        PcbExtensions::none(),
    )
}

/// Like [`test_pcb`] but with the optional pull-target / interface-group extensions the
/// wire round-trip must preserve.
fn extended_pcb(
    origin: u64,
    seq: u64,
    validity_hours: u64,
    target: Option<u64>,
    group: Option<u32>,
) -> Pcb {
    let mut extensions = PcbExtensions::none();
    if let Some(t) = target {
        extensions = extensions.with_target(AsId(t));
    }
    if let Some(g) = group {
        extensions = extensions.with_interface_group(InterfaceGroupId(g));
    }
    Pcb::originate(
        AsId(origin),
        seq,
        SimTime::ZERO,
        SimTime::ZERO + SimDuration::from_hours(validity_hours),
        extensions,
    )
}

/// Hot-shard stress: many concurrent snapshots (one per "campaign pair") all write paths
/// for the **same destination**, i.e. the same path-service shard, while the base keeps
/// serving reads. Every snapshot must materialize its own copy of the contended shard
/// exactly once and end up with base + its own registrations; the base must stay
/// untouched throughout.
#[test]
fn hot_shard_snapshot_writes_stay_isolated_under_contention() {
    const SNAPSHOTS: usize = 16;
    const WRITES_PER_SNAPSHOT: u64 = 50;
    let hot_destination = 3u64;

    // Limit high enough that nothing is evicted: the test asserts exact contents, and
    // per-key limit eviction would otherwise drop the stalest of the hot key's paths.
    let base = ShardedPathService::with_limit(2_000, 4);
    for id in 0..10 {
        base.register(test_path(hot_destination, 0, id, 0));
    }
    let base_before = base.all();
    let hot_shard = base.shard_of(AsId(hot_destination));

    let results: Vec<(usize, Vec<RegisteredPath>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..SNAPSHOTS)
            .map(|index| {
                let snapshot = base.cow_clone();
                assert!(
                    snapshot.shares_shard_with(&base, hot_shard),
                    "fresh snapshots share the hot shard"
                );
                scope.spawn(move || {
                    for id in 0..WRITES_PER_SNAPSHOT {
                        // Every snapshot hammers the same destination — the same shard —
                        // with ids disjoint from every sibling's.
                        let id = 1_000 + index as u64 * WRITES_PER_SNAPSHOT + id;
                        snapshot.register(test_path(hot_destination, 1, id, 1));
                    }
                    (index, snapshot.all())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The base never saw a snapshot write.
    assert_eq!(base.all(), base_before);
    // Each snapshot holds exactly base + its own writes, in registration order.
    for (index, paths) in results {
        assert_eq!(
            paths.len(),
            base_before.len() + WRITES_PER_SNAPSHOT as usize,
            "snapshot {index} lost or gained registrations"
        );
        assert_eq!(&paths[..base_before.len()], &base_before[..]);
        for (offset, path) in paths[base_before.len()..].iter().enumerate() {
            let expected = test_path(
                hot_destination,
                1,
                1_000 + index as u64 * 50 + offset as u64,
                1,
            );
            assert_eq!(path, &expected, "snapshot {index} write {offset} corrupted");
        }
    }
}

/// Non-property smoke check that the default batch key layout used above matches the
/// database's grouping (guards the proptests against silently querying empty keys).
#[test]
fn test_pcb_lands_in_default_batch_key() {
    let mut db = IngressDb::new();
    db.insert(test_pcb(1, 0, 6), IfId(1), SimTime::ZERO);
    let key = BatchKey {
        origin: AsId(1),
        group: InterfaceGroupId::DEFAULT,
        target: None,
    };
    assert_eq!(db.beacons_for(&key, SimTime::ZERO).len(), 1);
}
