//! Control-plane messages exchanged between ASes.

use irec_pcb::Pcb;
use irec_types::{AsId, IfId, Result};
use irec_wire::{Decode, Encode, WireReader, WireWriter};

/// A PCB propagated from one AS's egress gateway to a neighbor's ingress gateway.
#[derive(Debug, Clone, PartialEq)]
pub struct PcbMessage {
    /// Sending AS.
    pub from_as: AsId,
    /// Egress interface at the sender.
    pub from_if: IfId,
    /// Receiving AS.
    pub to_as: AsId,
    /// Ingress interface at the receiver (the far end of the sender's egress link).
    pub to_if: IfId,
    /// The beacon (already extended and signed by the sender).
    pub pcb: Pcb,
}

impl Encode for PcbMessage {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_varint(self.from_as.value());
        writer.put_u32v(self.from_if.value());
        writer.put_varint(self.to_as.value());
        writer.put_u32v(self.to_if.value());
        self.pcb.encode(writer);
    }
}

impl Decode for PcbMessage {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        Ok(PcbMessage {
            from_as: AsId(reader.get_varint()?),
            from_if: IfId(reader.get_u32v()?),
            to_as: AsId(reader.get_varint()?),
            to_if: IfId(reader.get_u32v()?),
            pcb: Pcb::decode(reader)?,
        })
    }
}

/// A pull-based beacon returned by the target AS to the beacon's origin AS (§IV-B: "the
/// target AS ... sends them back to their origin AS").
///
/// The return travels as a regular control-plane message over an already known path; the
/// simulator models it as a direct delivery after a delay proportional to the beacon's own
/// path latency.
#[derive(Debug, Clone, PartialEq)]
pub struct PullReturn {
    /// The target AS returning the beacon.
    pub from_as: AsId,
    /// The origin AS the beacon is returned to.
    pub to_as: AsId,
    /// The ingress interface at the target on which the beacon arrived (completes the path).
    pub target_ingress: IfId,
    /// The beacon being returned.
    pub pcb: Pcb,
}

impl Encode for PullReturn {
    fn encode(&self, writer: &mut WireWriter) {
        writer.put_varint(self.from_as.value());
        writer.put_varint(self.to_as.value());
        writer.put_u32v(self.target_ingress.value());
        self.pcb.encode(writer);
    }
}

impl Decode for PullReturn {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        Ok(PullReturn {
            from_as: AsId(reader.get_varint()?),
            to_as: AsId(reader.get_varint()?),
            target_ingress: IfId(reader.get_u32v()?),
            pcb: Pcb::decode(reader)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_pcb::PcbExtensions;
    use irec_types::{SimDuration, SimTime};

    #[test]
    fn message_construction() {
        let pcb = Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(1),
            PcbExtensions::none(),
        );
        let msg = PcbMessage {
            from_as: AsId(1),
            from_if: IfId(2),
            to_as: AsId(3),
            to_if: IfId(4),
            pcb: pcb.clone(),
        };
        assert_eq!(msg.pcb.origin, AsId(1));
        let ret = PullReturn {
            from_as: AsId(3),
            to_as: AsId(1),
            target_ingress: IfId(4),
            pcb,
        };
        assert_eq!(ret.to_as, AsId(1));
    }

    #[test]
    fn wire_roundtrip_smoke() {
        let pcb = Pcb::originate(
            AsId(1),
            3,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(1),
            PcbExtensions::none(),
        );
        let msg = PcbMessage {
            from_as: AsId(1),
            from_if: IfId(2),
            to_as: AsId(3),
            to_if: IfId(4),
            pcb: pcb.clone(),
        };
        let decoded: PcbMessage = irec_wire::from_bytes(&irec_wire::to_bytes(&msg)).unwrap();
        assert_eq!(decoded, msg);

        let ret = PullReturn {
            from_as: AsId(3),
            to_as: AsId(1),
            target_ingress: IfId(4),
            pcb,
        };
        let decoded: PullReturn = irec_wire::from_bytes(&irec_wire::to_bytes(&ret)).unwrap();
        assert_eq!(decoded, ret);
    }
}
