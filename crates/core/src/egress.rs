//! The egress gateway (§V-D): PCB origination, deduplication, extension with the local hop
//! entry, propagation to neighbors, pull-based returns, and path registration.

use crate::beacon_db::EgressDb;
use crate::config::PropagationPolicy;
use crate::messages::{PcbMessage, PullReturn};
use crate::path_service::{RegisteredPath, ShardedPathService};
use crate::rac::RacOutput;
use irec_crypto::Signer;
use irec_pcb::{Pcb, PcbExtensions, StaticInfo};
use irec_topology::Topology;
use irec_types::{AsId, IfId, InterfaceGroupId, Result, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// What an AS originates each beaconing round: for every interface group, the member
/// interfaces to send fresh beacons on, plus the extensions to attach (the same `extensions`
/// are attached to every beacon of this spec, with the group id filled in per group).
#[derive(Debug, Clone, PartialEq)]
pub struct OriginationSpec {
    /// Member interfaces per interface group. A single default group containing every
    /// interface reproduces legacy SCION origination.
    pub groups: BTreeMap<InterfaceGroupId, Vec<IfId>>,
    /// Extensions to attach (target for pull-based routing, algorithm for on-demand routing).
    /// The interface-group extension is set automatically per group.
    pub extensions: PcbExtensions,
    /// Whether to include the interface-group extension (origins that do not opt into
    /// flexible granularity leave it out entirely).
    pub tag_groups: bool,
}

impl OriginationSpec {
    /// A legacy-style spec: one default group with the given interfaces and no extensions.
    pub fn plain(interfaces: Vec<IfId>) -> Self {
        let mut groups = BTreeMap::new();
        groups.insert(InterfaceGroupId::DEFAULT, interfaces);
        OriginationSpec {
            groups,
            extensions: PcbExtensions::none(),
            tag_groups: false,
        }
    }

    /// A grouped spec originating per interface group (flexible granularity, §IV-D).
    pub fn grouped(groups: BTreeMap<InterfaceGroupId, Vec<IfId>>) -> Self {
        OriginationSpec {
            groups,
            extensions: PcbExtensions::none(),
            tag_groups: true,
        }
    }

    /// Builder-style: attach extensions (target and/or algorithm) to every originated beacon.
    #[must_use]
    pub fn with_extensions(mut self, extensions: PcbExtensions) -> Self {
        self.extensions = extensions;
        self
    }
}

/// Counters kept by the egress gateway; the per-interface send counts feed the Fig. 8c
/// overhead metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EgressStats {
    /// PCBs sent per egress interface (cumulative).
    pub sent_per_interface: BTreeMap<IfId, u64>,
    /// Pull-based beacons returned to their origins.
    pub pull_returns: u64,
    /// Paths registered at the path service.
    pub registered: u64,
}

impl EgressStats {
    /// Total PCBs sent.
    pub fn total_sent(&self) -> u64 {
        self.sent_per_interface.values().sum()
    }
}

/// The egress gateway of one AS.
pub struct EgressGateway {
    local_as: AsId,
    topology: Arc<Topology>,
    signer: Signer,
    policy: PropagationPolicy,
    /// The propagation dedup database, behind an [`Arc`] so [`EgressGateway::cow_clone`]
    /// can share it structurally; every write path goes through [`Arc::make_mut`], which
    /// copies the database on the first mutation after a share.
    db: Arc<EgressDb>,
    path_service: ShardedPathService,
    stats: EgressStats,
    sequence: u64,
}

impl Clone for EgressGateway {
    /// A **deep** clone: the dedup database and path-service shards are fully copied, so
    /// the clone shares no mutable state with the original. This is the reference
    /// implementation the copy-on-write [`EgressGateway::cow_clone`] must stay
    /// byte-equivalent to.
    fn clone(&self) -> Self {
        EgressGateway {
            local_as: self.local_as,
            topology: Arc::clone(&self.topology),
            signer: self.signer.clone(),
            policy: self.policy,
            db: Arc::new(self.db.as_ref().clone()),
            path_service: self.path_service.clone(),
            stats: self.stats.clone(),
            sequence: self.sequence,
        }
    }
}

impl EgressGateway {
    /// A copy-on-write clone: the path-service shards are structurally shared via
    /// [`ShardedPathService::cow_clone`] (O(shards) pointer copies; a shard is
    /// materialized only when one side registers into it) and the propagation dedup
    /// database is shared via one `Arc` bump (copied in whole by whichever side first
    /// records a propagation or evicts an expired entry). The counters are copied
    /// eagerly. Used by `Simulation::snapshot` for the PD campaign's per-pair snapshots.
    pub fn cow_clone(&self) -> Self {
        EgressGateway {
            local_as: self.local_as,
            topology: Arc::clone(&self.topology),
            signer: self.signer.clone(),
            policy: self.policy,
            db: Arc::clone(&self.db),
            path_service: self.path_service.cow_clone(),
            stats: self.stats.clone(),
            sequence: self.sequence,
        }
    }

    /// Creates an egress gateway with a single-shard path service — observably identical
    /// to the pre-sharding gateway.
    pub fn new(
        local_as: AsId,
        topology: Arc<Topology>,
        signer: Signer,
        policy: PropagationPolicy,
    ) -> Self {
        Self::with_path_shards(local_as, topology, signer, policy, 1)
    }

    /// Creates an egress gateway whose path service is split into `path_shards`
    /// destination-keyed shards (clamped to `1..=`
    /// [`crate::path_service::MAX_PATH_SHARDS`]).
    pub fn with_path_shards(
        local_as: AsId,
        topology: Arc<Topology>,
        signer: Signer,
        policy: PropagationPolicy,
        path_shards: usize,
    ) -> Self {
        EgressGateway {
            local_as,
            topology,
            signer,
            policy,
            db: Arc::new(EgressDb::new()),
            path_service: ShardedPathService::new(path_shards),
            stats: EgressStats::default(),
            sequence: 0,
        }
    }

    /// The local path service. Registration goes through `&self` (the service is sharded
    /// per destination behind interior locks), so pull-return commits no longer need
    /// mutable gateway access.
    pub fn path_service(&self) -> &ShardedPathService {
        &self.path_service
    }

    /// The gateway counters.
    pub fn stats(&self) -> &EgressStats {
        &self.stats
    }

    /// Resets the per-interface send counters (called by the simulator at period boundaries
    /// so overhead can be accounted per period).
    pub fn take_sent_counters(&mut self) -> BTreeMap<IfId, u64> {
        std::mem::take(&mut self.stats.sent_per_interface)
    }

    /// Forgets that anything was ever propagated over `egress`, so the next selection of
    /// each beacon is re-sent on that interface. Called by `Simulation::add_node` on every
    /// neighbor of a (re-)joining AS: the neighbors' dedup databases still remember sends
    /// to the node that left, but the newcomer's databases are empty — without the reset,
    /// steady-state selections (whose digests were recorded before the leave) would never
    /// be re-propagated and the rejoined AS would stay partially blind until the old
    /// beacons expire. Returns the number of per-beacon records dropped. Probes under a
    /// shared reference first, like [`EgressGateway::evict_expired`], so a no-op reset
    /// leaves a copy-on-write-shared database unmaterialized.
    pub fn forget_egress(&mut self, egress: IfId) -> usize {
        if !self.db.has_egress_records(egress) {
            return 0;
        }
        Arc::make_mut(&mut self.db).forget_egress(egress)
    }

    /// Evicts expired entries from the egress dedup database. Probes under a shared
    /// reference first: a sweep with nothing to remove leaves a copy-on-write-shared
    /// database untouched instead of materializing a private copy (the routine per-round
    /// housekeeping case for fresh snapshots).
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        if !self.db.has_expired_entries(now) {
            return 0;
        }
        Arc::make_mut(&mut self.db).evict_expired(now)
    }

    /// Originates fresh beacons according to `spec` ("PCB Initialization", §V-D): one beacon
    /// per member interface per group, carrying all metadata the AS shares plus the
    /// requested extensions, signed by the origin.
    pub fn originate(
        &mut self,
        spec: &OriginationSpec,
        now: SimTime,
        validity: SimDuration,
    ) -> Result<Vec<PcbMessage>> {
        let mut messages = Vec::new();
        for (group, interfaces) in &spec.groups {
            for &egress in interfaces {
                let link = self.topology.link_at(self.local_as, egress)?;
                let interface = self.topology.interface(self.local_as, egress)?;
                let mut extensions = spec.extensions;
                if spec.tag_groups {
                    extensions.interface_group = Some(*group);
                }
                let mut pcb = Pcb::originate(
                    self.local_as,
                    self.sequence,
                    now,
                    now + validity,
                    extensions,
                );
                self.sequence += 1;
                let info = StaticInfo::origin(
                    link.metrics.latency,
                    link.metrics.bandwidth,
                    Some(interface.location),
                );
                pcb.extend(IfId::NONE, egress, info, &self.signer)?;
                let neighbor = self.topology.neighbor_of(self.local_as, egress)?;
                *self.stats.sent_per_interface.entry(egress).or_default() += 1;
                messages.push(PcbMessage {
                    from_as: self.local_as,
                    from_if: egress,
                    to_as: neighbor.asn,
                    to_if: neighbor.interface,
                    pcb,
                });
            }
        }
        Ok(messages)
    }

    /// Processes the selections of all RACs for this round ("PCB Propagation", §V-D):
    /// registers the selected paths, returns pull-based beacons whose target is the local AS,
    /// and propagates the rest (deduplicated per egress interface, extended with the local
    /// signed hop entry, filtered by the export policy).
    pub fn process_outputs(
        &mut self,
        outputs: Vec<RacOutput>,
        now: SimTime,
    ) -> Result<(Vec<PcbMessage>, Vec<PullReturn>)> {
        let mut messages = Vec::new();
        let mut returns = Vec::new();

        for output in outputs {
            // Path registration happens for every selection — these are the paths endpoints
            // can use, whether or not the beacon is propagated further.
            self.register_path(&output, now);

            let beacon = &output.beacon;
            // Pull-based beacon reaching its target: return it to the origin instead of
            // propagating it further.
            if beacon.pcb.extensions.target == Some(self.local_as) {
                self.stats.pull_returns += 1;
                returns.push(PullReturn {
                    from_as: self.local_as,
                    to_as: beacon.pcb.origin,
                    target_ingress: beacon.ingress,
                    pcb: beacon.pcb.clone(),
                });
                continue;
            }

            // Export-policy and dedup filtering.
            let allowed: Vec<IfId> = output
                .egress_ifs
                .iter()
                .copied()
                .filter(|&egress| self.export_allowed(beacon.ingress, egress))
                .collect();
            let new_egresses =
                Arc::make_mut(&mut self.db).filter_new_egresses(&beacon.pcb, &allowed);

            for egress in new_egresses {
                match self.extend_and_send(beacon, egress, now) {
                    Ok(message) => messages.push(message),
                    Err(_) => {
                        // A single unpropagatable (e.g. topology-inconsistent) selection must
                        // not abort the whole round.
                        continue;
                    }
                }
            }
        }
        Ok((messages, returns))
    }

    fn register_path(&mut self, output: &RacOutput, now: SimTime) {
        let pcb = &output.beacon.pcb;
        let Some(destination_interface) = pcb.origin_interface() else {
            return;
        };
        self.stats.registered += 1;
        self.path_service.register(RegisteredPath {
            pcb_id: pcb.digest(),
            destination: pcb.origin,
            destination_interface,
            local_interface: output.beacon.ingress,
            algorithm: output.rac_name.clone(),
            group: output.group,
            metrics: pcb.path_metrics(),
            links: pcb.link_keys(),
            registered_at: now,
        });
    }

    /// Gao–Rexford export rules (or "all" for policy-free example topologies).
    fn export_allowed(&self, ingress: IfId, egress: IfId) -> bool {
        if ingress == egress {
            return false;
        }
        match self.policy {
            PropagationPolicy::All => true,
            PropagationPolicy::ValleyFree => {
                let Ok(in_link) = self.topology.link_at(self.local_as, ingress) else {
                    return false;
                };
                let Ok(out_link) = self.topology.link_at(self.local_as, egress) else {
                    return false;
                };
                let from_customer = in_link
                    .relationship_from(self.local_as)
                    .map(|r| r.neighbor_is_customer())
                    .unwrap_or(false);
                if from_customer {
                    // Routes learned from customers are exported to everyone.
                    true
                } else {
                    // Routes learned from providers/peers are exported to customers only.
                    out_link
                        .relationship_from(self.local_as)
                        .map(|r| r.neighbor_is_customer())
                        .unwrap_or(false)
                }
            }
        }
    }

    fn extend_and_send(
        &mut self,
        beacon: &crate::beacon_db::StoredBeacon,
        egress: IfId,
        _now: SimTime,
    ) -> Result<PcbMessage> {
        let link = self.topology.link_at(self.local_as, egress)?;
        let interface = self.topology.interface(self.local_as, egress)?;
        let node = self.topology.as_node(self.local_as)?;
        let intra = node
            .intra_latency(beacon.ingress, egress)
            .unwrap_or_default();

        let mut pcb = beacon.pcb.clone();
        let info = StaticInfo {
            link_latency: link.metrics.latency,
            link_bandwidth: link.metrics.bandwidth,
            intra_latency: intra,
            egress_location: Some(interface.location),
        };
        pcb.extend(beacon.ingress, egress, info, &self.signer)?;
        let neighbor = self.topology.neighbor_of(self.local_as, egress)?;
        *self.stats.sent_per_interface.entry(egress).or_default() += 1;
        Ok(PcbMessage {
            from_as: self.local_as,
            from_if: egress,
            to_as: neighbor.asn,
            to_if: neighbor.interface,
            pcb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beacon_db::StoredBeacon;
    use irec_crypto::{KeyRegistry, Verifier};
    use irec_topology::{Tier, TopologyBuilder};
    use irec_types::{Bandwidth, Latency};

    /// AS 2 in the middle: AS1 --(peer)-- AS2 --(peer)-- AS3, AS2 --(provider->customer)-- AS4.
    fn topology() -> Arc<Topology> {
        let t = TopologyBuilder::new()
            .with_as(1, Tier::Tier2)
            .with_as(2, Tier::Tier2)
            .with_as(3, Tier::Tier2)
            .with_as(4, Tier::Tier3)
            .link(1, 2, Latency::from_millis(10), Bandwidth::from_mbps(100))
            .link(2, 3, Latency::from_millis(10), Bandwidth::from_mbps(100))
            .provider_link(2, 4, Latency::from_millis(5), Bandwidth::from_mbps(50))
            .build();
        Arc::new(t)
    }

    fn gateway(policy: PropagationPolicy) -> (EgressGateway, KeyRegistry, Arc<Topology>) {
        let topo = topology();
        let registry = KeyRegistry::with_ases(1, 16);
        let signer = Signer::new(AsId(2), registry.clone());
        (
            EgressGateway::new(AsId(2), Arc::clone(&topo), signer, policy),
            registry,
            topo,
        )
    }

    fn received_beacon(
        registry: &KeyRegistry,
        origin: u64,
        via_egress: u32,
        local_ingress: u32,
    ) -> StoredBeacon {
        let signer = Signer::new(AsId(origin), registry.clone());
        let mut pcb = Pcb::originate(
            AsId(origin),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none(),
        );
        pcb.extend(
            IfId::NONE,
            IfId(via_egress),
            StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None),
            &signer,
        )
        .unwrap();
        StoredBeacon {
            pcb,
            ingress: IfId(local_ingress),
            received_at: SimTime::ZERO,
        }
    }

    fn output(name: &str, beacon: StoredBeacon, egress_ifs: Vec<IfId>) -> RacOutput {
        RacOutput {
            rac_name: name.to_string(),
            origin: beacon.pcb.origin,
            group: InterfaceGroupId::DEFAULT,
            beacon,
            egress_ifs,
        }
    }

    #[test]
    fn origination_creates_signed_beacons_per_interface() {
        let (mut gw, registry, topo) = gateway(PropagationPolicy::All);
        // AS2's interfaces: if1 (to AS1), if2 (to AS3), if3 (to AS4).
        let spec = OriginationSpec::plain(
            topo.as_node(AsId(2))
                .unwrap()
                .interfaces
                .keys()
                .copied()
                .collect(),
        );
        let messages = gw
            .originate(&spec, SimTime::ZERO, SimDuration::from_hours(6))
            .unwrap();
        assert_eq!(messages.len(), 3);
        let verifier = Verifier::new(registry);
        for m in &messages {
            assert_eq!(m.from_as, AsId(2));
            assert_eq!(m.pcb.origin, AsId(2));
            assert_eq!(m.pcb.len(), 1);
            m.pcb.verify(&verifier).unwrap();
            // Each beacon goes to the neighbor on the other end of the egress link.
            let neighbor = topo.neighbor_of(AsId(2), m.from_if).unwrap();
            assert_eq!(m.to_as, neighbor.asn);
        }
        assert_eq!(gw.stats().total_sent(), 3);
    }

    #[test]
    fn grouped_origination_tags_groups() {
        let (mut gw, _, _) = gateway(PropagationPolicy::All);
        let mut groups = BTreeMap::new();
        groups.insert(InterfaceGroupId(1), vec![IfId(1)]);
        groups.insert(InterfaceGroupId(2), vec![IfId(2), IfId(3)]);
        let spec = OriginationSpec::grouped(groups);
        let messages = gw
            .originate(&spec, SimTime::ZERO, SimDuration::from_hours(1))
            .unwrap();
        assert_eq!(messages.len(), 3);
        for m in &messages {
            let group = m.pcb.extensions.interface_group.unwrap();
            if m.from_if == IfId(1) {
                assert_eq!(group, InterfaceGroupId(1));
            } else {
                assert_eq!(group, InterfaceGroupId(2));
            }
        }
    }

    #[test]
    fn propagation_extends_signs_and_addresses_messages() {
        let (mut gw, registry, topo) = gateway(PropagationPolicy::All);
        let beacon = received_beacon(&registry, 1, 1, 1); // arrived on if1 (from AS1)
        let outputs = vec![output("1SP", beacon, vec![IfId(2), IfId(3)])];
        let (messages, returns) = gw.process_outputs(outputs, SimTime::ZERO).unwrap();
        assert!(returns.is_empty());
        assert_eq!(messages.len(), 2);
        let verifier = Verifier::new(registry);
        for m in &messages {
            assert_eq!(m.pcb.len(), 2);
            assert_eq!(m.pcb.last_as(), AsId(2));
            m.pcb.verify(&verifier).unwrap();
            let neighbor = topo.neighbor_of(AsId(2), m.from_if).unwrap();
            assert_eq!((m.to_as, m.to_if), (neighbor.asn, neighbor.interface));
        }
        // The path was registered and tagged.
        assert_eq!(gw.path_service().len(), 1);
        assert_eq!(gw.path_service().paths_to(AsId(1))[0].algorithm, "1SP");
    }

    #[test]
    fn egress_dedup_prevents_duplicate_propagation() {
        let (mut gw, registry, _) = gateway(PropagationPolicy::All);
        let beacon = received_beacon(&registry, 1, 1, 1);
        // Two RACs select the same beacon; the second selection adds only the new interface.
        let outputs = vec![
            output("1SP", beacon.clone(), vec![IfId(2)]),
            output("DO", beacon, vec![IfId(2), IfId(3)]),
        ];
        let (messages, _) = gw.process_outputs(outputs, SimTime::ZERO).unwrap();
        assert_eq!(messages.len(), 2);
        let sent_ifs: Vec<IfId> = messages.iter().map(|m| m.from_if).collect();
        assert!(sent_ifs.contains(&IfId(2)) && sent_ifs.contains(&IfId(3)));
        // Both RACs registered their selection.
        assert_eq!(gw.path_service().len(), 2);
    }

    #[test]
    fn never_propagates_back_on_the_ingress_interface() {
        let (mut gw, registry, _) = gateway(PropagationPolicy::All);
        let beacon = received_beacon(&registry, 1, 1, 1);
        let outputs = vec![output("1SP", beacon, vec![IfId(1)])];
        let (messages, _) = gw.process_outputs(outputs, SimTime::ZERO).unwrap();
        assert!(messages.is_empty());
    }

    #[test]
    fn valley_free_policy_restricts_exports() {
        // Beacon arrives from AS1, a *peer* of AS2: it may only be exported to customers
        // (AS4 on if3), not to the other peer AS3 (if2).
        let (mut gw, registry, _) = gateway(PropagationPolicy::ValleyFree);
        let beacon = received_beacon(&registry, 1, 1, 1);
        let outputs = vec![output("1SP", beacon, vec![IfId(2), IfId(3)])];
        let (messages, _) = gw.process_outputs(outputs, SimTime::ZERO).unwrap();
        assert_eq!(messages.len(), 1);
        assert_eq!(messages[0].from_if, IfId(3));
        assert_eq!(messages[0].to_as, AsId(4));
    }

    #[test]
    fn valley_free_customer_routes_export_everywhere() {
        // Beacon arrives from AS4, a *customer* of AS2 (on if3): exported to both peers.
        let (mut gw, registry, _) = gateway(PropagationPolicy::ValleyFree);
        let beacon = received_beacon(&registry, 4, 1, 3);
        let outputs = vec![output("1SP", beacon, vec![IfId(1), IfId(2)])];
        let (messages, _) = gw.process_outputs(outputs, SimTime::ZERO).unwrap();
        assert_eq!(messages.len(), 2);
    }

    #[test]
    fn pull_based_beacon_at_target_is_returned_not_propagated() {
        let (mut gw, registry, _) = gateway(PropagationPolicy::All);
        let signer = Signer::new(AsId(1), registry.clone());
        let mut pcb = Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none().with_target(AsId(2)),
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None),
            &signer,
        )
        .unwrap();
        let beacon = StoredBeacon {
            pcb,
            ingress: IfId(1),
            received_at: SimTime::ZERO,
        };
        let outputs = vec![output("od", beacon, vec![IfId(2), IfId(3)])];
        let (messages, returns) = gw.process_outputs(outputs, SimTime::ZERO).unwrap();
        assert!(messages.is_empty());
        assert_eq!(returns.len(), 1);
        assert_eq!(returns[0].to_as, AsId(1));
        assert_eq!(returns[0].from_as, AsId(2));
        assert_eq!(gw.stats().pull_returns, 1);
    }

    #[test]
    fn sent_counters_can_be_drained_per_period() {
        let (mut gw, registry, topo) = gateway(PropagationPolicy::All);
        let spec = OriginationSpec::plain(
            topo.as_node(AsId(2))
                .unwrap()
                .interfaces
                .keys()
                .copied()
                .collect(),
        );
        gw.originate(&spec, SimTime::ZERO, SimDuration::from_hours(1))
            .unwrap();
        let beacon = received_beacon(&registry, 1, 1, 1);
        gw.process_outputs(vec![output("1SP", beacon, vec![IfId(2)])], SimTime::ZERO)
            .unwrap();
        let counters = gw.take_sent_counters();
        assert_eq!(counters.values().sum::<u64>(), 4);
        // Drained: the next period starts from zero.
        assert_eq!(gw.stats().total_sent(), 0);
    }
}
