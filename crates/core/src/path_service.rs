//! The path service: where the egress gateway registers discovered paths so that endpoints
//! can query them (§III "Endpoint Path Selection", §V-D "Path Registration").

use irec_pcb::PcbId;
use irec_types::{AsId, IfId, InterfaceGroupId, PathMetrics, SimTime};
use std::collections::BTreeMap;

/// A path registered at the local path service, tagged with the criteria (RAC) it was
/// optimized for.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredPath {
    /// Identity of the underlying beacon.
    pub pcb_id: PcbId,
    /// The destination AS this path leads to (the beacon's origin).
    pub destination: AsId,
    /// The beacon interface at the destination (the first hop's egress interface).
    pub destination_interface: IfId,
    /// The local interface the beacon arrived on.
    pub local_interface: IfId,
    /// The RAC / algorithm that selected the path (the "set of criteria" tag).
    pub algorithm: String,
    /// The origin interface group of the beacon.
    pub group: InterfaceGroupId,
    /// Accumulated path metrics.
    pub metrics: PathMetrics,
    /// Traversed inter-domain links, identified by `(AS, egress interface)`.
    pub links: Vec<(AsId, IfId)>,
    /// When the path was (last) registered.
    pub registered_at: SimTime,
}

/// Key limiting registrations: the paper caps registered paths "per RAC, origin AS, and
/// interface group" (20 in the evaluation).
type RegistrationKey = (String, AsId, InterfaceGroupId);

/// The path service of one AS.
#[derive(Debug, Default)]
pub struct PathService {
    limit_per_key: usize,
    paths: BTreeMap<RegistrationKey, Vec<RegisteredPath>>,
}

impl PathService {
    /// Creates a path service with the paper's default limit of 20 paths per
    /// (RAC, destination, interface group).
    pub fn new() -> Self {
        Self::with_limit(20)
    }

    /// Creates a path service with a custom per-key limit.
    pub fn with_limit(limit_per_key: usize) -> Self {
        PathService {
            limit_per_key: limit_per_key.max(1),
            paths: BTreeMap::new(),
        }
    }

    /// Registers (or refreshes) a path. When the per-key limit is reached, the stalest
    /// registration is evicted — paths that keep being selected stay registered, paths that
    /// stop being selected age out.
    ///
    /// Re-originated beacons describing the same inter-domain path (identical link sequence)
    /// refresh the existing registration instead of creating a duplicate, mirroring how
    /// SCION path segments are refreshed rather than multiplied.
    pub fn register(&mut self, path: RegisteredPath) {
        let key = (path.algorithm.clone(), path.destination, path.group);
        let entry = self.paths.entry(key).or_default();
        if let Some(existing) = entry
            .iter_mut()
            .find(|p| p.pcb_id == path.pcb_id || p.links == path.links)
        {
            // Refresh: update the registration time and metrics (the beacon may carry fresher
            // metadata after re-origination).
            existing.pcb_id = path.pcb_id;
            existing.registered_at = path.registered_at;
            existing.metrics = path.metrics;
            return;
        }
        if entry.len() >= self.limit_per_key {
            // Evict the stalest registration.
            if let Some((idx, _)) = entry
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.registered_at)
            {
                entry.remove(idx);
            }
        }
        entry.push(path);
    }

    /// All paths towards `destination`, across all RACs and groups.
    pub fn paths_to(&self, destination: AsId) -> Vec<&RegisteredPath> {
        self.paths
            .iter()
            .filter(|((_, dst, _), _)| *dst == destination)
            .flat_map(|(_, v)| v.iter())
            .collect()
    }

    /// All paths towards `destination` registered by a specific RAC.
    pub fn paths_to_by(&self, destination: AsId, algorithm: &str) -> Vec<&RegisteredPath> {
        self.paths
            .iter()
            .filter(|((alg, dst, _), _)| *dst == destination && alg == algorithm)
            .flat_map(|(_, v)| v.iter())
            .collect()
    }

    /// Every registered path.
    pub fn all(&self) -> Vec<&RegisteredPath> {
        self.paths.values().flat_map(|v| v.iter()).collect()
    }

    /// Total number of registered paths.
    pub fn len(&self) -> usize {
        self.paths.values().map(Vec::len).sum()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distinct destination ASes reachable through registered paths.
    pub fn destinations(&self) -> Vec<AsId> {
        let mut v: Vec<AsId> = self.paths.keys().map(|(_, dst, _)| *dst).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::Digest;
    use irec_types::{Bandwidth, Latency};

    fn path(dst: u64, alg: &str, id_byte: u8, at_s: u64) -> RegisteredPath {
        let mut digest = [0u8; 32];
        digest[0] = id_byte;
        RegisteredPath {
            pcb_id: PcbId(Digest(digest)),
            destination: AsId(dst),
            destination_interface: IfId(1),
            local_interface: IfId(2),
            algorithm: alg.to_string(),
            group: InterfaceGroupId::DEFAULT,
            metrics: PathMetrics {
                latency: Latency::from_millis(10),
                bandwidth: Bandwidth::from_mbps(100),
                hops: 2,
            },
            links: vec![(AsId(dst), IfId(id_byte as u32))],
            registered_at: SimTime::from_micros(at_s * 1_000_000),
        }
    }

    #[test]
    fn register_and_query() {
        let mut ps = PathService::new();
        ps.register(path(1, "1SP", 1, 0));
        ps.register(path(1, "DO", 2, 0));
        ps.register(path(2, "1SP", 3, 0));
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.paths_to(AsId(1)).len(), 2);
        assert_eq!(ps.paths_to_by(AsId(1), "DO").len(), 1);
        assert_eq!(ps.destinations(), vec![AsId(1), AsId(2)]);
        assert!(!ps.is_empty());
    }

    #[test]
    fn re_registration_refreshes_instead_of_duplicating() {
        let mut ps = PathService::new();
        ps.register(path(1, "1SP", 1, 0));
        ps.register(path(1, "1SP", 1, 5));
        assert_eq!(ps.len(), 1);
        assert_eq!(
            ps.paths_to(AsId(1))[0].registered_at,
            SimTime::from_micros(5_000_000)
        );
    }

    #[test]
    fn limit_evicts_stalest() {
        let mut ps = PathService::with_limit(2);
        ps.register(path(1, "HD", 1, 0));
        ps.register(path(1, "HD", 2, 10));
        ps.register(path(1, "HD", 3, 20));
        assert_eq!(ps.len(), 2);
        let ids: Vec<u8> = ps
            .paths_to(AsId(1))
            .iter()
            .map(|p| p.pcb_id.0 .0[0])
            .collect();
        assert!(!ids.contains(&1), "stalest registration must be evicted");
        assert!(ids.contains(&2) && ids.contains(&3));
    }

    #[test]
    fn limits_apply_per_key_not_globally() {
        let mut ps = PathService::with_limit(1);
        ps.register(path(1, "1SP", 1, 0));
        ps.register(path(1, "DO", 2, 0));
        ps.register(path(2, "1SP", 3, 0));
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn empty_service() {
        let ps = PathService::new();
        assert!(ps.is_empty());
        assert!(ps.paths_to(AsId(1)).is_empty());
        assert!(ps.destinations().is_empty());
    }
}
