//! The path service: where the egress gateway registers discovered paths so that endpoints
//! can query them (§III "Endpoint Path Selection", §V-D "Path Registration").
//!
//! The service is sharded **per destination AS** behind the [`ShardedPathService`] facade —
//! the same recipe as [`crate::beacon_db::ShardedIngressDb`], which shards per origin AS.
//! Every registration for one destination lands in the same shard (deterministic
//! `splitmix64` placement), so pull returns and RAC registrations targeting *different*
//! destinations commit concurrently through `&self`, while the facade preserves the
//! single-map API with iteration order byte-identical to an unsharded [`PathService`] for
//! any shard count.

use crate::beacon_db::splitmix64;
use irec_pcb::PcbId;
use irec_types::{AsId, IfId, InterfaceGroupId, PathMetrics, SimTime};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A path registered at the local path service, tagged with the criteria (RAC) it was
/// optimized for.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredPath {
    /// Identity of the underlying beacon.
    pub pcb_id: PcbId,
    /// The destination AS this path leads to (the beacon's origin).
    pub destination: AsId,
    /// The beacon interface at the destination (the first hop's egress interface).
    pub destination_interface: IfId,
    /// The local interface the beacon arrived on.
    pub local_interface: IfId,
    /// The RAC / algorithm that selected the path (the "set of criteria" tag).
    pub algorithm: String,
    /// The origin interface group of the beacon.
    pub group: InterfaceGroupId,
    /// Accumulated path metrics.
    pub metrics: PathMetrics,
    /// Traversed inter-domain links, identified by `(AS, egress interface)`.
    pub links: Vec<(AsId, IfId)>,
    /// When the path was (last) registered.
    pub registered_at: SimTime,
}

/// Key limiting registrations: the paper caps registered paths "per RAC, origin AS, and
/// interface group" (20 in the evaluation).
type RegistrationKey = (String, AsId, InterfaceGroupId);

/// The default per-key registration limit of the paper's evaluation.
const DEFAULT_LIMIT_PER_KEY: usize = 20;

/// The path service of one AS (one shard of a [`ShardedPathService`], or a standalone
/// unsharded reference).
#[derive(Debug, Clone, Default)]
pub struct PathService {
    limit_per_key: usize,
    paths: BTreeMap<RegistrationKey, Vec<RegisteredPath>>,
    /// Registrations evicted because their key hit the per-key limit.
    evicted: u64,
}

impl PathService {
    /// Creates a path service with the paper's default limit of 20 paths per
    /// (RAC, destination, interface group).
    pub fn new() -> Self {
        Self::with_limit(DEFAULT_LIMIT_PER_KEY)
    }

    /// Creates a path service with a custom per-key limit.
    pub fn with_limit(limit_per_key: usize) -> Self {
        PathService {
            limit_per_key: limit_per_key.max(1),
            paths: BTreeMap::new(),
            evicted: 0,
        }
    }

    /// Registers (or refreshes) a path. When the per-key limit is reached, the stalest
    /// registration is evicted — paths that keep being selected stay registered, paths that
    /// stop being selected age out.
    ///
    /// Re-originated beacons describing the same inter-domain path (identical link sequence)
    /// refresh the existing registration instead of creating a duplicate, mirroring how
    /// SCION path segments are refreshed rather than multiplied.
    pub fn register(&mut self, path: RegisteredPath) {
        let key = (path.algorithm.clone(), path.destination, path.group);
        let entry = self.paths.entry(key).or_default();
        if let Some(existing) = entry
            .iter_mut()
            .find(|p| p.pcb_id == path.pcb_id || p.links == path.links)
        {
            // Refresh: update the registration time and metrics (the beacon may carry fresher
            // metadata after re-origination).
            existing.pcb_id = path.pcb_id;
            existing.registered_at = path.registered_at;
            existing.metrics = path.metrics;
            return;
        }
        if entry.len() >= self.limit_per_key {
            // Evict the stalest registration.
            if let Some((idx, _)) = entry
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.registered_at)
            {
                entry.remove(idx);
                self.evicted += 1;
            }
        }
        entry.push(path);
    }

    /// All paths towards `destination`, across all RACs and groups.
    pub fn paths_to(&self, destination: AsId) -> Vec<&RegisteredPath> {
        self.paths
            .iter()
            .filter(|((_, dst, _), _)| *dst == destination)
            .flat_map(|(_, v)| v.iter())
            .collect()
    }

    /// All paths towards `destination` registered by a specific RAC.
    pub fn paths_to_by(&self, destination: AsId, algorithm: &str) -> Vec<&RegisteredPath> {
        self.paths
            .iter()
            .filter(|((alg, dst, _), _)| *dst == destination && alg == algorithm)
            .flat_map(|(_, v)| v.iter())
            .collect()
    }

    /// Every registered path.
    pub fn all(&self) -> Vec<&RegisteredPath> {
        self.paths.values().flat_map(|v| v.iter()).collect()
    }

    /// Total number of registered paths.
    pub fn len(&self) -> usize {
        self.paths.values().map(Vec::len).sum()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distinct destination ASes reachable through registered paths.
    pub fn destinations(&self) -> Vec<AsId> {
        let mut v: Vec<AsId> = self.paths.keys().map(|(_, dst, _)| *dst).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Number of registrations evicted so far because their key hit the per-key limit.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// Owned snapshots of every `(key, registrations)` entry, in key order (the sharded
    /// facade merges these across shards).
    fn entries(&self) -> Vec<(RegistrationKey, Vec<RegisteredPath>)> {
        self.paths
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Hard cap on path-service shards, matching the ingress database's cap: beyond this the
/// per-shard maps are so small that the fan-out bookkeeping dominates any concurrency win.
pub const MAX_PATH_SHARDS: usize = 256;

/// A sharded path service: `N` independent [`PathService`] shards keyed by
/// **destination-AS** hash, each an `Arc`-wrapped map behind its own `parking_lot::RwLock`.
///
/// Every registration towards one destination lands in the same shard (the registered
/// path's `destination` determines placement via the same deterministic `splitmix64`
/// finalizer the ingress database uses), so registrations — RAC selections and pull
/// returns alike — for *different* destinations are independent and can commit
/// concurrently through `&self`. The facade preserves the single-map API with
/// **deterministic, shard-merged iteration order**: [`ShardedPathService::all`] returns
/// the global ascending `(algorithm, destination, group)` key order (keys are globally
/// unique and each lives in exactly one shard, so sorting the merged entries reproduces
/// exactly what one `BTreeMap` would iterate), per-destination queries stay entirely
/// within the destination's shard (whose relative key order already matches the single
/// map), and counters reduce over shards in fixed index order. A service with any shard
/// count is observably byte-identical to the unsharded reference — pinned by the proptest
/// suite in `crates/core/tests/proptests.rs`.
///
/// Like the ingress database, each shard is an `Arc<PathService>` so
/// [`ShardedPathService::cow_clone`] can hand out structurally shared copy-on-write
/// snapshots in O(shards) reference-count bumps; a shard is deep-copied only when a
/// service that still shares it registers a path into it ([`Arc::make_mut`] semantics).
#[derive(Debug)]
pub struct ShardedPathService {
    shards: Vec<RwLock<Arc<PathService>>>,
}

impl Default for ShardedPathService {
    /// A single-shard service — observably identical to a plain [`PathService`].
    fn default() -> Self {
        ShardedPathService::new(1)
    }
}

impl Clone for ShardedPathService {
    /// Deep-clones every shard's contents (the pre-snapshot behaviour, kept as the
    /// reference the COW path is benchmarked and tested against). The clone shares nothing
    /// with the original. Prefer [`ShardedPathService::cow_clone`] for snapshotting.
    fn clone(&self) -> Self {
        ShardedPathService {
            shards: self
                .shards
                .iter()
                .map(|shard| RwLock::new(Arc::new(shard.read().as_ref().clone())))
                .collect(),
        }
    }
}

impl ShardedPathService {
    /// Creates an empty service with `shards` shards (clamped to `1..=`
    /// [`MAX_PATH_SHARDS`]) and the paper's default per-key limit. Any shard count —
    /// powers of two or not — yields the same observable contents; the count only changes
    /// how concurrent registration can get.
    pub fn new(shards: usize) -> Self {
        Self::with_limit(DEFAULT_LIMIT_PER_KEY, shards)
    }

    /// Creates an empty service with a custom per-key limit and shard count.
    pub fn with_limit(limit_per_key: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_PATH_SHARDS);
        ShardedPathService {
            shards: (0..shards)
                .map(|_| RwLock::new(Arc::new(PathService::with_limit(limit_per_key))))
                .collect(),
        }
    }

    /// A structurally shared copy-on-write snapshot: O(shards) reference-count bumps, no
    /// map copies. Both services keep full read access to the shared shards; whichever
    /// side registers into a still-shared shard first materializes its own copy of just
    /// that shard, so neither can observe the other's subsequent registrations.
    pub fn cow_clone(&self) -> Self {
        ShardedPathService {
            shards: self
                .shards
                .iter()
                .map(|shard| RwLock::new(Arc::clone(&shard.read())))
                .collect(),
        }
    }

    /// Whether shard `shard` is still the same allocation in `self` and `other` —
    /// i.e. neither side has registered into it since a [`ShardedPathService::cow_clone`]
    /// tied them together. Introspection for the COW isolation tests and the
    /// snapshot-cost benchmark.
    pub fn shares_shard_with(&self, other: &ShardedPathService, shard: usize) -> bool {
        Arc::ptr_eq(&self.shards[shard].read(), &other.shards[shard].read())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index paths towards `destination` live in.
    pub fn shard_of(&self, destination: AsId) -> usize {
        (splitmix64(destination.value()) % self.shards.len() as u64) as usize
    }

    /// Registers (or refreshes) a path in its destination's shard. Takes `&self`:
    /// concurrent registrations for different destinations' shards do not contend.
    pub fn register(&self, path: RegisteredPath) {
        let shard = self.shard_of(path.destination);
        self.register_in_shard(shard, path);
    }

    /// [`ShardedPathService::register`] with the shard precomputed by the caller (the
    /// delivery plane partitions a whole epoch's pull returns by shard before fanning the
    /// commits out).
    pub fn register_in_shard(&self, shard: usize, path: RegisteredPath) {
        debug_assert_eq!(
            shard,
            self.shard_of(path.destination),
            "path registered in a foreign shard"
        );
        Arc::make_mut(&mut *self.shards[shard].write()).register(path);
    }

    /// All paths towards `destination`, across all RACs and groups — entirely within the
    /// destination's shard, in the same `(algorithm, group)` order as the unsharded map.
    pub fn paths_to(&self, destination: AsId) -> Vec<RegisteredPath> {
        self.shards[self.shard_of(destination)]
            .read()
            .paths_to(destination)
            .into_iter()
            .cloned()
            .collect()
    }

    /// All paths towards `destination` registered by a specific RAC.
    pub fn paths_to_by(&self, destination: AsId, algorithm: &str) -> Vec<RegisteredPath> {
        self.shards[self.shard_of(destination)]
            .read()
            .paths_to_by(destination, algorithm)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Every registered path, in the global ascending `(algorithm, destination, group)`
    /// key order — byte-identical to what the unsharded map iterates, for any shard count.
    pub fn all(&self) -> Vec<RegisteredPath> {
        let mut entries: Vec<(RegistrationKey, Vec<RegisteredPath>)> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().entries())
            .collect();
        // Keys are globally unique (each destination lives in exactly one shard), so this
        // sort is a pure merge reproducing the single-map BTreeMap order.
        entries.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        entries.into_iter().flat_map(|(_, paths)| paths).collect()
    }

    /// Total number of registered paths, reduced over shards in index order.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of paths registered in one shard (occupancy introspection for tests and the
    /// sharding stress suite).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].read().len()
    }

    /// The distinct destination ASes reachable through registered paths, ascending.
    pub fn destinations(&self) -> Vec<AsId> {
        let mut v: Vec<AsId> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().destinations())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total number of limit evictions, reduced over shards in index order — the
    /// shard-count-independent figure the unsharded service would report.
    pub fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| shard.read().evictions())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::Digest;
    use irec_types::{Bandwidth, Latency};

    fn path(dst: u64, alg: &str, id_byte: u8, at_s: u64) -> RegisteredPath {
        let mut digest = [0u8; 32];
        digest[0] = id_byte;
        RegisteredPath {
            pcb_id: PcbId(Digest(digest)),
            destination: AsId(dst),
            destination_interface: IfId(1),
            local_interface: IfId(2),
            algorithm: alg.to_string(),
            group: InterfaceGroupId::DEFAULT,
            metrics: PathMetrics {
                latency: Latency::from_millis(10),
                bandwidth: Bandwidth::from_mbps(100),
                hops: 2,
            },
            links: vec![(AsId(dst), IfId(id_byte as u32))],
            registered_at: SimTime::from_micros(at_s * 1_000_000),
        }
    }

    #[test]
    fn register_and_query() {
        let mut ps = PathService::new();
        ps.register(path(1, "1SP", 1, 0));
        ps.register(path(1, "DO", 2, 0));
        ps.register(path(2, "1SP", 3, 0));
        assert_eq!(ps.len(), 3);
        assert_eq!(ps.paths_to(AsId(1)).len(), 2);
        assert_eq!(ps.paths_to_by(AsId(1), "DO").len(), 1);
        assert_eq!(ps.destinations(), vec![AsId(1), AsId(2)]);
        assert!(!ps.is_empty());
    }

    #[test]
    fn re_registration_refreshes_instead_of_duplicating() {
        let mut ps = PathService::new();
        ps.register(path(1, "1SP", 1, 0));
        ps.register(path(1, "1SP", 1, 5));
        assert_eq!(ps.len(), 1);
        assert_eq!(
            ps.paths_to(AsId(1))[0].registered_at,
            SimTime::from_micros(5_000_000)
        );
    }

    #[test]
    fn limit_evicts_stalest() {
        let mut ps = PathService::with_limit(2);
        ps.register(path(1, "HD", 1, 0));
        ps.register(path(1, "HD", 2, 10));
        ps.register(path(1, "HD", 3, 20));
        assert_eq!(ps.len(), 2);
        let ids: Vec<u8> = ps
            .paths_to(AsId(1))
            .iter()
            .map(|p| p.pcb_id.0 .0[0])
            .collect();
        assert!(!ids.contains(&1), "stalest registration must be evicted");
        assert!(ids.contains(&2) && ids.contains(&3));
    }

    #[test]
    fn limits_apply_per_key_not_globally() {
        let mut ps = PathService::with_limit(1);
        ps.register(path(1, "1SP", 1, 0));
        ps.register(path(1, "DO", 2, 0));
        ps.register(path(2, "1SP", 3, 0));
        assert_eq!(ps.len(), 3);
    }

    #[test]
    fn empty_service() {
        let ps = PathService::new();
        assert!(ps.is_empty());
        assert!(ps.paths_to(AsId(1)).is_empty());
        assert!(ps.destinations().is_empty());
    }

    #[test]
    fn eviction_counter_tracks_limit_evictions_only() {
        let mut ps = PathService::with_limit(2);
        ps.register(path(1, "HD", 1, 0));
        ps.register(path(1, "HD", 2, 10));
        assert_eq!(ps.evictions(), 0);
        ps.register(path(1, "HD", 3, 20));
        assert_eq!(ps.evictions(), 1);
        // A refresh never evicts.
        ps.register(path(1, "HD", 3, 30));
        assert_eq!(ps.evictions(), 1);
    }

    #[test]
    fn sharded_service_clamps_shard_count_and_places_destinations_stably() {
        assert_eq!(ShardedPathService::new(0).shard_count(), 1);
        assert_eq!(
            ShardedPathService::new(100_000).shard_count(),
            MAX_PATH_SHARDS
        );
        let ps = ShardedPathService::new(7);
        for destination in 1..200u64 {
            let shard = ps.shard_of(AsId(destination));
            assert!(shard < 7);
            // Placement is a pure function of the destination.
            assert_eq!(ps.shard_of(AsId(destination)), shard);
        }
        // The hash actually spreads destinations (not everything in one shard).
        let used: std::collections::HashSet<usize> =
            (1..200u64).map(|d| ps.shard_of(AsId(d))).collect();
        assert!(used.len() > 1);
    }

    #[test]
    fn sharded_service_matches_single_map_for_any_shard_count() {
        for shards in [1usize, 2, 4, 7, 16] {
            let mut reference = PathService::with_limit(2);
            let sharded = ShardedPathService::with_limit(2, shards);
            for destination in 1..=6u64 {
                for (id_byte, alg) in [(1u8, "1SP"), (2, "HD"), (3, "HD"), (4, "HD"), (2, "PD")] {
                    let p = path(destination, alg, id_byte, u64::from(id_byte));
                    reference.register(p.clone());
                    sharded.register(p);
                }
            }
            assert_eq!(sharded.len(), reference.len(), "len at {shards} shards");
            assert_eq!(
                sharded.all(),
                reference.all().into_iter().cloned().collect::<Vec<_>>()
            );
            assert_eq!(sharded.destinations(), reference.destinations());
            assert_eq!(sharded.evictions(), reference.evictions());
            for destination in 1..=6u64 {
                assert_eq!(
                    sharded.paths_to(AsId(destination)),
                    reference
                        .paths_to(AsId(destination))
                        .into_iter()
                        .cloned()
                        .collect::<Vec<_>>()
                );
                assert_eq!(
                    sharded.paths_to_by(AsId(destination), "HD"),
                    reference
                        .paths_to_by(AsId(destination), "HD")
                        .into_iter()
                        .cloned()
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn sharded_service_clone_shares_nothing() {
        let ps = ShardedPathService::new(4);
        ps.register(path(1, "1SP", 1, 0));
        let cloned = ps.clone();
        assert_eq!(cloned.len(), 1);
        cloned.register(path(2, "1SP", 2, 0));
        assert_eq!(cloned.len(), 2);
        assert_eq!(ps.len(), 1, "clone mutations must not leak back");
        // A deep clone shares no shard allocation even before any write.
        let fresh = ps.clone();
        assert!((0..4).all(|s| !fresh.shares_shard_with(&ps, s)));
    }

    #[test]
    fn cow_clone_shares_shards_until_first_registration_in_either_direction() {
        let base = ShardedPathService::new(7);
        for destination in 1..=10u64 {
            base.register(path(destination, "1SP", 1, 0));
        }
        let snap = base.cow_clone();
        assert!((0..7).all(|s| snap.shares_shard_with(&base, s)));
        assert_eq!(snap.all(), base.all());

        // Snapshot registration: only the destination's shard un-shares.
        snap.register(path(1, "PD", 2, 5));
        let touched = snap.shard_of(AsId(1));
        for s in 0..7 {
            assert_eq!(snap.shares_shard_with(&base, s), s != touched);
        }
        assert_eq!(base.paths_to(AsId(1)).len(), 1);
        assert_eq!(snap.paths_to(AsId(1)).len(), 2);

        // Base registration after the snapshot: copies on the base side only.
        let other = base.shard_of(AsId(2));
        assert_ne!(other, touched, "test destinations 1 and 2 must spread");
        base.register(path(2, "PD", 3, 5));
        assert!(!snap.shares_shard_with(&base, other));
        assert_eq!(snap.paths_to(AsId(2)).len(), 1);
        assert_eq!(base.paths_to(AsId(2)).len(), 2);
    }
}
