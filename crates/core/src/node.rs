//! The per-AS IREC node: ingress gateway + RACs + egress gateway + path service, driven in
//! rounds by the simulator.

use crate::config::{NodeConfig, RacConfig, RacKind};
use crate::egress::{EgressGateway, OriginationSpec};
use crate::engine::SelectionTables;
use crate::ingress::IngressGateway;
use crate::messages::{PcbMessage, PullReturn};
use crate::path_service::{RegisteredPath, ShardedPathService};
use crate::rac::{AlgorithmFetcher, Rac, RacTiming, SharedAlgorithmStore};
use irec_algorithms::incremental::{IncrementalStats, SelectionDelta};
use irec_crypto::{KeyRegistry, Signer, Verifier};
use irec_irvm::Program;
use irec_pcb::AlgorithmRef;
use irec_topology::{InterfaceGroups, Topology};
use irec_types::{AlgorithmId, AsId, IfId, Result, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Minimum ingress-database occupancy before the per-round eviction sweep fans out over
/// shard worker threads; below this the serial sweep is faster than the thread spawns.
const PARALLEL_EVICTION_MIN_OCCUPANCY: usize = 1024;

/// Everything one beaconing round of a node produces, for the simulator to deliver and
/// account.
#[derive(Debug, Default)]
pub struct RoundOutput {
    /// PCBs to deliver to neighboring ASes.
    pub messages: Vec<PcbMessage>,
    /// Pull-based beacons to return to their origin ASes.
    pub pull_returns: Vec<PullReturn>,
    /// PCBs sent per local egress interface during this round (Fig. 8c accounting).
    pub sent_per_interface: BTreeMap<IfId, u64>,
    /// Accumulated RAC processing timings of the round.
    pub timing: RacTiming,
}

/// The control plane of a single AS.
pub struct IrecNode {
    asn: AsId,
    config: NodeConfig,
    topology: Arc<Topology>,
    ingress: IngressGateway,
    egress: EgressGateway,
    racs: Vec<Rac>,
    /// Interface groups this AS originates with (flexible granularity, §IV-D).
    interface_groups: Option<InterfaceGroups>,
    /// Additional origination specs (pull-based / on-demand requests), beyond the periodic
    /// plain origination. Each entry is originated every round until removed.
    extra_originations: Vec<OriginationSpec>,
    /// The store this node publishes its own on-demand algorithm modules to.
    algorithm_store: SharedAlgorithmStore,
    /// Per-RAC incremental selection tables, present iff the config enables
    /// `incremental_selection`. Probed and updated by the RAC engine's serial phases,
    /// invalidated by [`IrecNode::apply_selection_delta`], aged by round housekeeping.
    selection_tables: Option<SelectionTables>,
    round: u64,
}

impl Clone for IrecNode {
    /// Deep-clones the node's mutable state — ingress/egress databases, path service, RAC
    /// caches, counters — so a cloned simulation snapshot evolves independently of the
    /// original (the parallel PD campaign runs one clone per `(origin, target)` pair).
    ///
    /// Two pieces stay **shared** by design: the topology (immutable) and the on-demand
    /// algorithm store (a shared publish/fetch registry keyed by `(origin, algorithm id)`;
    /// publishers must use distinct ids across concurrently-running clones, which the PD
    /// campaign guarantees via per-pair id bases).
    fn clone(&self) -> Self {
        IrecNode {
            asn: self.asn,
            config: self.config.clone(),
            topology: Arc::clone(&self.topology),
            ingress: self.ingress.clone(),
            egress: self.egress.clone(),
            racs: self.racs.clone(),
            interface_groups: self.interface_groups.clone(),
            extra_originations: self.extra_originations.clone(),
            algorithm_store: self.algorithm_store.clone(),
            selection_tables: self.selection_tables.clone(),
            round: self.round,
        }
    }
}

impl IrecNode {
    /// A copy-on-write clone of the node: the ingress database and path service share
    /// their shards structurally with the original (O(shards) pointer copies each, via
    /// [`IngressGateway::cow_clone`] / [`EgressGateway::cow_clone`]), and a shard is
    /// materialized only when one side writes to it. The small remaining state — RAC
    /// caches, counters, origination specs — is copied eagerly, and the topology and
    /// algorithm store stay shared exactly as in [`Clone`]. This is the per-node building
    /// block of `Simulation::snapshot`.
    pub fn cow_clone(&self) -> Self {
        IrecNode {
            asn: self.asn,
            config: self.config.clone(),
            topology: Arc::clone(&self.topology),
            ingress: self.ingress.cow_clone(),
            egress: self.egress.cow_clone(),
            racs: self.racs.clone(),
            interface_groups: self.interface_groups.clone(),
            extra_originations: self.extra_originations.clone(),
            algorithm_store: self.algorithm_store.clone(),
            selection_tables: self.selection_tables.clone(),
            round: self.round,
        }
    }

    /// Creates a node for `asn` with the given configuration.
    ///
    /// `registry` is the shared control-plane PKI; `store` the shared on-demand algorithm
    /// store (publish/fetch).
    pub fn new(
        asn: AsId,
        config: NodeConfig,
        topology: Arc<Topology>,
        registry: KeyRegistry,
        store: SharedAlgorithmStore,
    ) -> Result<Self> {
        let signer = Signer::new(asn, registry.clone());
        let verifier = Verifier::new(registry);
        let racs = build_racs(&config.racs, config.irec_enabled, &store)?;
        let ingress = IngressGateway::with_shards(asn, verifier, config.ingress_shard_count());
        let egress = EgressGateway::with_path_shards(
            asn,
            Arc::clone(&topology),
            signer,
            config.policy,
            config.path_shard_count(),
        );
        let selection_tables = config
            .incremental_selection
            .then(|| SelectionTables::for_racs(&racs));
        Ok(IrecNode {
            asn,
            config,
            topology,
            ingress,
            egress,
            racs,
            interface_groups: None,
            extra_originations: Vec::new(),
            algorithm_store: store,
            selection_tables,
            round: 0,
        })
    }

    /// The AS this node belongs to.
    pub fn asn(&self) -> AsId {
        self.asn
    }

    /// The node configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// The node's path service (registered paths available to endpoints).
    pub fn path_service(&self) -> &ShardedPathService {
        self.egress.path_service()
    }

    /// The ingress gateway (exposed for tests and the simulator's bootstrap).
    pub fn ingress(&self) -> &IngressGateway {
        &self.ingress
    }

    /// Number of beaconing rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Configures the interface groups this AS originates with. `None` (the default) means
    /// plain origination without group tags.
    pub fn set_interface_groups(&mut self, groups: Option<InterfaceGroups>) {
        self.interface_groups = groups;
    }

    /// Publishes an on-demand algorithm module under this AS's identity and returns the
    /// reference to embed in originated PCBs.
    pub fn publish_algorithm(&self, id: AlgorithmId, program: &Program) -> AlgorithmRef {
        self.algorithm_store
            .publish(self.asn, id, program.to_module_bytes())
    }

    /// Adds an extra origination spec (e.g. a pull-based/on-demand request towards a target).
    /// It is originated every round until [`IrecNode::clear_extra_originations`] is called.
    pub fn add_origination(&mut self, spec: OriginationSpec) {
        self.extra_originations.push(spec);
    }

    /// Removes all extra origination specs.
    pub fn clear_extra_originations(&mut self) {
        self.extra_originations.clear();
    }

    /// Handles a PCB received from a neighbor. Verification/policy failures are reported but
    /// are not fatal to the node.
    ///
    /// Equivalent to [`IrecNode::verify_message`] followed by [`IrecNode::apply_message`];
    /// the simulator's delivery plane runs the two stages separately so the expensive
    /// verification fans out over worker threads while the commit stays serial.
    pub fn handle_message(&mut self, message: PcbMessage, now: SimTime) -> Result<()> {
        let verdict = self.verify_message(&message, now);
        self.apply_message(message, now, verdict)
    }

    /// The pure verification stage of message handling: signature, expiry and policy checks
    /// against immutable node state. Safe to run concurrently for many messages — the
    /// verdict must not depend on what other in-flight messages of the same delivery epoch
    /// will commit (dedup and statistics live in [`IrecNode::apply_message`]).
    pub fn verify_message(&self, message: &PcbMessage, now: SimTime) -> Result<()> {
        self.ingress.verify(&message.pcb, now)
    }

    /// The apply stage of message handling: accounts the precomputed `verdict` and, on
    /// success, commits the beacon to the ingress database. Messages of one origin must be
    /// applied in delivery order; messages whose origins hash to different ingress shards
    /// are independent.
    pub fn apply_message(
        &mut self,
        message: PcbMessage,
        now: SimTime,
        verdict: Result<()>,
    ) -> Result<()> {
        self.ingress
            .commit(message.pcb, message.to_if, now, verdict)
    }

    /// Number of shards of this node's ingress database.
    pub fn ingress_shard_count(&self) -> usize {
        self.ingress.db().shard_count()
    }

    /// The ingress shard a beacon from `origin` commits to.
    pub fn ingress_shard_of(&self, origin: irec_types::AsId) -> usize {
        self.ingress.db().shard_of(origin)
    }

    /// [`IrecNode::apply_message`] with the shard precomputed by the caller, through
    /// `&self`: the delivery plane's sharded apply stage commits per-shard inboxes of a
    /// whole epoch concurrently — different `(node, shard)` pairs never contend, and the
    /// per-shard delivery order is preserved by the caller.
    pub fn apply_message_in_shard(
        &self,
        shard: usize,
        message: PcbMessage,
        now: SimTime,
        verdict: Result<()>,
    ) -> Result<()> {
        self.ingress
            .commit_in_shard(shard, message.pcb, message.to_if, now, verdict)
    }

    /// Handles a pull-based beacon returned by its target (§IV-B): the completed path is
    /// registered at the local path service, tagged as pull-based. Takes `&self` — the
    /// path service is sharded per destination behind interior locks, so pull-return
    /// commits for different destinations can run concurrently (the delivery plane's
    /// sharded apply stage relies on this).
    pub fn handle_pull_return(&self, ret: PullReturn, now: SimTime) {
        let shard = self.path_shard_of(ret.from_as);
        self.handle_pull_return_in_shard(shard, ret, now);
    }

    /// [`IrecNode::handle_pull_return`] with the path-service shard precomputed by the
    /// caller (the delivery plane partitions a whole epoch's pull returns into
    /// per-`(destination AS, path shard)` inboxes before fanning the commits out).
    /// Registrations for the same shard must be applied in delivery order; different
    /// shards never contend.
    pub fn handle_pull_return_in_shard(&self, shard: usize, ret: PullReturn, now: SimTime) {
        let pcb = &ret.pcb;
        let Some(origin_interface) = pcb.origin_interface() else {
            return;
        };
        // The returned beacon describes a path from this AS (the beacon origin) to the
        // target; register it with the target as the destination.
        self.egress.path_service().register_in_shard(
            shard,
            RegisteredPath {
                pcb_id: pcb.digest(),
                destination: ret.from_as,
                destination_interface: ret.target_ingress,
                local_interface: origin_interface,
                algorithm: "PD".to_string(),
                group: pcb
                    .extensions
                    .interface_group
                    .unwrap_or(irec_types::InterfaceGroupId::DEFAULT),
                metrics: pcb.path_metrics(),
                links: pcb.link_keys(),
                registered_at: now,
            },
        );
    }

    /// The path-service shard a path towards `destination` registers in.
    pub fn path_shard_of(&self, destination: irec_types::AsId) -> usize {
        self.egress.path_service().shard_of(destination)
    }

    /// Runs one beaconing round: originate fresh beacons, run every RAC over the ingress
    /// database, process the selections through the egress gateway, then run the round's
    /// housekeeping.
    ///
    /// Equivalent to [`IrecNode::beaconing_round_core`] followed by
    /// [`IrecNode::round_housekeeping`]; the simulator's DAG scheduler runs the two halves
    /// as separate work items so eviction sweeps overlap other nodes' work instead of
    /// extending the round's critical path.
    pub fn beaconing_round(&mut self, now: SimTime) -> Result<RoundOutput> {
        let mut output = self.beaconing_round_core(now)?;
        output.sent_per_interface = self.round_housekeeping(now);
        Ok(output)
    }

    /// The productive phases of one beaconing round — origination, RAC execution, egress
    /// processing — without the trailing housekeeping. The returned output's
    /// `sent_per_interface` is left empty; [`IrecNode::round_housekeeping`] yields it.
    pub fn beaconing_round_core(&mut self, now: SimTime) -> Result<RoundOutput> {
        self.round += 1;
        let mut output = RoundOutput::default();

        // 1. Origination (periodic, §V-D "PCB Initialization").
        let all_interfaces: Vec<IfId> = self
            .topology
            .as_node(self.asn)?
            .interfaces
            .keys()
            .copied()
            .collect();
        let base_spec = match (&self.interface_groups, self.config.irec_enabled) {
            (Some(groups), true) => {
                let mut by_group = BTreeMap::new();
                for gid in groups.group_ids() {
                    by_group.insert(gid, groups.members(gid).to_vec());
                }
                OriginationSpec::grouped(by_group)
            }
            _ => OriginationSpec::plain(all_interfaces.clone()),
        };
        output.messages.extend(self.egress.originate(
            &base_spec,
            now,
            self.config.beacon_validity,
        )?);
        if self.config.irec_enabled {
            let extra = self.extra_originations.clone();
            for spec in &extra {
                output.messages.extend(self.egress.originate(
                    spec,
                    now,
                    self.config.beacon_validity,
                )?);
            }
        }

        // 2. RAC processing (§V-C): snapshot candidate batches and run every RAC through
        // the execution engine — sequentially or fanned out over worker threads, with
        // byte-identical results (see `crate::engine`). With incremental selection enabled
        // the engine serves unchanged batches from the node's tables.
        let local_as = self.topology.as_node(self.asn)?;
        let (all_outputs, timing) = crate::engine::execute_racs_cached(
            &self.racs,
            self.ingress.db(),
            local_as,
            &all_interfaces,
            now,
            self.config.parallelism,
            self.selection_tables.as_mut(),
        )?;
        output.timing.accumulate(&timing);

        // 3. Egress processing (§V-D).
        let (messages, returns) = self.egress.process_outputs(all_outputs, now)?;
        output.messages.extend(messages);
        output.pull_returns = returns;
        Ok(output)
    }

    /// The round's housekeeping (phase 4 of [`IrecNode::beaconing_round`]): expiry
    /// eviction and the per-round send counters. The eviction sweep fans out over the
    /// ingress shards with the same worker budget as the RAC engine — but only when the
    /// database is large enough for per-shard threads to beat their spawn cost: this runs
    /// once per node per round, possibly already inside a node-phase worker, and a
    /// near-empty sweep is a cheap map walk. The eviction outcome is shard- and
    /// worker-count independent either way.
    ///
    /// Returns — and resets — the per-interface send counters accumulated since the last
    /// call; skipped entirely (counters left accumulating) when the round core failed.
    pub fn round_housekeeping(&mut self, now: SimTime) -> BTreeMap<IfId, u64> {
        let eviction_workers = if self.ingress.db().len() >= PARALLEL_EVICTION_MIN_OCCUPANCY {
            self.config.parallelism
        } else {
            1
        };
        self.ingress.db().evict_expired_parallel(
            now,
            irec_types::SimDuration::ZERO,
            eviction_workers,
        );
        self.egress.evict_expired(now);
        // Age the incremental selection tables: entries whose batches were neither probed
        // nor stored this round vanish with the batches themselves. Housekeeping runs
        // under both the barrier and the DAG round scheduler, so table ageing is
        // scheduler-independent.
        if let Some(tables) = &mut self.selection_tables {
            tables.commit_round();
        }
        self.egress.take_sent_counters()
    }

    /// Invalidates cached incremental selections whose footprint intersects `delta`;
    /// returns how many entries were dropped (0 when incremental selection is off). The
    /// simulation fans topology deltas out to every node through this hook.
    pub fn apply_selection_delta(&mut self, delta: &SelectionDelta) -> usize {
        self.selection_tables
            .as_mut()
            .map_or(0, |tables| tables.apply_delta(delta))
    }

    /// Snapshot of the node's incremental-selection counters
    /// (zeroes when incremental selection is off).
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.selection_tables
            .as_ref()
            .map_or_else(IncrementalStats::default, SelectionTables::stats)
    }

    /// Forgets the egress gateway's propagation-dedup marks for `egress` (see
    /// [`EgressGateway::forget_egress`]): the next selection of each beacon is re-sent on
    /// that interface. Part of node-rejoin hygiene.
    pub fn forget_egress(&mut self, egress: IfId) -> usize {
        self.egress.forget_egress(egress)
    }

    /// Replaces the node's RAC catalog live, mid-run — the building block of staged
    /// configuration migrations (the churn engine's `CatalogSwap` delta). The new RACs are
    /// built exactly as [`IrecNode::new`] builds the initial catalog (including the
    /// `irec_enabled` gating) and start with fresh execution caches; the ingress database,
    /// path service and counters are untouched, so previously registered paths survive the
    /// swap and the next beaconing round re-selects from the stored beacons under the new
    /// catalog. On error (e.g. an unknown static algorithm) the node is left unchanged.
    pub fn swap_rac_catalog(&mut self, racs: Vec<RacConfig>) -> Result<()> {
        self.racs = build_racs(&racs, self.config.irec_enabled, &self.algorithm_store)?;
        self.config.racs = racs;
        // RAC indices (the tables' axis) change with the catalog: rebuild empty tables so
        // no stale selection survives under a different RAC's index.
        if self.selection_tables.is_some() {
            self.selection_tables = Some(SelectionTables::for_racs(&self.racs));
        }
        Ok(())
    }
}

/// Builds the RAC catalog a node runs each round: one [`Rac`] per config entry, on-demand
/// RACs wired to the shared algorithm store, extension processing gated on `irec_enabled`.
/// Shared by [`IrecNode::new`] and [`IrecNode::swap_rac_catalog`].
fn build_racs(
    configs: &[RacConfig],
    irec_enabled: bool,
    store: &SharedAlgorithmStore,
) -> Result<Vec<Rac>> {
    let mut racs = Vec::with_capacity(configs.len());
    for rac_config in configs {
        let mut rac = match &rac_config.kind {
            RacKind::Static { .. } => Rac::new_static(rac_config.clone())?,
            RacKind::OnDemand => Rac::new_on_demand(
                rac_config.clone(),
                Arc::new(store.clone()) as Arc<dyn AlgorithmFetcher>,
            )?,
        };
        if !irec_enabled {
            rac.set_ignore_extensions(true);
        }
        racs.push(rac);
    }
    Ok(racs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PropagationPolicy;
    use irec_pcb::PcbExtensions;
    use irec_topology::builder::figure1_topology;
    use irec_types::SimDuration;

    fn setup(
        asn: u64,
        config: NodeConfig,
    ) -> (IrecNode, Arc<Topology>, KeyRegistry, SharedAlgorithmStore) {
        let topology = Arc::new(figure1_topology());
        let registry = KeyRegistry::with_ases(1, 16);
        let store = SharedAlgorithmStore::new();
        let node = IrecNode::new(
            AsId(asn),
            config.with_policy(PropagationPolicy::All),
            Arc::clone(&topology),
            registry.clone(),
            store.clone(),
        )
        .unwrap();
        (node, topology, registry, store)
    }

    #[test]
    fn first_round_originates_on_every_interface() {
        let (mut node, topology, _, _) = setup(3, NodeConfig::default());
        let out = node.beaconing_round(SimTime::ZERO).unwrap();
        let degree = topology.as_node(AsId(3)).unwrap().degree();
        assert_eq!(out.messages.len(), degree);
        assert_eq!(
            out.sent_per_interface.values().sum::<u64>() as usize,
            degree
        );
        assert_eq!(node.rounds(), 1);
    }

    #[test]
    fn received_beacons_are_selected_propagated_and_registered() {
        // Node 1 (Src) receives a beacon from node 3 (Dst) via AS2 and must propagate it to Y
        // (AS4) while registering the path.
        let (mut dst, _, _, _) = setup(3, NodeConfig::default());
        let (mut src, _, _, _) = setup(1, NodeConfig::default());

        let dst_out = dst.beaconing_round(SimTime::ZERO).unwrap();
        // Find the message addressed to AS1 (link Src-X is AS1-AS2; Dst's neighbors are 2,4,5;
        // so route via AS2 requires one more hop — instead deliver the one addressed to AS2's
        // ingress... For this unit test simply deliver any message addressed to AS4 or AS2 to
        // the source as if it had traversed the network).
        let msg_to_src = dst_out
            .messages
            .iter()
            .find(|m| m.to_as == AsId(2) || m.to_as == AsId(4))
            .cloned()
            .unwrap();
        // Re-address the delivery to the source's interface 1 for the purpose of this test.
        let delivered = PcbMessage {
            to_as: AsId(1),
            to_if: IfId(1),
            ..msg_to_src
        };
        src.handle_message(delivered, SimTime::ZERO).unwrap();
        assert_eq!(src.ingress().db().len(), 1);

        let out = src.beaconing_round(SimTime::from_micros(1)).unwrap();
        // The source registered a path towards AS3.
        assert!(!src.path_service().paths_to(AsId(3)).is_empty());
        // And propagated the beacon on its other interface.
        assert!(out
            .messages
            .iter()
            .any(|m| m.pcb.origin == AsId(3) && m.pcb.len() == 2));
    }

    #[test]
    fn pull_return_registers_a_pd_path() {
        let (node, _, registry, _) = setup(1, NodeConfig::default());
        // Build a pull-based beacon originated by AS1 that reached its target AS3.
        let signer = Signer::new(AsId(1), registry.clone());
        let mut pcb = irec_pcb::Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none().with_target(AsId(3)),
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            irec_pcb::StaticInfo::origin(
                irec_types::Latency::from_millis(10),
                irec_types::Bandwidth::from_mbps(100),
                None,
            ),
            &signer,
        )
        .unwrap();
        node.handle_pull_return(
            PullReturn {
                from_as: AsId(3),
                to_as: AsId(1),
                target_ingress: IfId(2),
                pcb,
            },
            SimTime::ZERO,
        );
        let paths = node.path_service().paths_to(AsId(3));
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].algorithm, "PD");
    }

    #[test]
    fn extra_origination_carries_extensions() {
        let (mut node, _, _, _) = setup(1, NodeConfig::default());
        let program = irec_irvm::programs::lowest_latency(5);
        let reference = node.publish_algorithm(AlgorithmId(1), &program);
        node.add_origination(
            OriginationSpec::plain(vec![IfId(1)]).with_extensions(
                PcbExtensions::none()
                    .with_target(AsId(3))
                    .with_algorithm(reference),
            ),
        );
        let out = node.beaconing_round(SimTime::ZERO).unwrap();
        let tagged: Vec<_> = out
            .messages
            .iter()
            .filter(|m| m.pcb.extensions.target == Some(AsId(3)))
            .collect();
        assert_eq!(tagged.len(), 1);
        assert!(tagged[0].pcb.extensions.algorithm.is_some());
        node.clear_extra_originations();
        let out2 = node.beaconing_round(SimTime::from_micros(1)).unwrap();
        assert!(out2
            .messages
            .iter()
            .all(|m| m.pcb.extensions.target.is_none()));
    }

    #[test]
    fn grouped_origination_uses_configured_groups() {
        let (mut node, topology, _, _) = setup(3, NodeConfig::default());
        let as_node = topology.as_node(AsId(3)).unwrap();
        node.set_interface_groups(Some(InterfaceGroups::per_interface(as_node)));
        let out = node.beaconing_round(SimTime::ZERO).unwrap();
        // Dst has 3 interfaces => 3 groups => every beacon carries a distinct group tag.
        let groups: std::collections::HashSet<_> = out
            .messages
            .iter()
            .filter_map(|m| m.pcb.extensions.interface_group)
            .collect();
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn legacy_node_ignores_extensions_but_stays_interoperable() {
        let (mut legacy, _, registry, _) = setup(2, NodeConfig::legacy());
        // A pull-based, on-demand beacon arrives at the legacy node.
        let signer = Signer::new(AsId(3), registry.clone());
        let mut pcb = irec_pcb::Pcb::originate(
            AsId(3),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none().with_target(AsId(1)),
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            irec_pcb::StaticInfo::origin(
                irec_types::Latency::from_millis(10),
                irec_types::Bandwidth::from_mbps(100),
                None,
            ),
            &signer,
        )
        .unwrap();
        legacy
            .handle_message(
                PcbMessage {
                    from_as: AsId(3),
                    from_if: IfId(1),
                    to_as: AsId(2),
                    to_if: IfId(2),
                    pcb,
                },
                SimTime::ZERO,
            )
            .unwrap();
        let out = legacy.beaconing_round(SimTime::from_micros(1)).unwrap();
        // The legacy node processes and propagates the beacon like any other (no crash, no
        // special handling), preserving connectivity.
        assert!(out
            .messages
            .iter()
            .any(|m| m.pcb.origin == AsId(3) && m.pcb.len() == 2));
    }

    #[test]
    fn paper_simulation_config_runs_all_five_racs() {
        let (mut node, _, _, _) = setup(1, NodeConfig::paper_simulation(false));
        let out = node.beaconing_round(SimTime::ZERO).unwrap();
        // With an empty ingress DB only origination happens, but all RACs ran without error.
        assert!(out.timing.candidates == 0);
        assert!(!out.messages.is_empty());
    }
}
