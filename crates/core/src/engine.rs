//! The parallel RAC execution engine.
//!
//! The paper's central architectural claim is that routing algorithm containers execute
//! *independently*: each RAC processes immutable candidate batches snapshotted out of the
//! ingress database, and no RAC observes another RAC's state. This module exploits that
//! independence. It materializes every `(RAC, candidate batch)` pair as one work item,
//! fans the items out over `std::thread::scope` workers, and merges the results
//! deterministically, so a run with `parallelism = N` is **byte-identical** to a sequential
//! run:
//!
//! * work items are built in a fixed order (RAC configuration order, batch keys in
//!   `BTreeMap` order) before any worker starts;
//! * candidate batches are `Arc`-shared immutable [`BatchView`] snapshots — workers never
//!   touch the ingress database;
//! * per-item results are written into pre-allocated slots indexed by item, so the merge
//!   walks items in their build order regardless of completion order — the merged output
//!   order (RAC configuration order, batch keys ascending, candidate index within a batch)
//!   is therefore identical for the sequential and the parallel path, and identical to what
//!   a plain sequential loop over the RACs produces.
//!
//! Errors are deterministic too: the first failing work item *in item order* wins, exactly
//! as in a sequential loop.

use crate::beacon_db::{BatchKey, BatchView, ShardedIngressDb, StoredBeacon};
use crate::rac::{Rac, RacOutput, RacTiming};
use irec_algorithms::incremental::{
    FingerprintBuilder, IncrementalStats, IncrementalTable, SelectionDelta,
};
use irec_topology::AsNode;
use irec_types::{IfId, Result, SimTime};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Hard cap on engine workers; beyond this, coordination overhead dominates any workload
/// this codebase produces.
pub const MAX_WORKERS: usize = 64;

/// Candidate batches larger than this are split into sub-range work items so a single hot
/// origin (one huge |Φ|) cannot serialize the RAC phase: each sub-range is processed as its
/// own work item and the per-sub-range selections are reduced by one final selection pass
/// over their union (see [`execute_racs_with`]).
pub const BATCH_SPLIT_THRESHOLD: usize = 512;

/// One unit of parallel work: a RAC paired with a snapshot of one candidate batch (or a
/// sub-range of one, when the batch exceeded the split threshold).
struct WorkItem {
    /// Index into the RAC slice (stable identity for the deterministic merge).
    rac_index: usize,
    /// The immutable candidate batch to process.
    view: BatchView,
}

/// One logical `(RAC, batch)` pair and the contiguous range of work items it was split
/// into. Groups are built — and merged — in deterministic order: RAC configuration order,
/// then batch keys ascending, then sub-ranges by ascending candidate offset.
struct BatchGroup {
    rac_index: usize,
    key: BatchKey,
    items: std::ops::Range<usize>,
    /// The full unsplit view, retained (an `Arc` bump, no copy) for split groups so the
    /// merge can hand merge-aware algorithms the complete batch, and for every cacheable
    /// group so the merge can record the batch's hop-chain footprint in the table.
    view: Option<BatchView>,
    /// Table hit: the cached per-RAC outputs for this batch, found during the serial
    /// snapshot phase. Such groups carry no work items and contribute no timing.
    cached: Option<Vec<RacOutput>>,
    /// The batch-view fingerprint, computed during the snapshot phase for every cacheable
    /// group; the merge stores the freshly computed outputs under it.
    fingerprint: Option<u64>,
}

/// The per-node incremental selection state: one [`IncrementalTable`] of cached per-batch
/// output vectors per *cacheable* RAC (static RACs only — see
/// [`Rac::is_cacheable`]), indexed by RAC configuration order.
///
/// Determinism: the engine probes the tables in the serial snapshot phase and stores into
/// them in the serial merge phase, both on the coordinating thread in canonical group
/// order — worker threads never touch the tables, so no locking is needed and a cached run
/// is byte-identical to a from-scratch run on every scheduler × worker × shard plane.
#[derive(Debug, Clone, Default)]
pub struct SelectionTables {
    tables: Vec<Option<IncrementalTable<Vec<RacOutput>>>>,
}

impl SelectionTables {
    /// Creates one table per cacheable RAC in `racs` (configuration order); on-demand RACs
    /// get no table and always recompute.
    pub fn for_racs(racs: &[Rac]) -> Self {
        SelectionTables {
            tables: racs
                .iter()
                .map(|rac| rac.is_cacheable().then(IncrementalTable::new))
                .collect(),
        }
    }

    /// Drops every cached entry whose footprint intersects `delta`; returns how many
    /// entries were dropped across all tables.
    pub fn apply_delta(&mut self, delta: &SelectionDelta) -> usize {
        self.tables
            .iter_mut()
            .flatten()
            .map(|table| table.apply_delta(delta))
            .sum()
    }

    /// Ends one round: entries whose batches were neither probed nor stored this round age
    /// out of every table.
    pub fn commit_round(&mut self) {
        for table in self.tables.iter_mut().flatten() {
            table.commit_round();
        }
    }

    /// The summed reuse/recompute/invalidation counters across all tables.
    pub fn stats(&self) -> IncrementalStats {
        let mut total = IncrementalStats::default();
        for table in self.tables.iter().flatten() {
            total.accumulate(table.stats());
        }
        total
    }

    /// Total cached entries across all tables.
    pub fn len(&self) -> usize {
        self.tables
            .iter()
            .flatten()
            .map(IncrementalTable::len)
            .sum()
    }

    /// Whether no table holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn table_mut(&mut self, rac_index: usize) -> Option<&mut IncrementalTable<Vec<RacOutput>>> {
        self.tables.get_mut(rac_index)?.as_mut()
    }
}

/// Content fingerprint of one candidate batch under one RAC's selection context: batch key,
/// per-beacon content digest + ingress interface + receive time, the local AS, the egress
/// list, and the RAC's selection knobs. Any batch mutation — a new beacon, an eviction, a
/// withdrawal sweep — changes a beacon digest or the beacon list and thereby the
/// fingerprint, forcing a recompute for exactly the affected `(origin, group)` batch.
///
/// `received_at` is folded per beacon because it is *not* covered by the PCB content
/// digest, yet it flows into [`RacOutput::beacon`] — without it a re-received beacon could
/// be served from the table with a stale receive time and diverge from the from-scratch
/// reference.
fn view_fingerprint(view: &BatchView, local_as: &AsNode, egress_ifs: &[IfId], rac: &Rac) -> u64 {
    let mut fp = FingerprintBuilder::new();
    fp.fold(view.key.origin.value());
    fp.fold(u64::from(view.key.group.value()));
    fp.fold(view.key.target.map_or(u64::MAX, |t| t.value()));
    for beacon in view.beacons.iter() {
        fp.fold_bytes(&beacon.pcb.digest().0 .0);
        fp.fold(u64::from(beacon.ingress.value()));
        fp.fold(beacon.received_at.0);
    }
    fp.fold(local_as.id.value());
    for egress in egress_ifs {
        fp.fold(u64::from(egress.value()));
    }
    fp.fold(rac.config().max_selected as u64);
    fp.fold(u64::from(rac.config().extend_paths));
    fp.finish()
}

type ItemResult = Result<(Vec<RacOutput>, RacTiming)>;

/// Runs every RAC over its relevant candidate batches from `db` and returns the merged
/// selections plus accumulated timing.
///
/// With `parallelism <= 1` the items run sequentially on the calling thread; with
/// `parallelism > 1` they are distributed over that many scoped worker threads (capped at
/// [`MAX_WORKERS`] and at the number of items). Both paths produce byte-identical results.
/// Batches larger than [`BATCH_SPLIT_THRESHOLD`] candidates are split into sub-range work
/// items with a deterministic sub-merge.
pub fn execute_racs(
    racs: &[Rac],
    db: &ShardedIngressDb,
    local_as: &AsNode,
    egress_ifs: &[IfId],
    now: SimTime,
    parallelism: usize,
) -> Result<(Vec<RacOutput>, RacTiming)> {
    execute_racs_with(
        racs,
        db,
        local_as,
        egress_ifs,
        now,
        parallelism,
        BATCH_SPLIT_THRESHOLD,
    )
}

/// [`execute_racs`] consulting per-RAC incremental selection tables: batches whose
/// fingerprint matches a table entry are served from the table (no work item, no
/// algorithm run), everything else is computed as usual and stored back. With
/// `tables = None` this is exactly [`execute_racs`] — the retained from-scratch reference.
///
/// Cached groups contribute **zero** timing, which is the measured round-cost win; no
/// deterministic output (fingerprints, registered paths, counters) folds timing, so the
/// byte-identity guarantee is unaffected.
#[allow(clippy::too_many_arguments)]
pub fn execute_racs_cached(
    racs: &[Rac],
    db: &ShardedIngressDb,
    local_as: &AsNode,
    egress_ifs: &[IfId],
    now: SimTime,
    parallelism: usize,
    tables: Option<&mut SelectionTables>,
) -> Result<(Vec<RacOutput>, RacTiming)> {
    execute_racs_inner(
        racs,
        db,
        local_as,
        egress_ifs,
        now,
        parallelism,
        BATCH_SPLIT_THRESHOLD,
        tables,
    )
}

/// [`execute_racs`] with an explicit batch-split threshold (exposed so tests and benchmarks
/// can exercise the splitting machinery on small batches).
///
/// Splitting is part of the canonical work-item construction, **not** a function of the
/// worker count: a batch of `n > threshold` candidates always becomes `ceil(n / threshold)`
/// sub-range items plus one reduce pass, whether the items then run on one thread or many —
/// which is what keeps parallel runs byte-identical to sequential ones. The reduce pass
/// re-runs the RAC's selection over the union of the sub-range selections (in ascending
/// candidate order); for selectors that rank candidates independently (shortest, widest,
/// k-shortest) this two-level selection equals the single-pass selection, for set-valued
/// selectors (e.g. high-disjointness) it is the standard hierarchical approximation.
#[allow(clippy::too_many_arguments)]
pub fn execute_racs_with(
    racs: &[Rac],
    db: &ShardedIngressDb,
    local_as: &AsNode,
    egress_ifs: &[IfId],
    now: SimTime,
    parallelism: usize,
    split_threshold: usize,
) -> Result<(Vec<RacOutput>, RacTiming)> {
    execute_racs_inner(
        racs,
        db,
        local_as,
        egress_ifs,
        now,
        parallelism,
        split_threshold,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn execute_racs_inner(
    racs: &[Rac],
    db: &ShardedIngressDb,
    local_as: &AsNode,
    egress_ifs: &[IfId],
    now: SimTime,
    parallelism: usize,
    split_threshold: usize,
    mut tables: Option<&mut SelectionTables>,
) -> Result<(Vec<RacOutput>, RacTiming)> {
    let threshold = split_threshold.max(1);
    // Snapshot phase: materialize the work list in deterministic order. Incremental tables
    // are probed here, on the coordinating thread, so a table hit skips work-item creation
    // entirely and table access stays serial and deterministic.
    let mut items = Vec::new();
    let mut groups = Vec::new();
    for (rac_index, rac) in racs.iter().enumerate() {
        for view in rac.relevant_batches(db, now) {
            let start = items.len();
            let key = view.key;
            let fingerprint = tables
                .as_deref_mut()
                .and_then(|t| t.table_mut(rac_index))
                .map(|table| {
                    let fp = view_fingerprint(&view, local_as, egress_ifs, rac);
                    (table.probe((key.origin, key.group, key.target), fp), fp)
                });
            if let Some((Some(cached), fp)) = fingerprint {
                groups.push(BatchGroup {
                    rac_index,
                    key,
                    items: start..start,
                    view: None,
                    cached: Some(cached),
                    fingerprint: Some(fp),
                });
                continue;
            }
            let fingerprint = fingerprint.map(|(_, fp)| fp);
            let full_view = if view.len() > threshold {
                let mut offset = 0;
                while offset < view.len() {
                    let end = (offset + threshold).min(view.len());
                    items.push(WorkItem {
                        rac_index,
                        view: view.subrange(offset..end),
                    });
                    offset = end;
                }
                Some(view)
            } else if fingerprint.is_some() {
                // Retain the view (an `Arc` bump) so the merge can record the batch's
                // footprint when storing the fresh outputs into the table.
                items.push(WorkItem {
                    rac_index,
                    view: view.clone(),
                });
                Some(view)
            } else {
                items.push(WorkItem { rac_index, view });
                None
            };
            groups.push(BatchGroup {
                rac_index,
                key,
                items: start..items.len(),
                view: full_view,
                cached: None,
                fingerprint,
            });
        }
    }

    let workers = parallelism.min(MAX_WORKERS).min(items.len()).max(1);
    let results: Vec<ItemResult> = if workers <= 1 {
        items
            .iter()
            .map(|item| process_item(racs, item, local_as, egress_ifs))
            .collect()
    } else {
        execute_parallel(racs, &items, local_as, egress_ifs, workers)
    };

    merge_results(racs, &groups, results, local_as, egress_ifs, tables)
}

/// Processes one work item (on whatever thread it was claimed by).
fn process_item(
    racs: &[Rac],
    item: &WorkItem,
    local_as: &AsNode,
    egress_ifs: &[IfId],
) -> ItemResult {
    racs[item.rac_index].process_candidates(
        &item.view.key,
        &item.view.beacons,
        local_as,
        egress_ifs,
    )
}

/// The shared claim-cursor worker pool: calls `work(index)` exactly once for every index
/// in `0..count`, fanned out over `workers` scoped threads (clamped to [`MAX_WORKERS`] and
/// to `count`; `<= 1` runs inline on the calling thread). Indices are claimed through an
/// atomic cursor — cheap dynamic load balancing for skewed unit sizes — so callers that
/// need ordered results write them into pre-allocated slots indexed by unit, exactly as
/// [`execute_racs`] does.
///
/// When `busy_nanos` is given, each unit's execution time accumulates into it; the
/// simulator's barrier scheduler uses this to compute its per-round worker idle time with
/// the same formula as the DAG executor (`idle = workers × wall − Σ busy`), which is what
/// makes the two schedulers' idle counters comparable.
pub fn run_claimed<F>(count: usize, workers: usize, busy_nanos: Option<&AtomicU64>, work: F)
where
    F: Fn(usize) + Sync,
{
    let run_unit = |index: usize| match busy_nanos {
        Some(busy) => {
            let started = Instant::now();
            work(index);
            busy.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        None => work(index),
    };
    let workers = workers.min(MAX_WORKERS).min(count).max(1);
    if workers <= 1 {
        for index in 0..count {
            run_unit(index);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= count {
                    break;
                }
                run_unit(index);
            });
        }
    });
}

/// Fans the work items out over `workers` scoped threads via [`run_claimed`], with results
/// landing in per-item slots, which keeps the merge order independent of scheduling.
fn execute_parallel(
    racs: &[Rac],
    items: &[WorkItem],
    local_as: &AsNode,
    egress_ifs: &[IfId],
    workers: usize,
) -> Vec<ItemResult> {
    let slots: Vec<Mutex<Option<ItemResult>>> = items.iter().map(|_| Mutex::new(None)).collect();
    run_claimed(items.len(), workers, None, |index| {
        *slots[index].lock() = Some(process_item(racs, &items[index], local_as, egress_ifs));
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every work item slot is filled once the scope joins")
        })
        .collect()
}

/// Merges per-item results in group order: first error in item order wins and timings
/// accumulate in item order, exactly as a sequential loop would. Groups that were split
/// into sub-range items additionally run the deterministic sub-merge: one reduce selection
/// pass of the owning RAC over the union of the sub-range selections (whose timing also
/// accumulates, at the group's position).
///
/// No content-keyed re-sort is applied: item order — RAC configuration order, then batch
/// keys ascending, then candidate index within a batch — already is the canonical
/// deterministic ordering, and it is byte-identical to what the pre-engine sequential loop
/// produced. Re-sorting by RAC *name* instead would silently change which RAC wins the
/// egress gateway's first-selection dedup (and thereby path attribution) whenever operators
/// configure RACs in non-alphabetical order.
fn merge_results(
    racs: &[Rac],
    groups: &[BatchGroup],
    results: Vec<ItemResult>,
    local_as: &AsNode,
    egress_ifs: &[IfId],
    mut tables: Option<&mut SelectionTables>,
) -> Result<(Vec<RacOutput>, RacTiming)> {
    let mut results: Vec<Option<ItemResult>> = results.into_iter().map(Some).collect();
    let mut outputs = Vec::new();
    let mut timing = RacTiming::default();
    for group in groups {
        let group_outputs =
            merge_group(racs, group, &mut results, local_as, egress_ifs, &mut timing)?;
        // Freshly computed cacheable group: store the outputs (and the batch's hop-chain
        // footprint, extracted from the retained view) into the RAC's table. Table-hit
        // groups were already marked fresh by the snapshot-phase probe.
        if group.cached.is_none() {
            if let (Some(fp), Some(view)) = (group.fingerprint, &group.view) {
                if let Some(table) = tables
                    .as_deref_mut()
                    .and_then(|t| t.table_mut(group.rac_index))
                {
                    let links = view
                        .beacons
                        .iter()
                        .flat_map(|beacon| beacon.pcb.link_keys())
                        .collect::<Vec<_>>();
                    table.store(
                        (group.key.origin, group.key.group, group.key.target),
                        fp,
                        links,
                        group_outputs.clone(),
                    );
                }
            }
        }
        outputs.extend(group_outputs);
    }
    Ok((outputs, timing))
}

/// Produces one group's final output vector: the cached value for table hits (zero
/// timing), the single item's outputs for unsplit groups, or the deterministic sub-merge
/// for split ones. Timings accumulate into `timing` in item order, exactly as a sequential
/// loop would.
fn merge_group(
    racs: &[Rac],
    group: &BatchGroup,
    results: &mut [Option<ItemResult>],
    local_as: &AsNode,
    egress_ifs: &[IfId],
    timing: &mut RacTiming,
) -> Result<Vec<RacOutput>> {
    if let Some(cached) = &group.cached {
        return Ok(cached.clone());
    }
    if group.items.len() == 1 {
        let (item_outputs, item_timing) = results[group.items.start]
            .take()
            .expect("each item is consumed by exactly one group")?;
        timing.accumulate(&item_timing);
        return Ok(item_outputs);
    }
    // Sub-merge: collect each sub-range's selections in item order (within a sub-range
    // selections are already ordered by candidate index, and sub-ranges are ascending,
    // so the union is in ascending original candidate order)...
    let mut sub_selections: Vec<Vec<RacOutput>> = Vec::new();
    for index in group.items.clone() {
        let (sub_outputs, sub_timing) = results[index]
            .take()
            .expect("each item is consumed by exactly one group")?;
        timing.accumulate(&sub_timing);
        sub_selections.push(sub_outputs);
    }
    // ...then try the merge-aware reduce: algorithms overriding `merge_partial` get the
    // full batch plus the per-sub-range selections (reconstructed as full-batch
    // indices), making the split lossless for set-valued objectives...
    if let Some(view) = &group.view {
        let partials = reconstruct_partials(view, &sub_selections);
        if let Some(merged) = racs[group.rac_index].merge_split_candidates(
            &group.key,
            &view.beacons,
            &partials,
            local_as,
            egress_ifs,
        ) {
            let (reduced, merge_timing) = merged?;
            timing.accumulate(&merge_timing);
            return Ok(reduced);
        }
    }
    let winners: Vec<Arc<StoredBeacon>> = sub_selections
        .into_iter()
        .flatten()
        .map(|o| Arc::new(o.beacon))
        .collect();
    if winners.is_empty() {
        return Ok(Vec::new());
    }
    // ...or fall back to the generic reduce: one final selection pass of the owning RAC
    // over the union of the sub-range winners.
    let (reduced, reduce_timing) =
        racs[group.rac_index].process_candidates(&group.key, &winners, local_as, egress_ifs)?;
    timing.accumulate(&reduce_timing);
    Ok(reduced)
}

/// Rebuilds each sub-range's selection as indices into the full batch view. Sub-range
/// outputs carry beacons, not indices, so beacons are matched back by content digest; the
/// per-egress index lists come out ascending because sub-ranges are walked in offset order
/// and outputs within a sub-range are ordered by candidate index.
fn reconstruct_partials(
    view: &BatchView,
    sub_selections: &[Vec<RacOutput>],
) -> Vec<irec_algorithms::SelectionResult> {
    let index_of: std::collections::HashMap<irec_pcb::PcbId, usize> = view
        .beacons
        .iter()
        .enumerate()
        .map(|(index, beacon)| (beacon.pcb.digest(), index))
        .collect();
    sub_selections
        .iter()
        .map(|sub_outputs| {
            let mut partial = irec_algorithms::SelectionResult::empty();
            for output in sub_outputs {
                if let Some(&index) = index_of.get(&output.beacon.pcb.digest()) {
                    for &egress in &output.egress_ifs {
                        partial.per_egress.entry(egress).or_default().push(index);
                    }
                }
            }
            partial
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RacConfig;
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{Pcb, PcbExtensions, StaticInfo};
    use irec_topology::{Interface, Tier};
    use irec_types::{AsId, Bandwidth, GeoCoord, Latency, LinkId, SimDuration};

    fn local_as() -> AsNode {
        let mut node = AsNode::new(AsId(50), Tier::Tier2);
        for i in 1..=3u32 {
            node.interfaces.insert(
                IfId(i),
                Interface {
                    id: IfId(i),
                    owner: node.id,
                    location: GeoCoord::new(40.0 + f64::from(i), 8.0),
                    link: LinkId(u64::from(i)),
                },
            );
        }
        node
    }

    fn db_with_origins(origins: u64, beacons_per_origin: u64) -> ShardedIngressDb {
        let registry = KeyRegistry::with_ases(11, 512);
        // Several shards so parallel runs actually cross shard boundaries.
        let db = ShardedIngressDb::new(4);
        for origin in 1..=origins {
            for seq in 0..beacons_per_origin {
                let mut pcb = Pcb::originate(
                    AsId(origin),
                    seq,
                    SimTime::ZERO,
                    SimTime::ZERO + SimDuration::from_hours(6),
                    PcbExtensions::none(),
                );
                pcb.extend(
                    IfId::NONE,
                    IfId(1),
                    StaticInfo::origin(
                        Latency::from_millis(5 + seq),
                        Bandwidth::from_mbps(100 + 10 * seq),
                        None,
                    ),
                    &Signer::new(AsId(origin), registry.clone()),
                )
                .unwrap();
                db.insert(pcb, IfId(1), SimTime::ZERO);
            }
        }
        db
    }

    fn rac_set() -> Vec<Rac> {
        ["1SP", "5SP", "DO", "widest"]
            .iter()
            .map(|name| Rac::new_static(RacConfig::static_rac(*name, *name)).unwrap())
            .collect()
    }

    #[test]
    fn run_claimed_runs_every_unit_exactly_once() {
        for workers in [1, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
            let busy = AtomicU64::new(0);
            run_claimed(hits.len(), workers, Some(&busy), |index| {
                hits[index].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
        // Zero units: no spawn, no calls.
        run_claimed(0, 4, None, |_| panic!("no units to run"));
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let racs = rac_set();
        let db = db_with_origins(6, 4);
        let node = local_as();
        let egress = [IfId(1), IfId(2), IfId(3)];

        let (seq_outputs, seq_timing) =
            execute_racs(&racs, &db, &node, &egress, SimTime::ZERO, 1).unwrap();
        for parallelism in [2, 4, 8] {
            let (par_outputs, par_timing) =
                execute_racs(&racs, &db, &node, &egress, SimTime::ZERO, parallelism).unwrap();
            assert_eq!(par_outputs.len(), seq_outputs.len());
            for (a, b) in seq_outputs.iter().zip(&par_outputs) {
                assert_eq!(a.rac_name, b.rac_name);
                assert_eq!(a.origin, b.origin);
                assert_eq!(a.group, b.group);
                assert_eq!(a.egress_ifs, b.egress_ifs);
                assert_eq!(a.beacon, b.beacon);
            }
            assert_eq!(par_timing.candidates, seq_timing.candidates);
        }
    }

    #[test]
    fn engine_handles_empty_database_and_no_racs() {
        let node = local_as();
        let db = ShardedIngressDb::new(4);
        let racs = rac_set();
        let (outputs, timing) =
            execute_racs(&racs, &db, &node, &[IfId(1)], SimTime::ZERO, 4).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(timing.candidates, 0);

        let (outputs, _) = execute_racs(
            &[],
            &db_with_origins(2, 2),
            &node,
            &[IfId(1)],
            SimTime::ZERO,
            4,
        )
        .unwrap();
        assert!(outputs.is_empty());
    }

    #[test]
    fn oversized_batches_split_deterministically() {
        // One hot origin with 24 candidates, split threshold 4 => 6 sub-range items plus a
        // reduce pass. The output must be identical across worker counts, and for
        // rank-independent selectors identical to the unsplit single-pass selection.
        let racs: Vec<Rac> = ["1SP", "widest"]
            .iter()
            .map(|name| Rac::new_static(RacConfig::static_rac(*name, *name)).unwrap())
            .collect();
        let db = db_with_origins(1, 24);
        let node = local_as();
        let egress = [IfId(1), IfId(2), IfId(3)];

        let (unsplit, unsplit_timing) = execute_racs_with(
            &racs,
            &db,
            &node,
            &egress,
            SimTime::ZERO,
            1,
            BATCH_SPLIT_THRESHOLD,
        )
        .unwrap();
        assert!(!unsplit.is_empty());
        let (split_seq, split_timing) =
            execute_racs_with(&racs, &db, &node, &egress, SimTime::ZERO, 1, 4).unwrap();
        // Every candidate crossed the marshal boundary once per sub-range pass, plus the
        // winners once more in the reduce pass.
        assert!(split_timing.candidates > unsplit_timing.candidates);
        for parallelism in [2, 4, 8] {
            let (split_par, _) =
                execute_racs_with(&racs, &db, &node, &egress, SimTime::ZERO, parallelism, 4)
                    .unwrap();
            assert_eq!(split_par.len(), split_seq.len());
            for (a, b) in split_seq.iter().zip(&split_par) {
                assert_eq!(a.rac_name, b.rac_name);
                assert_eq!(a.egress_ifs, b.egress_ifs);
                assert_eq!(a.beacon, b.beacon);
            }
        }
        // 1SP and widest rank candidates independently: hierarchical selection equals the
        // single-pass selection.
        assert_eq!(split_seq.len(), unsplit.len());
        for (a, b) in unsplit.iter().zip(&split_seq) {
            assert_eq!(a.rac_name, b.rac_name);
            assert_eq!(a.egress_ifs, b.egress_ifs);
            assert_eq!(a.beacon, b.beacon);
        }
    }

    /// Beacons of one origin with link-diverse two-hop chains, so HD's disjointness
    /// objective actually discriminates between them.
    fn db_link_diverse(count: u64) -> ShardedIngressDb {
        let registry = KeyRegistry::with_ases(11, 512);
        let db = ShardedIngressDb::new(4);
        for seq in 0..count {
            let mut pcb = Pcb::originate(
                AsId(1),
                seq,
                SimTime::ZERO,
                SimTime::ZERO + SimDuration::from_hours(6),
                PcbExtensions::none(),
            );
            pcb.extend(
                IfId::NONE,
                IfId(1 + (seq % 3) as u32),
                StaticInfo::origin(
                    Latency::from_millis(5 + seq % 7),
                    Bandwidth::from_mbps(100),
                    None,
                ),
                &Signer::new(AsId(1), registry.clone()),
            )
            .unwrap();
            pcb.extend(
                IfId(1),
                IfId(1 + (seq % 5) as u32),
                StaticInfo::origin(Latency::from_millis(5), Bandwidth::from_mbps(100), None),
                &Signer::new(AsId(100 + seq % 4), registry.clone()),
            )
            .unwrap();
            db.insert(pcb, IfId(1), SimTime::ZERO);
        }
        db
    }

    #[test]
    fn merge_aware_reduce_makes_hd_split_lossless() {
        // HD with a tight budget over link-diverse candidates: the per-sub-range
        // truncations at threshold 4 discard globally disjoint candidates, so without the
        // merge-aware reduce the split selection could diverge from the full-batch one.
        // With `merge_partial` the two must be byte-identical, across worker counts.
        let racs =
            vec![Rac::new_static(RacConfig::static_rac("HD", "HD").with_max_selected(3)).unwrap()];
        let db = db_link_diverse(24);
        let node = local_as();
        let egress = [IfId(2), IfId(3)];

        let (unsplit, _) = execute_racs_with(
            &racs,
            &db,
            &node,
            &egress,
            SimTime::ZERO,
            1,
            BATCH_SPLIT_THRESHOLD,
        )
        .unwrap();
        assert!(!unsplit.is_empty());
        for parallelism in [1, 4] {
            let (split, _) =
                execute_racs_with(&racs, &db, &node, &egress, SimTime::ZERO, parallelism, 4)
                    .unwrap();
            assert_eq!(split.len(), unsplit.len());
            for (a, b) in unsplit.iter().zip(&split) {
                assert_eq!(a.rac_name, b.rac_name);
                assert_eq!(a.egress_ifs, b.egress_ifs);
                assert_eq!(a.beacon, b.beacon);
            }
        }
    }

    #[test]
    fn split_threshold_boundary_does_not_split() {
        // Exactly `threshold` candidates stay one work item (no reduce pass): the timing
        // counts every candidate exactly once.
        let racs = vec![Rac::new_static(RacConfig::static_rac("1SP", "1SP")).unwrap()];
        let db = db_with_origins(1, 8);
        let node = local_as();
        let (_, timing) =
            execute_racs_with(&racs, &db, &node, &[IfId(2)], SimTime::ZERO, 4, 8).unwrap();
        assert_eq!(timing.candidates, 8);
    }

    #[test]
    fn errors_are_deterministic_across_parallelism() {
        // An on-demand RAC with no published algorithm errors on fetch; the same error must
        // surface regardless of worker count.
        let store = crate::rac::SharedAlgorithmStore::new();
        let reference = irec_pcb::AlgorithmRef::new(
            irec_types::AlgorithmId(9),
            irec_crypto::sha256(b"never published"),
        );
        let registry = KeyRegistry::with_ases(11, 512);
        let db = ShardedIngressDb::new(2);
        let mut pcb = Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none().with_algorithm(reference),
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            StaticInfo::origin(Latency::from_millis(5), Bandwidth::from_mbps(100), None),
            &Signer::new(AsId(1), registry.clone()),
        )
        .unwrap();
        db.insert(pcb, IfId(1), SimTime::ZERO);

        let racs =
            vec![
                Rac::new_on_demand(RacConfig::on_demand_rac("od"), std::sync::Arc::new(store))
                    .unwrap(),
            ];
        let node = local_as();
        let seq_err = execute_racs(&racs, &db, &node, &[IfId(2)], SimTime::ZERO, 1).unwrap_err();
        let par_err = execute_racs(&racs, &db, &node, &[IfId(2)], SimTime::ZERO, 4).unwrap_err();
        assert_eq!(seq_err.category(), par_err.category());
        assert_eq!(seq_err.category(), "not-found");
    }

    fn assert_same_outputs(a: &[RacOutput], b: &[RacOutput]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.rac_name, y.rac_name);
            assert_eq!(x.origin, y.origin);
            assert_eq!(x.group, y.group);
            assert_eq!(x.egress_ifs, y.egress_ifs);
            assert_eq!(x.beacon, y.beacon);
        }
    }

    #[test]
    fn cached_execution_is_byte_identical_and_reuses_unchanged_batches() {
        let racs = rac_set();
        let db = db_with_origins(6, 4);
        let node = local_as();
        let egress = [IfId(1), IfId(2), IfId(3)];
        let (reference, _) = execute_racs(&racs, &db, &node, &egress, SimTime::ZERO, 1).unwrap();

        let mut tables = SelectionTables::for_racs(&racs);
        for parallelism in [1, 4] {
            // First pass populates, second is served from the table — both identical to
            // the from-scratch reference.
            let (first, _) = execute_racs_cached(
                &racs,
                &db,
                &node,
                &egress,
                SimTime::ZERO,
                parallelism,
                Some(&mut tables),
            )
            .unwrap();
            assert_same_outputs(&reference, &first);
            let before = tables.stats();
            let (second, timing) = execute_racs_cached(
                &racs,
                &db,
                &node,
                &egress,
                SimTime::ZERO,
                parallelism,
                Some(&mut tables),
            )
            .unwrap();
            assert_same_outputs(&reference, &second);
            let after = tables.stats();
            assert_eq!(
                after.recomputed, before.recomputed,
                "an unchanged database is served entirely from the table"
            );
            assert!(after.reused > before.reused);
            assert_eq!(timing.candidates, 0, "cached groups contribute zero timing");
            tables.commit_round();
        }

        // A database mutation flips the fingerprint of the affected batch only.
        let registry = KeyRegistry::with_ases(11, 512);
        let mut pcb = Pcb::originate(
            AsId(1),
            99,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none(),
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            StaticInfo::origin(Latency::from_millis(1), Bandwidth::from_mbps(999), None),
            &Signer::new(AsId(1), registry),
        )
        .unwrap();
        db.insert(pcb, IfId(1), SimTime::ZERO);
        let before = tables.stats();
        let (reference, _) = execute_racs(&racs, &db, &node, &egress, SimTime::ZERO, 1).unwrap();
        let (cached, _) = execute_racs_cached(
            &racs,
            &db,
            &node,
            &egress,
            SimTime::ZERO,
            1,
            Some(&mut tables),
        )
        .unwrap();
        assert_same_outputs(&reference, &cached);
        let after = tables.stats();
        // Four cacheable RACs, one mutated origin out of six: exactly one recompute per
        // RAC, the other five origins reused.
        assert_eq!(after.recomputed - before.recomputed, racs.len());
        assert_eq!(after.reused - before.reused, racs.len() * 5);
    }

    #[test]
    fn selection_delta_invalidates_affected_entries() {
        let racs = rac_set();
        let db = db_with_origins(3, 2);
        let node = local_as();
        let egress = [IfId(1), IfId(2)];
        let mut tables = SelectionTables::for_racs(&racs);
        execute_racs_cached(
            &racs,
            &db,
            &node,
            &egress,
            SimTime::ZERO,
            1,
            Some(&mut tables),
        )
        .unwrap();
        assert_eq!(tables.len(), racs.len() * 3);
        // Origin 2 leaves: its batches drop from every RAC's table.
        let dropped = tables.apply_delta(&SelectionDelta::As(AsId(2)));
        assert_eq!(dropped, racs.len());
        assert_eq!(tables.stats().invalidated, racs.len());
        assert!(!tables.is_empty());
        let dropped = tables.apply_delta(&SelectionDelta::All);
        assert_eq!(dropped, racs.len() * 2);
        assert!(tables.is_empty());
    }

    #[test]
    fn on_demand_racs_are_never_cached() {
        let store = crate::rac::SharedAlgorithmStore::new();
        let od =
            Rac::new_on_demand(RacConfig::on_demand_rac("od"), std::sync::Arc::new(store)).unwrap();
        assert!(!od.is_cacheable());
        let racs = vec![od];
        let tables = SelectionTables::for_racs(&racs);
        assert!(tables.is_empty());
        assert_eq!(tables.stats(), IncrementalStats::default());
    }

    #[test]
    fn cached_split_groups_match_reference() {
        // Oversized batches go through the sub-merge; their reduced outputs are cached and
        // served identically on the second pass.
        let racs: Vec<Rac> = ["1SP", "widest"]
            .iter()
            .map(|name| Rac::new_static(RacConfig::static_rac(*name, *name)).unwrap())
            .collect();
        let db = db_with_origins(1, 24);
        let node = local_as();
        let egress = [IfId(1), IfId(2), IfId(3)];
        let (reference, _) =
            execute_racs_with(&racs, &db, &node, &egress, SimTime::ZERO, 1, 4).unwrap();
        let mut tables = SelectionTables::for_racs(&racs);
        for _ in 0..2 {
            let (outputs, _) = execute_racs_inner(
                &racs,
                &db,
                &node,
                &egress,
                SimTime::ZERO,
                2,
                4,
                Some(&mut tables),
            )
            .unwrap();
            assert_same_outputs(&reference, &outputs);
        }
        assert_eq!(tables.stats().recomputed, racs.len());
        assert_eq!(tables.stats().reused, racs.len());
    }
}
