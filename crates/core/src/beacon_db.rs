//! The ingress and egress beacon databases.
//!
//! The paper's implementation uses SQLite for both; what the architecture needs from them is
//! (i) an indexed store of received PCBs queryable per `(origin AS, interface group, target)`
//! with expiry-based eviction (the ingress DB), and (ii) a memory-cheap dedup structure
//! remembering which PCB (by hash) has already been propagated on which egress interface
//! (the egress DB — "the egress database does not store the actual PCBs, but only their
//! hashes").

use irec_pcb::{Pcb, PcbId};
use irec_types::{AsId, IfId, InterfaceGroupId, SimTime};
use std::collections::{BTreeMap, HashMap, HashSet};

/// A received beacon as stored in the ingress database.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredBeacon {
    /// The beacon itself.
    pub pcb: Pcb,
    /// The local interface it arrived on.
    pub ingress: IfId,
    /// When it was received.
    pub received_at: SimTime,
}

/// The key the ingress DB groups candidates by: the parameters a RAC requests PCBs for
/// (§V-C: "the PCBs provided as input are specific for an origin AS, as well as interface
/// group and target AS").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchKey {
    /// Origin AS of the beacons.
    pub origin: AsId,
    /// Interface group (the default group when the origin does not use groups).
    pub group: InterfaceGroupId,
    /// Target AS for pull-based beacons, `None` for conventional ones.
    pub target: Option<AsId>,
}

/// The ingress database: received beacons indexed for RAC consumption.
#[derive(Debug, Default)]
pub struct IngressDb {
    by_key: BTreeMap<BatchKey, Vec<StoredBeacon>>,
    seen: HashSet<PcbId>,
}

impl IngressDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a received beacon. Returns `false` when an identical beacon (same digest) is
    /// already stored (duplicate suppression).
    pub fn insert(&mut self, pcb: Pcb, ingress: IfId, received_at: SimTime) -> bool {
        let id = pcb.digest();
        if !self.seen.insert(id) {
            return false;
        }
        let key = BatchKey {
            origin: pcb.origin,
            group: pcb
                .extensions
                .interface_group
                .unwrap_or(InterfaceGroupId::DEFAULT),
            target: pcb.extensions.target,
        };
        self.by_key.entry(key).or_default().push(StoredBeacon {
            pcb,
            ingress,
            received_at,
        });
        true
    }

    /// All batch keys currently present.
    pub fn batch_keys(&self) -> Vec<BatchKey> {
        self.by_key.keys().copied().collect()
    }

    /// The stored beacons for one batch key (unexpired at `now`).
    pub fn beacons_for(&self, key: &BatchKey, now: SimTime) -> Vec<StoredBeacon> {
        self.by_key
            .get(key)
            .map(|v| {
                v.iter()
                    .filter(|b| !b.pcb.is_expired(now))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The stored beacons for one origin across all its interface groups, merged into one
    /// list — what a RAC with `use_interface_groups` disabled processes.
    pub fn beacons_for_origin(
        &self,
        origin: AsId,
        target: Option<AsId>,
        now: SimTime,
    ) -> Vec<StoredBeacon> {
        self.by_key
            .iter()
            .filter(|(k, _)| k.origin == origin && k.target == target)
            .flat_map(|(_, v)| v.iter())
            .filter(|b| !b.pcb.is_expired(now))
            .cloned()
            .collect()
    }

    /// Total number of stored beacons (including expired ones not yet evicted).
    pub fn len(&self) -> usize {
        self.by_key.values().map(Vec::len).sum()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes beacons that are expired at `now` (or expire within `grace`), mirroring the
    /// paper's "periodically removes (soon-to-be) expired PCBs". Returns how many were
    /// evicted.
    pub fn evict_expired(&mut self, now: SimTime, grace: irec_types::SimDuration) -> usize {
        let horizon = now + grace;
        let mut evicted = 0;
        self.by_key.retain(|_, beacons| {
            beacons.retain(|b| {
                let keep = !b.pcb.is_expired(horizon);
                if !keep {
                    evicted += 1;
                    self.seen.remove(&b.pcb.digest());
                }
                keep
            });
            !beacons.is_empty()
        });
        evicted
    }
}

/// The egress database: remembers, per PCB hash, the egress interfaces the beacon has already
/// been propagated on, so duplicate selections by multiple RACs are propagated only once per
/// interface.
#[derive(Debug, Default)]
pub struct EgressDb {
    propagated: HashMap<PcbId, HashSet<IfId>>,
    expiry: BTreeMap<SimTime, Vec<PcbId>>,
}

impl EgressDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `pcb` is about to be propagated on `egress_ifs`. Returns the subset of
    /// interfaces that are *new* for this PCB (the ones propagation should actually happen
    /// on); interfaces already recorded are filtered out.
    pub fn filter_new_egresses(&mut self, pcb: &Pcb, egress_ifs: &[IfId]) -> Vec<IfId> {
        let id = pcb.digest();
        let entry = self.propagated.entry(id).or_insert_with(|| {
            self.expiry.entry(pcb.expires_at).or_default().push(id);
            HashSet::new()
        });
        egress_ifs
            .iter()
            .copied()
            .filter(|ifid| entry.insert(*ifid))
            .collect()
    }

    /// Whether the PCB has already been recorded for the given egress interface.
    pub fn contains(&self, pcb: &Pcb, egress: IfId) -> bool {
        self.propagated
            .get(&pcb.digest())
            .map(|s| s.contains(&egress))
            .unwrap_or(false)
    }

    /// Number of PCB hashes tracked.
    pub fn len(&self) -> usize {
        self.propagated.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.propagated.is_empty()
    }

    /// Evicts entries whose beacons expired at or before `now`. Returns how many hashes were
    /// removed.
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        let still_valid = self
            .expiry
            .split_off(&SimTime::from_micros(now.as_micros() + 1));
        for (_, ids) in std::mem::replace(&mut self.expiry, still_valid) {
            for id in ids {
                if self.propagated.remove(&id).is_some() {
                    removed += 1;
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{PcbExtensions, StaticInfo};
    use irec_types::{Bandwidth, Latency, SimDuration};

    fn pcb(origin: u64, seq: u64, extensions: PcbExtensions, validity_h: u64) -> Pcb {
        let registry = KeyRegistry::with_ases(3, 64);
        let signer = Signer::new(AsId(origin), registry);
        let mut pcb = Pcb::originate(
            AsId(origin),
            seq,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(validity_h),
            extensions,
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            StaticInfo::origin(Latency::from_millis(5), Bandwidth::from_mbps(100), None),
            &signer,
        )
        .unwrap();
        pcb
    }

    #[test]
    fn ingress_insert_and_query() {
        let mut db = IngressDb::new();
        assert!(db.is_empty());
        assert!(db.insert(pcb(1, 0, PcbExtensions::none(), 6), IfId(4), SimTime::ZERO));
        assert!(db.insert(pcb(1, 1, PcbExtensions::none(), 6), IfId(4), SimTime::ZERO));
        assert!(db.insert(pcb(2, 0, PcbExtensions::none(), 6), IfId(5), SimTime::ZERO));
        assert_eq!(db.len(), 3);
        let keys = db.batch_keys();
        assert_eq!(keys.len(), 2);
        let key1 = BatchKey {
            origin: AsId(1),
            group: InterfaceGroupId::DEFAULT,
            target: None,
        };
        assert_eq!(db.beacons_for(&key1, SimTime::ZERO).len(), 2);
    }

    #[test]
    fn ingress_duplicate_suppression() {
        let mut db = IngressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 6);
        assert!(db.insert(p.clone(), IfId(4), SimTime::ZERO));
        assert!(!db.insert(p, IfId(4), SimTime::ZERO));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn ingress_groups_and_targets_separate_batches() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 6), IfId(1), SimTime::ZERO);
        db.insert(
            pcb(
                1,
                1,
                PcbExtensions::none().with_interface_group(InterfaceGroupId(2)),
                6,
            ),
            IfId(1),
            SimTime::ZERO,
        );
        db.insert(
            pcb(1, 2, PcbExtensions::none().with_target(AsId(9)), 6),
            IfId(1),
            SimTime::ZERO,
        );
        assert_eq!(db.batch_keys().len(), 3);
        // Merged view across groups for a RAC without interface-group processing.
        assert_eq!(db.beacons_for_origin(AsId(1), None, SimTime::ZERO).len(), 2);
        assert_eq!(
            db.beacons_for_origin(AsId(1), Some(AsId(9)), SimTime::ZERO)
                .len(),
            1
        );
    }

    #[test]
    fn ingress_expiry_filtering_and_eviction() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 1), IfId(1), SimTime::ZERO);
        db.insert(pcb(1, 1, PcbExtensions::none(), 10), IfId(1), SimTime::ZERO);
        let key = BatchKey {
            origin: AsId(1),
            group: InterfaceGroupId::DEFAULT,
            target: None,
        };
        let later = SimTime::ZERO + SimDuration::from_hours(2);
        assert_eq!(db.beacons_for(&key, later).len(), 1);
        let evicted = db.evict_expired(later, SimDuration::ZERO);
        assert_eq!(evicted, 1);
        assert_eq!(db.len(), 1);
        // The evicted digest can be inserted again (e.g. a re-originated beacon).
        assert!(db.insert(pcb(1, 0, PcbExtensions::none(), 1), IfId(1), SimTime::ZERO));
    }

    #[test]
    fn ingress_soon_to_expire_grace_eviction() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 2), IfId(1), SimTime::ZERO);
        // At t=1h the beacon is still valid, but with a 2h grace window it is "soon to be
        // expired" and gets evicted.
        let t = SimTime::ZERO + SimDuration::from_hours(1);
        assert_eq!(db.evict_expired(t, SimDuration::from_hours(2)), 1);
    }

    #[test]
    fn egress_dedup_per_interface() {
        let mut db = EgressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 6);
        let first = db.filter_new_egresses(&p, &[IfId(1), IfId(2)]);
        assert_eq!(first, vec![IfId(1), IfId(2)]);
        // A second RAC selects the same PCB for if2 and if3: only if3 is new.
        let second = db.filter_new_egresses(&p, &[IfId(2), IfId(3)]);
        assert_eq!(second, vec![IfId(3)]);
        assert!(db.contains(&p, IfId(1)));
        assert!(!db.contains(&p, IfId(9)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn egress_eviction_by_expiry() {
        let mut db = EgressDb::new();
        let short = pcb(1, 0, PcbExtensions::none(), 1);
        let long = pcb(1, 1, PcbExtensions::none(), 10);
        db.filter_new_egresses(&short, &[IfId(1)]);
        db.filter_new_egresses(&long, &[IfId(1)]);
        assert_eq!(db.len(), 2);
        let removed = db.evict_expired(SimTime::ZERO + SimDuration::from_hours(2));
        assert_eq!(removed, 1);
        assert_eq!(db.len(), 1);
        // After eviction the short beacon would be propagated again if re-selected.
        assert!(!db.contains(&short, IfId(1)));
    }

    #[test]
    fn egress_empty_interface_list() {
        let mut db = EgressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 6);
        assert!(db.filter_new_egresses(&p, &[]).is_empty());
        assert_eq!(db.len(), 1); // the hash is tracked even with no interfaces yet
    }
}
