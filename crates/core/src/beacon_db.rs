//! The ingress and egress beacon databases.
//!
//! The paper's implementation uses SQLite for both; what the architecture needs from them is
//! (i) an indexed store of received PCBs queryable per `(origin AS, interface group, target)`
//! with expiry-based eviction (the ingress DB), and (ii) a memory-cheap dedup structure
//! remembering which PCB (by hash) has already been propagated on which egress interface
//! (the egress DB — "the egress database does not store the actual PCBs, but only their
//! hashes").

use irec_pcb::{Pcb, PcbId};
use irec_types::{AsId, IfId, InterfaceGroupId, SimTime};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A received beacon as stored in the ingress database.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredBeacon {
    /// The beacon itself.
    pub pcb: Pcb,
    /// The local interface it arrived on.
    pub ingress: IfId,
    /// When it was received.
    pub received_at: SimTime,
}

/// The key the ingress DB groups candidates by: the parameters a RAC requests PCBs for
/// (§V-C: "the PCBs provided as input are specific for an origin AS, as well as interface
/// group and target AS").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchKey {
    /// Origin AS of the beacons.
    pub origin: AsId,
    /// Interface group (the default group when the origin does not use groups).
    pub group: InterfaceGroupId,
    /// Target AS for pull-based beacons, `None` for conventional ones.
    pub target: Option<AsId>,
}

/// An immutable, `Arc`-shared snapshot of one candidate batch, handed to RACs.
///
/// Snapshotting replaces the per-call deep `Vec<StoredBeacon>` clones the ingress database
/// used to hand out: the beacons themselves are shared (`Arc<StoredBeacon>`), and the batch
/// as a whole is an `Arc` slice, so cloning a view — e.g. to move it onto a worker thread of
/// the parallel RAC execution engine — is a pair of reference-count bumps.
#[derive(Debug, Clone)]
pub struct BatchView {
    /// The batch parameters the beacons were collected for.
    pub key: BatchKey,
    /// The candidate beacons, unexpired at snapshot time.
    pub beacons: Arc<[Arc<StoredBeacon>]>,
}

impl BatchView {
    /// Number of candidate beacons in the view.
    pub fn len(&self) -> usize {
        self.beacons.len()
    }

    /// Whether the view holds no beacons.
    pub fn is_empty(&self) -> bool {
        self.beacons.is_empty()
    }

    /// A view onto a sub-range of this batch, sharing the stored beacons (the new slice
    /// holds `Arc` clones — reference-count bumps, no deep copies). The execution engine
    /// splits oversized batches into sub-range work items this way.
    pub fn subrange(&self, range: std::ops::Range<usize>) -> BatchView {
        BatchView {
            key: self.key,
            beacons: self.beacons[range].to_vec().into(),
        }
    }
}

/// The ingress database: received beacons indexed for RAC consumption.
#[derive(Debug, Clone, Default)]
pub struct IngressDb {
    by_key: BTreeMap<BatchKey, Vec<Arc<StoredBeacon>>>,
    seen: HashSet<PcbId>,
}

impl IngressDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a received beacon. Returns `false` when an identical beacon (same digest) is
    /// already stored (duplicate suppression).
    pub fn insert(&mut self, pcb: Pcb, ingress: IfId, received_at: SimTime) -> bool {
        let id = pcb.digest();
        if !self.seen.insert(id) {
            return false;
        }
        let key = BatchKey {
            origin: pcb.origin,
            group: pcb
                .extensions
                .interface_group
                .unwrap_or(InterfaceGroupId::DEFAULT),
            target: pcb.extensions.target,
        };
        self.by_key
            .entry(key)
            .or_default()
            .push(Arc::new(StoredBeacon {
                pcb,
                ingress,
                received_at,
            }));
        true
    }

    /// All batch keys currently present.
    pub fn batch_keys(&self) -> Vec<BatchKey> {
        self.by_key.keys().copied().collect()
    }

    /// The stored beacons for one batch key (unexpired at `now`). Returned beacons are
    /// shared, not cloned.
    pub fn beacons_for(&self, key: &BatchKey, now: SimTime) -> Vec<Arc<StoredBeacon>> {
        self.by_key
            .get(key)
            .map(|v| {
                v.iter()
                    .filter(|b| !b.pcb.is_expired(now))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The stored beacons for one origin across all its interface groups, merged into one
    /// list — what a RAC with `use_interface_groups` disabled processes. Returned beacons
    /// are shared, not cloned.
    pub fn beacons_for_origin(
        &self,
        origin: AsId,
        target: Option<AsId>,
        now: SimTime,
    ) -> Vec<Arc<StoredBeacon>> {
        self.by_key
            .iter()
            .filter(|(k, _)| k.origin == origin && k.target == target)
            .flat_map(|(_, v)| v.iter())
            .filter(|b| !b.pcb.is_expired(now))
            .cloned()
            .collect()
    }

    /// Snapshots the batch for `key` into an immutable view, or `None` when no unexpired
    /// beacon is stored under it.
    pub fn batch_view(&self, key: &BatchKey, now: SimTime) -> Option<BatchView> {
        let beacons = self.beacons_for(key, now);
        if beacons.is_empty() {
            return None;
        }
        Some(BatchView {
            key: *key,
            beacons: beacons.into(),
        })
    }

    /// Snapshots the group-merged batch of one origin (under the default group id), or
    /// `None` when no unexpired beacon matches.
    pub fn origin_view(
        &self,
        origin: AsId,
        target: Option<AsId>,
        now: SimTime,
    ) -> Option<BatchView> {
        let beacons = self.beacons_for_origin(origin, target, now);
        if beacons.is_empty() {
            return None;
        }
        Some(BatchView {
            key: BatchKey {
                origin,
                group: InterfaceGroupId::DEFAULT,
                target,
            },
            beacons: beacons.into(),
        })
    }

    /// Total number of stored beacons **including expired ones not yet evicted**. Use
    /// [`IngressDb::live_len`] for occupancy/overhead metrics.
    pub fn len(&self) -> usize {
        self.by_key.values().map(Vec::len).sum()
    }

    /// Number of stored beacons that are still valid at `now`. Unlike [`IngressDb::len`],
    /// this does not overcount expired-but-unevicted beacons between eviction sweeps.
    pub fn live_len(&self, now: SimTime) -> usize {
        self.by_key
            .values()
            .flat_map(|v| v.iter())
            .filter(|b| !b.pcb.is_expired(now))
            .count()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes beacons that are expired at `now` (or expire within `grace`), mirroring the
    /// paper's "periodically removes (soon-to-be) expired PCBs". Returns how many were
    /// evicted.
    pub fn evict_expired(&mut self, now: SimTime, grace: irec_types::SimDuration) -> usize {
        let horizon = now + grace;
        let mut evicted = 0;
        self.by_key.retain(|_, beacons| {
            beacons.retain(|b| {
                let keep = !b.pcb.is_expired(horizon);
                if !keep {
                    evicted += 1;
                    self.seen.remove(&b.pcb.digest());
                }
                keep
            });
            !beacons.is_empty()
        });
        evicted
    }

    /// True when any stored beacon matches `predicate` — the read-only probe the sharded
    /// facade uses to keep withdrawal sweeps from materializing untouched CoW shards.
    pub fn any_where(&self, predicate: impl Fn(&StoredBeacon) -> bool) -> bool {
        self.by_key.values().flatten().any(|b| predicate(b))
    }

    /// Removes every stored beacon matching `predicate` (a withdrawal sweep), returning
    /// the count. Matched digests leave the dedup set — mirroring
    /// [`IngressDb::evict_expired`] — so a withdrawn beacon could be re-learned if it were
    /// ever re-sent.
    pub fn purge_where(&mut self, predicate: impl Fn(&StoredBeacon) -> bool) -> usize {
        let mut purged = 0;
        self.by_key.retain(|_, beacons| {
            beacons.retain(|b| {
                let keep = !predicate(b);
                if !keep {
                    purged += 1;
                    self.seen.remove(&b.pcb.digest());
                }
                keep
            });
            !beacons.is_empty()
        });
        purged
    }
}

/// Hard cap on ingress shards; beyond this the per-shard maps are so small that the
/// fan-out bookkeeping dominates any insert/evict win.
pub const MAX_INGRESS_SHARDS: usize = 256;

/// The finalizer of `splitmix64` — a fixed, platform-independent avalanche mix. Shard
/// placement must be deterministic across runs and builds (the determinism probe diffs
/// byte-identical output across shard counts), so the std `RandomState` hasher is not an
/// option here. Shared with the path service's destination-AS sharding.
pub(crate) const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A sharded ingress database: `N` independent [`IngressDb`] shards keyed by origin-AS
/// hash, each an `Arc`-wrapped map behind its own `parking_lot::RwLock`.
///
/// Every beacon of one origin lands in the same shard (the batch key's origin determines
/// placement), so inserts, evictions and dedup decisions for *different* shards are
/// independent and can proceed concurrently — including concurrently with the engine's
/// read-side batch snapshotting, which only takes short per-shard read locks. The facade
/// preserves the single-map API with **deterministic, shard-merged iteration order**:
/// [`ShardedIngressDb::batch_keys`] returns the global ascending `BatchKey` order (shards
/// partition by origin, so sorting the merged keys reproduces exactly what one `BTreeMap`
/// would iterate), counters reduce over shards in fixed index order, and a database with
/// any shard count is observably byte-identical to the unsharded reference — pinned by the
/// proptest suite in `crates/core/tests/proptests.rs`.
///
/// # Copy-on-write snapshots
///
/// Each shard is an `Arc<IngressDb>`: [`ShardedIngressDb::cow_clone`] produces a
/// structurally shared snapshot in O(shards) reference-count bumps, and every write path
/// goes through [`Arc::make_mut`] — a shard is deep-copied only the first time a database
/// that still shares it mutates it (in either direction: a write to the *base* after a
/// snapshot was taken copies too, leaving the snapshot untouched). This is what makes
/// per-pair simulation snapshots in the PD campaign nearly free to set up.
///
/// ```
/// use irec_core::ShardedIngressDb;
/// use irec_crypto::{KeyRegistry, Signer};
/// use irec_pcb::{Pcb, PcbExtensions, StaticInfo};
/// use irec_types::{AsId, Bandwidth, IfId, Latency, SimDuration, SimTime};
///
/// let signer = Signer::new(AsId(1), KeyRegistry::with_ases(1, 8));
/// let mut pcb = Pcb::originate(
///     AsId(1), 0, SimTime::ZERO, SimTime::ZERO + SimDuration::from_hours(6),
///     PcbExtensions::none(),
/// );
/// pcb.extend(
///     IfId::NONE, IfId(1),
///     StaticInfo::origin(Latency::from_millis(5), Bandwidth::from_mbps(100), None),
///     &signer,
/// ).unwrap();
///
/// let base = ShardedIngressDb::new(4);
/// assert!(base.insert(pcb.clone(), IfId(2), SimTime::ZERO));
///
/// // A COW snapshot shares every shard with the base: O(shards) pointer copies.
/// let snapshot = base.cow_clone();
/// assert_eq!(snapshot.len(), 1);
/// assert!((0..4).all(|s| snapshot.shares_shard_with(&base, s)));
///
/// // The first write to a shard materializes a private copy; the base is untouched.
/// let mut other = pcb;
/// other.sequence = 1;
/// snapshot.insert(other, IfId(2), SimTime::ZERO);
/// assert_eq!((snapshot.len(), base.len()), (2, 1));
/// assert!(!snapshot.shares_shard_with(&base, snapshot.shard_of(AsId(1))));
/// ```
#[derive(Debug)]
pub struct ShardedIngressDb {
    shards: Vec<RwLock<Arc<IngressDb>>>,
}

impl Default for ShardedIngressDb {
    /// A single-shard database — observably identical to a plain [`IngressDb`].
    fn default() -> Self {
        ShardedIngressDb::new(1)
    }
}

impl Clone for ShardedIngressDb {
    /// Deep-clones every shard's contents (the pre-snapshot behaviour, kept as the
    /// reference the COW path is benchmarked and tested against). Stored beacons stay
    /// `Arc`-shared with the original — they are immutable — but the maps, dedup sets and
    /// locks are fresh. Prefer [`ShardedIngressDb::cow_clone`] for snapshotting.
    fn clone(&self) -> Self {
        ShardedIngressDb {
            shards: self
                .shards
                .iter()
                .map(|shard| RwLock::new(Arc::new(shard.read().as_ref().clone())))
                .collect(),
        }
    }
}

impl ShardedIngressDb {
    /// Creates an empty database with `shards` shards (clamped to
    /// `1..=`[`MAX_INGRESS_SHARDS`]). Any shard count — powers of two or not — yields the
    /// same observable contents; the count only changes how concurrent mutation can get.
    pub fn new(shards: usize) -> Self {
        let shards = shards.clamp(1, MAX_INGRESS_SHARDS);
        ShardedIngressDb {
            shards: (0..shards)
                .map(|_| RwLock::new(Arc::new(IngressDb::new())))
                .collect(),
        }
    }

    /// A structurally shared copy-on-write snapshot: O(shards) reference-count bumps, no
    /// map copies. Both databases keep full read access to the shared shards; whichever
    /// side writes to a still-shared shard first materializes its own copy of just that
    /// shard ([`Arc::make_mut`] semantics), so neither can observe the other's subsequent
    /// writes.
    pub fn cow_clone(&self) -> Self {
        ShardedIngressDb {
            shards: self
                .shards
                .iter()
                .map(|shard| RwLock::new(Arc::clone(&shard.read())))
                .collect(),
        }
    }

    /// Whether shard `shard` is still the same allocation in `self` and `other` —
    /// i.e. neither side has written to it since a [`ShardedIngressDb::cow_clone`] tied
    /// them together. Introspection for the COW isolation tests and the snapshot-cost
    /// benchmark.
    pub fn shares_shard_with(&self, other: &ShardedIngressDb, shard: usize) -> bool {
        Arc::ptr_eq(&self.shards[shard].read(), &other.shards[shard].read())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index `origin`'s beacons live in.
    pub fn shard_of(&self, origin: AsId) -> usize {
        (splitmix64(origin.value()) % self.shards.len() as u64) as usize
    }

    /// Inserts a received beacon into its origin's shard. Returns `false` when an identical
    /// beacon (same digest) is already stored (duplicate suppression). Takes `&self`:
    /// concurrent inserts into different shards do not contend.
    pub fn insert(&self, pcb: Pcb, ingress: IfId, received_at: SimTime) -> bool {
        let shard = self.shard_of(pcb.origin);
        self.insert_in_shard(shard, pcb, ingress, received_at)
    }

    /// [`ShardedIngressDb::insert`] with the shard precomputed by the caller (the delivery
    /// plane partitions a whole epoch by shard before fanning the commits out).
    pub fn insert_in_shard(
        &self,
        shard: usize,
        pcb: Pcb,
        ingress: IfId,
        received_at: SimTime,
    ) -> bool {
        debug_assert_eq!(
            shard,
            self.shard_of(pcb.origin),
            "beacon committed to a foreign shard"
        );
        Arc::make_mut(&mut *self.shards[shard].write()).insert(pcb, ingress, received_at)
    }

    /// All batch keys currently present, in global ascending order — identical to what the
    /// unsharded database iterates.
    pub fn batch_keys(&self) -> Vec<BatchKey> {
        let mut keys: Vec<BatchKey> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().batch_keys())
            .collect();
        // Shards partition keys by origin, so this sort is a pure merge (no ties across
        // shards) reproducing the single-map BTreeMap order.
        keys.sort_unstable();
        keys
    }

    /// The stored beacons for one batch key (unexpired at `now`). Returned beacons are
    /// shared, not cloned.
    pub fn beacons_for(&self, key: &BatchKey, now: SimTime) -> Vec<Arc<StoredBeacon>> {
        self.shards[self.shard_of(key.origin)]
            .read()
            .beacons_for(key, now)
    }

    /// The stored beacons for one origin across all its interface groups, merged into one
    /// list — entirely within the origin's shard.
    pub fn beacons_for_origin(
        &self,
        origin: AsId,
        target: Option<AsId>,
        now: SimTime,
    ) -> Vec<Arc<StoredBeacon>> {
        self.shards[self.shard_of(origin)]
            .read()
            .beacons_for_origin(origin, target, now)
    }

    /// Snapshots the batch for `key` into an immutable view, or `None` when no unexpired
    /// beacon is stored under it. The read lock is held only for the duration of the
    /// snapshot; the returned view shares the stored beacons.
    pub fn batch_view(&self, key: &BatchKey, now: SimTime) -> Option<BatchView> {
        self.shards[self.shard_of(key.origin)]
            .read()
            .batch_view(key, now)
    }

    /// Snapshots the group-merged batch of one origin (under the default group id), or
    /// `None` when no unexpired beacon matches.
    pub fn origin_view(
        &self,
        origin: AsId,
        target: Option<AsId>,
        now: SimTime,
    ) -> Option<BatchView> {
        self.shards[self.shard_of(origin)]
            .read()
            .origin_view(origin, target, now)
    }

    /// Total number of stored beacons **including expired ones not yet evicted**, reduced
    /// over shards in index order.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|shard| shard.read().len()).sum()
    }

    /// Number of stored beacons still valid at `now` (see [`IngressDb::live_len`]).
    pub fn live_len(&self, now: SimTime) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.read().live_len(now))
            .sum()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of beacons stored in one shard (occupancy introspection for tests and the
    /// sharding benchmark).
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].read().len()
    }

    /// Removes beacons that are expired at `now` (or expire within `grace`), sweeping the
    /// shards serially in index order. Returns how many were evicted in total; the count is
    /// the shard-count-independent figure the unsharded database would report.
    pub fn evict_expired(&self, now: SimTime, grace: irec_types::SimDuration) -> usize {
        self.shards
            .iter()
            .map(|shard| Self::evict_shard(shard, now, grace))
            .sum()
    }

    /// Evicts one shard, skipping the copy-on-write materialization when a read-only probe
    /// shows nothing would be evicted — routine housekeeping sweeps must not un-share the
    /// shards of an otherwise read-only snapshot.
    fn evict_shard(
        shard: &RwLock<Arc<IngressDb>>,
        now: SimTime,
        grace: irec_types::SimDuration,
    ) -> usize {
        let horizon = now + grace;
        {
            let guard = shard.read();
            if guard.len() == guard.live_len(horizon) {
                return 0;
            }
        }
        Arc::make_mut(&mut *shard.write()).evict_expired(now, grace)
    }

    /// [`IngressDb::purge_where`] across every shard (a withdrawal sweep), with a
    /// read-only probe per shard so sweeps that match nothing leave CoW-shared shards
    /// untouched. The count is a sum of per-shard counts in fixed index order, so it is
    /// identical for any shard count.
    pub fn purge_where(&self, predicate: impl Fn(&StoredBeacon) -> bool) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                {
                    let guard = shard.read();
                    if !guard.any_where(&predicate) {
                        return 0;
                    }
                }
                Arc::make_mut(&mut *shard.write()).purge_where(&predicate)
            })
            .sum()
    }

    /// [`ShardedIngressDb::evict_expired`] with the per-shard sweeps fanned out over up to
    /// `workers` scoped threads. Eviction decisions are per-beacon and shards are disjoint,
    /// so the total — a sum of per-shard counts — is identical to the serial sweep for any
    /// worker count.
    pub fn evict_expired_parallel(
        &self,
        now: SimTime,
        grace: irec_types::SimDuration,
        workers: usize,
    ) -> usize {
        if workers <= 1 || self.shards.len() <= 1 {
            return self.evict_expired(now, grace);
        }
        let workers = workers.min(self.shards.len());
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let evicted = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(shard) = self.shards.get(index) else {
                        break;
                    };
                    let count = Self::evict_shard(shard, now, grace);
                    evicted.fetch_add(count, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        evicted.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// One tracked PCB hash in the egress database: the interfaces it was propagated on and the
/// expiry time it was recorded under (so eviction can tell live entries from stale expiry-
/// index rows).
#[derive(Debug, Clone, Default)]
struct EgressEntry {
    egresses: HashSet<IfId>,
    expires_at: SimTime,
}

/// The egress database: remembers, per PCB hash, the egress interfaces the beacon has already
/// been propagated on, so duplicate selections by multiple RACs are propagated only once per
/// interface.
///
/// Invariant (pinned by the proptest suite in `crates/core/tests/proptests.rs`): the
/// `removed` count returned by [`EgressDb::evict_expired`] equals the number of hashes
/// actually deleted from the database, i.e. `len()` always drops by exactly `removed`.
#[derive(Debug, Clone, Default)]
pub struct EgressDb {
    propagated: HashMap<PcbId, EgressEntry>,
    /// Expiry index. May contain stale rows for a digest that was evicted and later
    /// re-recorded under a different expiry time; eviction validates each row against the
    /// expiry time stored in the live entry before deleting.
    expiry: BTreeMap<SimTime, Vec<PcbId>>,
}

impl EgressDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `pcb` is about to be propagated on `egress_ifs`. Returns the subset of
    /// interfaces that are *new* for this PCB (the ones propagation should actually happen
    /// on); interfaces already recorded are filtered out.
    pub fn filter_new_egresses(&mut self, pcb: &Pcb, egress_ifs: &[IfId]) -> Vec<IfId> {
        let id = pcb.digest();
        let entry = self.propagated.entry(id).or_insert_with(|| {
            self.expiry.entry(pcb.expires_at).or_default().push(id);
            EgressEntry {
                egresses: HashSet::new(),
                expires_at: pcb.expires_at,
            }
        });
        if entry.expires_at != pcb.expires_at {
            // Defensive: a digest re-recorded under a different expiry (cannot happen while
            // the digest covers the expiry field, but the bookkeeping must not silently
            // drift if that ever changes). Track the later expiry and index it; the old
            // index row becomes stale and is skipped at eviction.
            if pcb.expires_at > entry.expires_at {
                entry.expires_at = pcb.expires_at;
                self.expiry.entry(pcb.expires_at).or_default().push(id);
            }
        }
        egress_ifs
            .iter()
            .copied()
            .filter(|ifid| entry.egresses.insert(*ifid))
            .collect()
    }

    /// Whether any beacon has been recorded as propagated over `egress`.
    pub fn has_egress_records(&self, egress: IfId) -> bool {
        self.propagated
            .values()
            .any(|entry| entry.egresses.contains(&egress))
    }

    /// Removes `egress` from every beacon's propagated-interface set, so each beacon's
    /// next selection is re-sent on that interface. Entries (and their expiry-index rows)
    /// stay in place — only the per-interface marks are dropped. Returns how many marks
    /// were removed. This is the dedup half of node-rejoin hygiene (see
    /// `Simulation::add_node`).
    pub fn forget_egress(&mut self, egress: IfId) -> usize {
        let mut removed = 0;
        for entry in self.propagated.values_mut() {
            if entry.egresses.remove(&egress) {
                removed += 1;
            }
        }
        removed
    }

    /// Whether the PCB has already been recorded for the given egress interface.
    pub fn contains(&self, pcb: &Pcb, egress: IfId) -> bool {
        self.propagated
            .get(&pcb.digest())
            .map(|e| e.egresses.contains(&egress))
            .unwrap_or(false)
    }

    /// Number of PCB hashes tracked.
    pub fn len(&self) -> usize {
        self.propagated.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.propagated.is_empty()
    }

    /// Whether a sweep at `now` would remove anything: true when the earliest expiry-index
    /// bucket is at or before `now`. A cheap read-only probe — the egress gateway checks it
    /// before [`EgressDb::evict_expired`] so routine per-round sweeps don't materialize a
    /// copy-on-write-shared database that has nothing to evict. May report true on a purely
    /// stale bucket (digest re-recorded under a later expiry); the subsequent sweep then
    /// removes zero entries, which is correct, just not free.
    pub fn has_expired_entries(&self, now: SimTime) -> bool {
        self.expiry.keys().next().is_some_and(|&t| t <= now)
    }

    /// Evicts entries whose beacons expired at or before `now`. Returns how many hashes were
    /// removed; the count is exact — stale expiry-index rows (a digest evicted earlier and
    /// re-recorded since) are skipped, never double-counted.
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let mut removed = 0;
        // A sweep at `SimTime::MAX` drains every bucket (including one at exactly `MAX`,
        // which `split_off(MAX + 1)` could neither express nor reach without overflowing).
        let drained = if now == SimTime::MAX {
            std::mem::take(&mut self.expiry)
        } else {
            let still_valid = self
                .expiry
                .split_off(&SimTime::from_micros(now.as_micros() + 1));
            std::mem::replace(&mut self.expiry, still_valid)
        };
        for (_, ids) in drained {
            for id in ids {
                // Only delete when the live entry is recorded under an expiry that has
                // actually passed; a later-expiring re-record keeps the entry alive (it has
                // its own index row in a future bucket).
                let expired = self
                    .propagated
                    .get(&id)
                    .is_some_and(|e| e.expires_at <= now);
                if expired && self.propagated.remove(&id).is_some() {
                    removed += 1;
                }
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{PcbExtensions, StaticInfo};
    use irec_types::{Bandwidth, Latency, SimDuration};

    fn pcb(origin: u64, seq: u64, extensions: PcbExtensions, validity_h: u64) -> Pcb {
        let registry = KeyRegistry::with_ases(3, 64);
        let signer = Signer::new(AsId(origin), registry);
        let mut pcb = Pcb::originate(
            AsId(origin),
            seq,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(validity_h),
            extensions,
        );
        pcb.extend(
            IfId::NONE,
            IfId(1),
            StaticInfo::origin(Latency::from_millis(5), Bandwidth::from_mbps(100), None),
            &signer,
        )
        .unwrap();
        pcb
    }

    #[test]
    fn ingress_insert_and_query() {
        let mut db = IngressDb::new();
        assert!(db.is_empty());
        assert!(db.insert(pcb(1, 0, PcbExtensions::none(), 6), IfId(4), SimTime::ZERO));
        assert!(db.insert(pcb(1, 1, PcbExtensions::none(), 6), IfId(4), SimTime::ZERO));
        assert!(db.insert(pcb(2, 0, PcbExtensions::none(), 6), IfId(5), SimTime::ZERO));
        assert_eq!(db.len(), 3);
        let keys = db.batch_keys();
        assert_eq!(keys.len(), 2);
        let key1 = BatchKey {
            origin: AsId(1),
            group: InterfaceGroupId::DEFAULT,
            target: None,
        };
        assert_eq!(db.beacons_for(&key1, SimTime::ZERO).len(), 2);
    }

    #[test]
    fn ingress_duplicate_suppression() {
        let mut db = IngressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 6);
        assert!(db.insert(p.clone(), IfId(4), SimTime::ZERO));
        assert!(!db.insert(p, IfId(4), SimTime::ZERO));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn ingress_groups_and_targets_separate_batches() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 6), IfId(1), SimTime::ZERO);
        db.insert(
            pcb(
                1,
                1,
                PcbExtensions::none().with_interface_group(InterfaceGroupId(2)),
                6,
            ),
            IfId(1),
            SimTime::ZERO,
        );
        db.insert(
            pcb(1, 2, PcbExtensions::none().with_target(AsId(9)), 6),
            IfId(1),
            SimTime::ZERO,
        );
        assert_eq!(db.batch_keys().len(), 3);
        // Merged view across groups for a RAC without interface-group processing.
        assert_eq!(db.beacons_for_origin(AsId(1), None, SimTime::ZERO).len(), 2);
        assert_eq!(
            db.beacons_for_origin(AsId(1), Some(AsId(9)), SimTime::ZERO)
                .len(),
            1
        );
    }

    #[test]
    fn ingress_expiry_filtering_and_eviction() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 1), IfId(1), SimTime::ZERO);
        db.insert(pcb(1, 1, PcbExtensions::none(), 10), IfId(1), SimTime::ZERO);
        let key = BatchKey {
            origin: AsId(1),
            group: InterfaceGroupId::DEFAULT,
            target: None,
        };
        let later = SimTime::ZERO + SimDuration::from_hours(2);
        assert_eq!(db.beacons_for(&key, later).len(), 1);
        let evicted = db.evict_expired(later, SimDuration::ZERO);
        assert_eq!(evicted, 1);
        assert_eq!(db.len(), 1);
        // The evicted digest can be inserted again (e.g. a re-originated beacon).
        assert!(db.insert(pcb(1, 0, PcbExtensions::none(), 1), IfId(1), SimTime::ZERO));
    }

    #[test]
    fn ingress_soon_to_expire_grace_eviction() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 2), IfId(1), SimTime::ZERO);
        // At t=1h the beacon is still valid, but with a 2h grace window it is "soon to be
        // expired" and gets evicted.
        let t = SimTime::ZERO + SimDuration::from_hours(1);
        assert_eq!(db.evict_expired(t, SimDuration::from_hours(2)), 1);
    }

    #[test]
    fn egress_dedup_per_interface() {
        let mut db = EgressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 6);
        let first = db.filter_new_egresses(&p, &[IfId(1), IfId(2)]);
        assert_eq!(first, vec![IfId(1), IfId(2)]);
        // A second RAC selects the same PCB for if2 and if3: only if3 is new.
        let second = db.filter_new_egresses(&p, &[IfId(2), IfId(3)]);
        assert_eq!(second, vec![IfId(3)]);
        assert!(db.contains(&p, IfId(1)));
        assert!(!db.contains(&p, IfId(9)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn egress_eviction_by_expiry() {
        let mut db = EgressDb::new();
        let short = pcb(1, 0, PcbExtensions::none(), 1);
        let long = pcb(1, 1, PcbExtensions::none(), 10);
        db.filter_new_egresses(&short, &[IfId(1)]);
        db.filter_new_egresses(&long, &[IfId(1)]);
        assert_eq!(db.len(), 2);
        let removed = db.evict_expired(SimTime::ZERO + SimDuration::from_hours(2));
        assert_eq!(removed, 1);
        assert_eq!(db.len(), 1);
        // After eviction the short beacon would be propagated again if re-selected.
        assert!(!db.contains(&short, IfId(1)));
    }

    #[test]
    fn ingress_live_len_excludes_expired_but_unevicted_beacons() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 1), IfId(1), SimTime::ZERO);
        db.insert(pcb(1, 1, PcbExtensions::none(), 10), IfId(1), SimTime::ZERO);
        let later = SimTime::ZERO + SimDuration::from_hours(2);
        // No eviction has run: len() still counts the expired beacon, live_len() does not.
        assert_eq!(db.len(), 2);
        assert_eq!(db.live_len(later), 1);
        assert_eq!(db.live_len(SimTime::ZERO), 2);
        db.evict_expired(later, SimDuration::ZERO);
        assert_eq!(db.len(), db.live_len(later));
    }

    #[test]
    fn ingress_batch_views_share_beacons() {
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 6), IfId(1), SimTime::ZERO);
        db.insert(pcb(1, 1, PcbExtensions::none(), 1), IfId(1), SimTime::ZERO);
        let key = BatchKey {
            origin: AsId(1),
            group: InterfaceGroupId::DEFAULT,
            target: None,
        };
        let view = db.batch_view(&key, SimTime::ZERO).unwrap();
        assert_eq!(view.len(), 2);
        assert!(!view.is_empty());
        // The view holds the same allocations as the database — no deep copies.
        let stored = db.beacons_for(&key, SimTime::ZERO);
        assert!(Arc::ptr_eq(&view.beacons[0], &stored[0]));
        // A clone of the view is another handle onto the same slice.
        let cloned = view.clone();
        assert!(Arc::ptr_eq(&cloned.beacons[0], &view.beacons[0]));
        // Expired beacons are excluded at snapshot time.
        let later = SimTime::ZERO + SimDuration::from_hours(2);
        assert_eq!(db.batch_view(&key, later).unwrap().len(), 1);
        // A key with only expired beacons yields no view.
        let far = SimTime::ZERO + SimDuration::from_hours(20);
        assert!(db.batch_view(&key, far).is_none());
        assert!(db.origin_view(AsId(1), None, far).is_none());
    }

    #[test]
    fn egress_eviction_count_matches_deletions_when_digest_reappears() {
        let mut db = EgressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 1);
        let expiry = SimTime::ZERO + SimDuration::from_hours(2);

        db.filter_new_egresses(&p, &[IfId(1)]);
        assert_eq!(db.len(), 1);
        let removed = db.evict_expired(expiry);
        assert_eq!(removed, 1);
        assert_eq!(db.len(), 0);

        // The same digest reappears after eviction (a RAC re-selects a re-received beacon):
        // it must be tracked again and the next eviction must count exactly one deletion —
        // `len()` always drops by exactly `removed`.
        let again = db.filter_new_egresses(&p, &[IfId(1), IfId(2)]);
        assert_eq!(again, vec![IfId(1), IfId(2)]);
        assert_eq!(db.len(), 1);
        let before = db.len();
        let removed = db.evict_expired(expiry);
        assert_eq!(removed, 1);
        assert_eq!(before - removed, db.len());
        // A second sweep finds nothing left to delete.
        assert_eq!(db.evict_expired(expiry), 0);
    }

    #[test]
    fn egress_empty_interface_list() {
        let mut db = EgressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 6);
        assert!(db.filter_new_egresses(&p, &[]).is_empty());
        assert_eq!(db.len(), 1); // the hash is tracked even with no interfaces yet
    }

    #[test]
    fn sharded_db_clamps_shard_count_and_places_origins_stably() {
        assert_eq!(ShardedIngressDb::new(0).shard_count(), 1);
        assert_eq!(
            ShardedIngressDb::new(100_000).shard_count(),
            MAX_INGRESS_SHARDS
        );
        let db = ShardedIngressDb::new(7);
        for origin in 1..200u64 {
            let shard = db.shard_of(AsId(origin));
            assert!(shard < 7);
            // Placement is a pure function of the origin.
            assert_eq!(db.shard_of(AsId(origin)), shard);
        }
        // The hash actually spreads origins (not everything in one shard).
        let used: HashSet<usize> = (1..200u64).map(|o| db.shard_of(AsId(o))).collect();
        assert!(used.len() > 1);
    }

    #[test]
    fn sharded_db_matches_single_map_for_any_shard_count() {
        for shards in [1usize, 2, 4, 7, 16] {
            let mut reference = IngressDb::new();
            let sharded = ShardedIngressDb::new(shards);
            for origin in 1..=6u64 {
                for seq in 0..4u64 {
                    let p = pcb(origin, seq, PcbExtensions::none(), 1 + (seq % 3));
                    assert_eq!(
                        sharded.insert(p.clone(), IfId(1), SimTime::ZERO),
                        reference.insert(p, IfId(1), SimTime::ZERO),
                        "insert verdicts diverged at {shards} shards"
                    );
                }
            }
            assert_eq!(sharded.batch_keys(), reference.batch_keys());
            assert_eq!(sharded.len(), reference.len());
            let probe = SimTime::ZERO + SimDuration::from_hours(2);
            assert_eq!(sharded.live_len(probe), reference.live_len(probe));
            for key in reference.batch_keys() {
                assert_eq!(
                    sharded.beacons_for(&key, probe),
                    reference.beacons_for(&key, probe)
                );
            }
            assert_eq!(
                sharded.evict_expired(probe, SimDuration::ZERO),
                reference.evict_expired(probe, SimDuration::ZERO),
                "eviction counts diverged at {shards} shards"
            );
            assert_eq!(sharded.len(), reference.len());
        }
    }

    #[test]
    fn sharded_db_parallel_eviction_matches_serial() {
        let build = || {
            let db = ShardedIngressDb::new(8);
            for origin in 1..=16u64 {
                for seq in 0..3u64 {
                    db.insert(
                        pcb(origin, seq, PcbExtensions::none(), 1 + seq),
                        IfId(1),
                        SimTime::ZERO,
                    );
                }
            }
            db
        };
        let probe = SimTime::ZERO + SimDuration::from_hours(2);
        let serial_db = build();
        let serial = serial_db.evict_expired(probe, SimDuration::ZERO);
        assert!(serial > 0);
        for workers in [2usize, 4, 16] {
            let db = build();
            assert_eq!(
                db.evict_expired_parallel(probe, SimDuration::ZERO, workers),
                serial
            );
            assert_eq!(db.len(), serial_db.len());
        }
    }

    #[test]
    fn ingress_eviction_at_exact_expiry_instant() {
        // `is_expired` is inclusive: a beacon expiring exactly at `now` is expired at `now`,
        // with no grace window needed — the eviction count must reflect that boundary.
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 1), IfId(1), SimTime::ZERO);
        let exactly = SimTime::ZERO + SimDuration::from_hours(1);
        let just_before = SimTime::from_micros(exactly.as_micros() - 1);
        assert_eq!(db.evict_expired(just_before, SimDuration::ZERO), 0);
        assert_eq!(db.live_len(just_before), 1);
        assert_eq!(db.evict_expired(exactly, SimDuration::ZERO), 1);
        assert!(db.is_empty());

        // Same boundary through the sharded facade, and via a grace window that lands the
        // horizon exactly on the expiry instant.
        for shards in [1usize, 4] {
            let sharded = ShardedIngressDb::new(shards);
            sharded.insert(pcb(1, 0, PcbExtensions::none(), 2), IfId(1), SimTime::ZERO);
            assert_eq!(
                sharded.evict_expired(
                    SimTime::ZERO + SimDuration::from_hours(1),
                    SimDuration::ZERO
                ),
                0
            );
            assert_eq!(
                sharded.evict_expired(
                    SimTime::ZERO + SimDuration::from_hours(1),
                    SimDuration::from_hours(1)
                ),
                1,
                "grace horizon exactly at expiry must evict ({shards} shards)"
            );
        }
    }

    #[test]
    fn ingress_eviction_grace_saturates_at_time_max() {
        // A sweep near the end of time with a huge grace window must not overflow: the
        // horizon saturates at `SimTime::MAX` and everything expiring at or before it goes.
        let mut db = IngressDb::new();
        db.insert(pcb(1, 0, PcbExtensions::none(), 6), IfId(1), SimTime::ZERO);
        let evicted = db.evict_expired(SimTime::MAX, SimDuration::from_hours(u64::MAX));
        assert_eq!(evicted, 1);
        assert!(db.is_empty());

        let sharded = ShardedIngressDb::new(7);
        for origin in 1..=5u64 {
            sharded.insert(
                pcb(origin, 0, PcbExtensions::none(), 9),
                IfId(1),
                SimTime::ZERO,
            );
        }
        assert_eq!(
            sharded.evict_expired(SimTime::MAX, SimDuration(u64::MAX)),
            5
        );
        assert!(sharded.is_empty());
    }

    #[test]
    fn cow_clone_shares_shards_until_first_write_in_either_direction() {
        let base = ShardedIngressDb::new(7);
        for origin in 1..=10u64 {
            base.insert(
                pcb(origin, 0, PcbExtensions::none(), 6),
                IfId(1),
                SimTime::ZERO,
            );
        }
        let snap = base.cow_clone();
        assert!((0..7).all(|s| snap.shares_shard_with(&base, s)));
        assert_eq!(snap.len(), base.len());

        // Snapshot write: only the written origin's shard un-shares; base contents hold.
        let before = base.len();
        snap.insert(pcb(1, 9, PcbExtensions::none(), 6), IfId(2), SimTime::ZERO);
        let touched = snap.shard_of(AsId(1));
        for s in 0..7 {
            assert_eq!(snap.shares_shard_with(&base, s), s != touched);
        }
        assert_eq!(base.len(), before);
        assert_eq!(snap.len(), before + 1);

        // Base write after the snapshot: copies on the base side, snapshot unaffected.
        let other = base.shard_of(AsId(2));
        assert_ne!(other, touched, "test topology must spread origins 1 and 2");
        base.insert(pcb(2, 9, PcbExtensions::none(), 6), IfId(2), SimTime::ZERO);
        assert!(!snap.shares_shard_with(&base, other));
        assert_eq!(
            snap.beacons_for_origin(AsId(2), None, SimTime::ZERO).len(),
            1
        );
        assert_eq!(
            base.beacons_for_origin(AsId(2), None, SimTime::ZERO).len(),
            2
        );
    }

    #[test]
    fn cow_clone_eviction_probe_keeps_untouched_shards_shared() {
        let base = ShardedIngressDb::new(4);
        for origin in 1..=8u64 {
            base.insert(
                pcb(origin, 0, PcbExtensions::none(), 6),
                IfId(1),
                SimTime::ZERO,
            );
        }
        let snap = base.cow_clone();
        // Nothing expires this early: the sweep must not materialize any shard.
        assert_eq!(snap.evict_expired(SimTime::ZERO, SimDuration::ZERO), 0);
        assert_eq!(
            snap.evict_expired_parallel(SimTime::ZERO, SimDuration::ZERO, 4),
            0
        );
        assert!((0..4).all(|s| snap.shares_shard_with(&base, s)));
        // Once beacons actually expire, the sweep works and matches the deep-clone count.
        let deep = base.clone();
        let later = SimTime::ZERO + SimDuration::from_hours(7);
        assert_eq!(
            snap.evict_expired(later, SimDuration::ZERO),
            deep.evict_expired(later, SimDuration::ZERO)
        );
        assert_eq!(snap.len(), deep.len());
    }

    #[test]
    fn egress_eviction_at_exact_expiry_and_time_max() {
        // Exactly-at-`now` boundary: `evict_expired(now)` drains the bucket at `now` itself
        // (expiry is inclusive, matching `Pcb::is_expired`).
        let mut db = EgressDb::new();
        let p = pcb(1, 0, PcbExtensions::none(), 1);
        db.filter_new_egresses(&p, &[IfId(1)]);
        let just_before = SimTime::from_micros(p.expires_at.as_micros() - 1);
        assert_eq!(db.evict_expired(just_before), 0);
        assert_eq!(db.len(), 1);
        assert_eq!(db.evict_expired(p.expires_at), 1);
        assert!(db.is_empty());

        // A hash recorded under expiry `SimTime::MAX` ("never expires") survives every
        // finite sweep and is only drained by the explicit end-of-time sweep.
        let mut db = EgressDb::new();
        let mut eternal = pcb(1, 1, PcbExtensions::none(), 1);
        eternal.expires_at = SimTime::MAX;
        db.filter_new_egresses(&eternal, &[IfId(1)]);
        assert_eq!(db.evict_expired(SimTime::from_micros(u64::MAX - 1)), 0);
        assert_eq!(db.len(), 1);
        assert_eq!(db.evict_expired(SimTime::MAX), 1);
        assert!(db.is_empty());
        // And the count stays exact on a repeated end-of-time sweep.
        assert_eq!(db.evict_expired(SimTime::MAX), 0);
    }
}
