//! # irec-core
//!
//! The IREC intra-AS architecture of §V of the paper: everything one autonomous system runs
//! to participate in IREC routing.
//!
//! ```text
//!            PCBs from neighbors                      PCBs to neighbors
//!                   │                                        ▲
//!                   ▼                                        │
//!            ┌──────────────┐   GetPCBs(...)   ┌────────────────────────┐
//!            │   Ingress    │◄─────────────────│   RAC 1 … RAC N        │
//!            │   Gateway    │──────────────────►  (static / on-demand)  │
//!            │ + ingress DB │      PCBs        └───────────┬────────────┘
//!            └──────────────┘                        optimal PCBs
//!                                                          ▼
//!                                              ┌────────────────────────┐
//!                                              │ Egress gateway         │
//!                                              │ + egress (dedup) DB    │
//!                                              │ + path registration    │
//!                                              └────────────────────────┘
//! ```
//!
//! * [`ingress::IngressGateway`] verifies and stores received PCBs ([`beacon_db::IngressDb`]).
//! * [`rac::Rac`] wraps one routing algorithm — native ([`irec_algorithms`]) or an IRVM
//!   module — together with the marshalling boundary and (for on-demand RACs) the
//!   fetch-verify-cache pipeline for algorithms referenced in PCBs.
//! * [`egress::EgressGateway`] originates new PCBs (with IREC extensions), deduplicates RAC
//!   selections ([`beacon_db::EgressDb`]), appends the local signed hop entry, propagates
//!   PCBs to neighbors, returns pull-based PCBs to their origin, and registers paths at the
//!   [`path_service::ShardedPathService`] (sharded per destination AS).
//! * [`node::IrecNode`] ties all components of one AS together; the discrete-event simulator
//!   (`irec-sim`) drives a collection of nodes.
//!
//! The components only touch the control plane; the data plane (packet forwarding) is out of
//! scope exactly as in the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon_db;
pub mod config;
pub mod egress;
pub mod engine;
pub mod ingress;
pub mod messages;
pub mod node;
pub mod path_service;
pub mod rac;

pub use beacon_db::{BatchView, EgressDb, IngressDb, ShardedIngressDb, StoredBeacon};
pub use config::{NodeConfig, PropagationPolicy, RacConfig, RacKind};
pub use egress::{EgressGateway, OriginationSpec};
pub use engine::{
    execute_racs, execute_racs_cached, execute_racs_with, run_claimed, SelectionTables,
    BATCH_SPLIT_THRESHOLD,
};
pub use ingress::{IngressGateway, IngressStats};
pub use messages::{PcbMessage, PullReturn};
pub use node::{IrecNode, RoundOutput};
pub use path_service::{PathService, RegisteredPath, ShardedPathService, MAX_PATH_SHARDS};
pub use rac::{AlgorithmFetcher, Rac, RacOutput, RacTiming, SharedAlgorithmStore};
