//! The ingress gateway: verification, policy checks and storage of received PCBs (§V-B).

use crate::beacon_db::ShardedIngressDb;
use irec_crypto::Verifier;
use irec_pcb::Pcb;
use irec_types::{AsId, IfId, IrecError, Result, SimTime};
use parking_lot::Mutex;

/// Statistics kept by the ingress gateway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// PCBs accepted and stored.
    pub accepted: u64,
    /// PCBs rejected (signature, policy or expiry failures) or dropped as duplicates.
    pub rejected: u64,
    /// Accepted-then-deduplicated PCBs (valid but already known).
    pub duplicates: u64,
}

impl IngressStats {
    /// Adds another stats record into this one (the per-shard reduction).
    fn accumulate(&mut self, other: &IngressStats) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.duplicates += other.duplicates;
    }
}

/// The ingress gateway of one AS.
///
/// "When receiving a PCB from a neighboring AS, the ingress gateway verifies the included
/// signatures and whether the path constructed by the PCB complies with the local AS'
/// policies. The ingress gateway then stores the PCB in its ingress database."
///
/// The database is sharded by origin-AS hash ([`ShardedIngressDb`]) and the statistics are
/// kept per shard, so commits targeting different shards can proceed concurrently through
/// the `&self` [`IngressGateway::commit_in_shard`] entry point (the delivery plane's
/// sharded apply stage). [`IngressGateway::stats`] reduces the per-shard counters in fixed
/// shard order, which — with commutative `u64` sums — makes the aggregate independent of
/// shard count and commit interleaving.
pub struct IngressGateway {
    local_as: AsId,
    db: ShardedIngressDb,
    verifier: Verifier,
    /// Whether signature verification is enabled (disabled only in throughput benches that
    /// isolate algorithm cost, mirroring the paper's RAC-only measurements).
    verify_signatures: bool,
    /// Per-shard statistics, indexed like the database's shards. A rejected beacon never
    /// touches the database but is still attributed to its origin's shard so concurrent
    /// shard commits account without contending.
    stats: Vec<Mutex<IngressStats>>,
}

impl Clone for IngressGateway {
    /// Deep-clones the gateway: database shards and per-shard statistics are copied, so
    /// the clone evolves independently (used by `Simulation`'s snapshot clone).
    fn clone(&self) -> Self {
        IngressGateway {
            local_as: self.local_as,
            db: self.db.clone(),
            verifier: self.verifier.clone(),
            verify_signatures: self.verify_signatures,
            stats: self
                .stats
                .iter()
                .map(|shard| Mutex::new(*shard.lock()))
                .collect(),
        }
    }
}

impl IngressGateway {
    /// A copy-on-write clone: the database shards are structurally shared via
    /// [`ShardedIngressDb::cow_clone`] (O(shards) pointer copies; a shard is materialized
    /// only when one side writes to it), while the small per-shard statistics are copied
    /// eagerly. Used by `Simulation::snapshot` for the PD campaign's per-pair snapshots.
    pub fn cow_clone(&self) -> Self {
        IngressGateway {
            local_as: self.local_as,
            db: self.db.cow_clone(),
            verifier: self.verifier.clone(),
            verify_signatures: self.verify_signatures,
            stats: self
                .stats
                .iter()
                .map(|shard| Mutex::new(*shard.lock()))
                .collect(),
        }
    }

    /// Creates a single-shard ingress gateway for `local_as` using `verifier` for signature
    /// checks — observably identical to the pre-sharding gateway.
    pub fn new(local_as: AsId, verifier: Verifier) -> Self {
        Self::with_shards(local_as, verifier, 1)
    }

    /// Creates an ingress gateway whose database is split into `shards` shards (clamped to
    /// `1..=`[`crate::beacon_db::MAX_INGRESS_SHARDS`]).
    pub fn with_shards(local_as: AsId, verifier: Verifier, shards: usize) -> Self {
        let db = ShardedIngressDb::new(shards);
        let stats = (0..db.shard_count())
            .map(|_| Mutex::new(IngressStats::default()))
            .collect();
        IngressGateway {
            local_as,
            db,
            verifier,
            verify_signatures: true,
            stats,
        }
    }

    /// Disables signature verification (benchmarks only).
    pub fn set_verify_signatures(&mut self, enabled: bool) {
        self.verify_signatures = enabled;
    }

    /// Access to the ingress database (RACs read candidate batches from here; eviction and
    /// insertion go through the shards' interior locks).
    pub fn db(&self) -> &ShardedIngressDb {
        &self.db
    }

    /// The gateway statistics, reduced over the shards in fixed index order.
    pub fn stats(&self) -> IngressStats {
        let mut total = IngressStats::default();
        for shard in &self.stats {
            total.accumulate(&shard.lock());
        }
        total
    }

    /// Number of stored beacons still valid at `now` — the occupancy figure to report
    /// between eviction sweeps (`db().len()` would overcount expired-but-unevicted
    /// beacons).
    pub fn live_beacons(&self, now: SimTime) -> usize {
        self.db.live_len(now)
    }

    /// Handles a PCB received on local interface `ingress` at time `now`.
    ///
    /// Verification failures and policy violations reject the beacon; duplicates are counted
    /// but not an error. Equivalent to [`IngressGateway::verify`] followed by
    /// [`IngressGateway::commit`] — the delivery plane runs the two stages separately so
    /// verification can fan out over worker threads.
    pub fn receive(&self, pcb: Pcb, ingress: IfId, now: SimTime) -> Result<()> {
        let verdict = self.verify(&pcb, now);
        self.commit(pcb, ingress, now, verdict)
    }

    /// The pure verification stage: signature, expiry and policy checks, without touching
    /// the database or the statistics.
    ///
    /// This is the expensive per-message work, and it is deliberately independent of all
    /// mutable gateway state (the ingress database, dedup set and counters): the parallel
    /// delivery plane verifies a whole epoch of messages concurrently against a `&self`
    /// snapshot **before** any of them commits, so a verdict must not depend on the order
    /// other messages of the same epoch are applied in.
    pub fn verify(&self, pcb: &Pcb, now: SimTime) -> Result<()> {
        self.check(pcb, now)
    }

    /// The apply stage: accounts a precomputed `verdict` and, on success, stores the beacon
    /// (deduplicating by digest). Messages of one origin must commit in delivery order —
    /// this is where the dedup set and the statistics of the origin's shard mutate; commits
    /// for *different* shards are independent and may interleave freely.
    pub fn commit(&self, pcb: Pcb, ingress: IfId, now: SimTime, verdict: Result<()>) -> Result<()> {
        let shard = self.db.shard_of(pcb.origin);
        self.commit_in_shard(shard, pcb, ingress, now, verdict)
    }

    /// [`IngressGateway::commit`] with the shard precomputed by the caller (the delivery
    /// plane partitions whole epochs into per-shard inboxes before fanning the commits out
    /// over worker threads).
    pub fn commit_in_shard(
        &self,
        shard: usize,
        pcb: Pcb,
        ingress: IfId,
        now: SimTime,
        verdict: Result<()>,
    ) -> Result<()> {
        if let Err(e) = verdict {
            self.stats[shard].lock().rejected += 1;
            return Err(e);
        }
        if self.db.insert_in_shard(shard, pcb, ingress, now) {
            self.stats[shard].lock().accepted += 1;
        } else {
            self.stats[shard].lock().duplicates += 1;
        }
        Ok(())
    }

    fn check(&self, pcb: &Pcb, now: SimTime) -> Result<()> {
        if pcb.is_empty() {
            return Err(IrecError::policy("received beacon carries no AS entries"));
        }
        if pcb.is_expired(now) {
            return Err(IrecError::policy("received beacon is expired"));
        }
        if pcb.contains_as(self.local_as) {
            return Err(IrecError::policy(
                "received beacon already contains the local AS (loop)",
            ));
        }
        if self.verify_signatures {
            pcb.verify(&self.verifier)?;
        } else if pcb.has_loop() {
            return Err(IrecError::policy("received beacon contains a loop"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{PcbExtensions, StaticInfo};
    use irec_types::{Bandwidth, Latency, SimDuration};

    fn registry() -> KeyRegistry {
        KeyRegistry::with_ases(5, 64)
    }

    fn beacon(reg: &KeyRegistry, origin: u64, through: &[u64], validity_h: u64) -> Pcb {
        let mut pcb = Pcb::originate(
            AsId(origin),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(validity_h),
            PcbExtensions::none(),
        );
        let info = StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None);
        pcb.extend(
            IfId::NONE,
            IfId(1),
            info,
            &Signer::new(AsId(origin), reg.clone()),
        )
        .unwrap();
        for asn in through {
            pcb.extend(
                IfId(2),
                IfId(3),
                info,
                &Signer::new(AsId(*asn), reg.clone()),
            )
            .unwrap();
        }
        pcb
    }

    #[test]
    fn accepts_valid_beacon() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        gw.receive(beacon(&reg, 1, &[2, 3], 6), IfId(7), SimTime::ZERO)
            .unwrap();
        assert_eq!(gw.stats().accepted, 1);
        assert_eq!(gw.db().len(), 1);
    }

    #[test]
    fn rejects_expired_beacon() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[], 1);
        let late = SimTime::ZERO + SimDuration::from_hours(2);
        assert!(gw.receive(pcb, IfId(7), late).is_err());
        assert_eq!(gw.stats().rejected, 1);
        assert!(gw.db().is_empty());
    }

    #[test]
    fn rejects_loop_through_local_as() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(3), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[2, 3], 6);
        let err = gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap_err();
        assert_eq!(err.category(), "policy");
    }

    #[test]
    fn rejects_tampered_signature() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let mut pcb = beacon(&reg, 1, &[2], 6);
        pcb.entries[1].static_info.link_latency = Latency::from_millis(1);
        let err = gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap_err();
        assert_eq!(err.category(), "verification");
    }

    #[test]
    fn rejects_empty_beacon() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(1),
            PcbExtensions::none(),
        );
        assert!(gw.receive(pcb, IfId(1), SimTime::ZERO).is_err());
    }

    #[test]
    fn duplicates_counted_not_errored() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[2], 6);
        gw.receive(pcb.clone(), IfId(7), SimTime::ZERO).unwrap();
        gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap();
        assert_eq!(gw.stats().accepted, 1);
        assert_eq!(gw.stats().duplicates, 1);
        assert_eq!(gw.db().len(), 1);
    }

    #[test]
    fn split_verify_commit_matches_receive() {
        let reg = registry();
        // Two gateways fed the same traffic: one through `receive`, one through the split
        // verify/commit pipeline. Stats and database contents must be identical.
        let whole = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let split = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let valid = beacon(&reg, 1, &[2, 3], 6);
        let mut tampered = beacon(&reg, 2, &[3], 6);
        tampered.entries[0].static_info.link_latency = Latency::from_millis(1);
        let traffic = vec![valid.clone(), tampered, valid];

        for pcb in traffic {
            let a = whole.receive(pcb.clone(), IfId(7), SimTime::ZERO);
            let verdict = split.verify(&pcb, SimTime::ZERO);
            let b = split.commit(pcb, IfId(7), SimTime::ZERO, verdict);
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_eq!(whole.stats(), split.stats());
        assert_eq!(whole.db().len(), split.db().len());
        assert_eq!(split.stats().accepted, 1);
        assert_eq!(split.stats().rejected, 1);
        assert_eq!(split.stats().duplicates, 1);
    }

    #[test]
    fn verify_is_pure() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[2], 6);
        // Verifying repeatedly mutates nothing: no stats, no storage.
        for _ in 0..3 {
            gw.verify(&pcb, SimTime::ZERO).unwrap();
        }
        assert_eq!(gw.stats(), IngressStats::default());
        assert!(gw.db().is_empty());
    }

    #[test]
    fn sharded_gateway_matches_single_shard_for_any_shard_count() {
        let reg = registry();
        // The same traffic — valid beacons from several origins, one tampered, one
        // duplicate — through gateways with different shard counts: aggregate stats and
        // database contents must be identical.
        let mut traffic = Vec::new();
        for origin in 1..=4u64 {
            traffic.push(beacon(&reg, origin, &[], 6));
        }
        let mut tampered = beacon(&reg, 2, &[3], 6);
        tampered.entries[0].static_info.link_latency = Latency::from_millis(1);
        traffic.push(tampered);
        traffic.push(traffic[0].clone());

        let reference = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        for pcb in &traffic {
            let _ = reference.receive(pcb.clone(), IfId(7), SimTime::ZERO);
        }
        for shards in [2usize, 4, 7, 16] {
            let gw = IngressGateway::with_shards(AsId(10), Verifier::new(reg.clone()), shards);
            assert_eq!(gw.db().shard_count(), shards);
            for pcb in &traffic {
                let shard = gw.db().shard_of(pcb.origin);
                let verdict = gw.verify(pcb, SimTime::ZERO);
                let _ = gw.commit_in_shard(shard, pcb.clone(), IfId(7), SimTime::ZERO, verdict);
            }
            assert_eq!(gw.stats(), reference.stats(), "stats at {shards} shards");
            assert_eq!(gw.db().len(), reference.db().len());
            assert_eq!(gw.db().batch_keys(), reference.db().batch_keys());
        }
        assert_eq!(reference.stats().accepted, 4);
        assert_eq!(reference.stats().rejected, 1);
        assert_eq!(reference.stats().duplicates, 1);
    }

    #[test]
    fn verification_can_be_disabled_but_loops_still_rejected() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        gw.set_verify_signatures(false);
        let mut pcb = beacon(&reg, 1, &[2], 6);
        // Tampering goes unnoticed without verification...
        pcb.entries[1].static_info.link_latency = Latency::from_millis(1);
        gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap();
        assert_eq!(gw.stats().accepted, 1);
    }
}
