//! The ingress gateway: verification, policy checks and storage of received PCBs (§V-B).

use crate::beacon_db::IngressDb;
use irec_crypto::Verifier;
use irec_pcb::Pcb;
use irec_types::{AsId, IfId, IrecError, Result, SimTime};

/// Statistics kept by the ingress gateway.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// PCBs accepted and stored.
    pub accepted: u64,
    /// PCBs rejected (signature, policy or expiry failures) or dropped as duplicates.
    pub rejected: u64,
    /// Accepted-then-deduplicated PCBs (valid but already known).
    pub duplicates: u64,
}

/// The ingress gateway of one AS.
///
/// "When receiving a PCB from a neighboring AS, the ingress gateway verifies the included
/// signatures and whether the path constructed by the PCB complies with the local AS'
/// policies. The ingress gateway then stores the PCB in its ingress database."
pub struct IngressGateway {
    local_as: AsId,
    db: IngressDb,
    verifier: Verifier,
    /// Whether signature verification is enabled (disabled only in throughput benches that
    /// isolate algorithm cost, mirroring the paper's RAC-only measurements).
    verify_signatures: bool,
    stats: IngressStats,
}

impl IngressGateway {
    /// Creates an ingress gateway for `local_as` using `verifier` for signature checks.
    pub fn new(local_as: AsId, verifier: Verifier) -> Self {
        IngressGateway {
            local_as,
            db: IngressDb::new(),
            verifier,
            verify_signatures: true,
            stats: IngressStats::default(),
        }
    }

    /// Disables signature verification (benchmarks only).
    pub fn set_verify_signatures(&mut self, enabled: bool) {
        self.verify_signatures = enabled;
    }

    /// Access to the ingress database (RACs read candidate batches from here).
    pub fn db(&self) -> &IngressDb {
        &self.db
    }

    /// Mutable access to the ingress database (for expiry eviction).
    pub fn db_mut(&mut self) -> &mut IngressDb {
        &mut self.db
    }

    /// The gateway statistics.
    pub fn stats(&self) -> IngressStats {
        self.stats
    }

    /// Number of stored beacons still valid at `now` — the occupancy figure to report
    /// between eviction sweeps (`db().len()` would overcount expired-but-unevicted
    /// beacons).
    pub fn live_beacons(&self, now: SimTime) -> usize {
        self.db.live_len(now)
    }

    /// Handles a PCB received on local interface `ingress` at time `now`.
    ///
    /// Verification failures and policy violations reject the beacon; duplicates are counted
    /// but not an error. Equivalent to [`IngressGateway::verify`] followed by
    /// [`IngressGateway::commit`] — the delivery plane runs the two stages separately so
    /// verification can fan out over worker threads.
    pub fn receive(&mut self, pcb: Pcb, ingress: IfId, now: SimTime) -> Result<()> {
        let verdict = self.verify(&pcb, now);
        self.commit(pcb, ingress, now, verdict)
    }

    /// The pure verification stage: signature, expiry and policy checks, without touching
    /// the database or the statistics.
    ///
    /// This is the expensive per-message work, and it is deliberately independent of all
    /// mutable gateway state (the ingress database, dedup set and counters): the parallel
    /// delivery plane verifies a whole epoch of messages concurrently against a `&self`
    /// snapshot **before** any of them commits, so a verdict must not depend on the order
    /// other messages of the same epoch are applied in.
    pub fn verify(&self, pcb: &Pcb, now: SimTime) -> Result<()> {
        self.check(pcb, now)
    }

    /// The serial apply stage: accounts a precomputed `verdict` and, on success, stores the
    /// beacon (deduplicating by digest). Must be called in delivery order — this is where
    /// the statistics and the dedup set mutate.
    pub fn commit(
        &mut self,
        pcb: Pcb,
        ingress: IfId,
        now: SimTime,
        verdict: Result<()>,
    ) -> Result<()> {
        if let Err(e) = verdict {
            self.stats.rejected += 1;
            return Err(e);
        }
        if self.db.insert(pcb, ingress, now) {
            self.stats.accepted += 1;
        } else {
            self.stats.duplicates += 1;
        }
        Ok(())
    }

    fn check(&self, pcb: &Pcb, now: SimTime) -> Result<()> {
        if pcb.is_empty() {
            return Err(IrecError::policy("received beacon carries no AS entries"));
        }
        if pcb.is_expired(now) {
            return Err(IrecError::policy("received beacon is expired"));
        }
        if pcb.contains_as(self.local_as) {
            return Err(IrecError::policy(
                "received beacon already contains the local AS (loop)",
            ));
        }
        if self.verify_signatures {
            pcb.verify(&self.verifier)?;
        } else if pcb.has_loop() {
            return Err(IrecError::policy("received beacon contains a loop"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{PcbExtensions, StaticInfo};
    use irec_types::{Bandwidth, Latency, SimDuration};

    fn registry() -> KeyRegistry {
        KeyRegistry::with_ases(5, 64)
    }

    fn beacon(reg: &KeyRegistry, origin: u64, through: &[u64], validity_h: u64) -> Pcb {
        let mut pcb = Pcb::originate(
            AsId(origin),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(validity_h),
            PcbExtensions::none(),
        );
        let info = StaticInfo::origin(Latency::from_millis(10), Bandwidth::from_mbps(100), None);
        pcb.extend(
            IfId::NONE,
            IfId(1),
            info,
            &Signer::new(AsId(origin), reg.clone()),
        )
        .unwrap();
        for asn in through {
            pcb.extend(
                IfId(2),
                IfId(3),
                info,
                &Signer::new(AsId(*asn), reg.clone()),
            )
            .unwrap();
        }
        pcb
    }

    #[test]
    fn accepts_valid_beacon() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        gw.receive(beacon(&reg, 1, &[2, 3], 6), IfId(7), SimTime::ZERO)
            .unwrap();
        assert_eq!(gw.stats().accepted, 1);
        assert_eq!(gw.db().len(), 1);
    }

    #[test]
    fn rejects_expired_beacon() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[], 1);
        let late = SimTime::ZERO + SimDuration::from_hours(2);
        assert!(gw.receive(pcb, IfId(7), late).is_err());
        assert_eq!(gw.stats().rejected, 1);
        assert!(gw.db().is_empty());
    }

    #[test]
    fn rejects_loop_through_local_as() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(3), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[2, 3], 6);
        let err = gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap_err();
        assert_eq!(err.category(), "policy");
    }

    #[test]
    fn rejects_tampered_signature() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let mut pcb = beacon(&reg, 1, &[2], 6);
        pcb.entries[1].static_info.link_latency = Latency::from_millis(1);
        let err = gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap_err();
        assert_eq!(err.category(), "verification");
    }

    #[test]
    fn rejects_empty_beacon() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = Pcb::originate(
            AsId(1),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(1),
            PcbExtensions::none(),
        );
        assert!(gw.receive(pcb, IfId(1), SimTime::ZERO).is_err());
    }

    #[test]
    fn duplicates_counted_not_errored() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[2], 6);
        gw.receive(pcb.clone(), IfId(7), SimTime::ZERO).unwrap();
        gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap();
        assert_eq!(gw.stats().accepted, 1);
        assert_eq!(gw.stats().duplicates, 1);
        assert_eq!(gw.db().len(), 1);
    }

    #[test]
    fn split_verify_commit_matches_receive() {
        let reg = registry();
        // Two gateways fed the same traffic: one through `receive`, one through the split
        // verify/commit pipeline. Stats and database contents must be identical.
        let mut whole = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let mut split = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let valid = beacon(&reg, 1, &[2, 3], 6);
        let mut tampered = beacon(&reg, 2, &[3], 6);
        tampered.entries[0].static_info.link_latency = Latency::from_millis(1);
        let traffic = vec![valid.clone(), tampered, valid];

        for pcb in traffic {
            let a = whole.receive(pcb.clone(), IfId(7), SimTime::ZERO);
            let verdict = split.verify(&pcb, SimTime::ZERO);
            let b = split.commit(pcb, IfId(7), SimTime::ZERO, verdict);
            assert_eq!(a.is_ok(), b.is_ok());
        }
        assert_eq!(whole.stats(), split.stats());
        assert_eq!(whole.db().len(), split.db().len());
        assert_eq!(split.stats().accepted, 1);
        assert_eq!(split.stats().rejected, 1);
        assert_eq!(split.stats().duplicates, 1);
    }

    #[test]
    fn verify_is_pure() {
        let reg = registry();
        let gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        let pcb = beacon(&reg, 1, &[2], 6);
        // Verifying repeatedly mutates nothing: no stats, no storage.
        for _ in 0..3 {
            gw.verify(&pcb, SimTime::ZERO).unwrap();
        }
        assert_eq!(gw.stats(), IngressStats::default());
        assert!(gw.db().is_empty());
    }

    #[test]
    fn verification_can_be_disabled_but_loops_still_rejected() {
        let reg = registry();
        let mut gw = IngressGateway::new(AsId(10), Verifier::new(reg.clone()));
        gw.set_verify_signatures(false);
        let mut pcb = beacon(&reg, 1, &[2], 6);
        // Tampering goes unnoticed without verification...
        pcb.entries[1].static_info.link_latency = Latency::from_millis(1);
        gw.receive(pcb, IfId(7), SimTime::ZERO).unwrap();
        assert_eq!(gw.stats().accepted, 1);
    }
}
