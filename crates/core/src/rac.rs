//! Routing algorithm containers (RACs), §V-C of the paper.
//!
//! A RAC periodically requests candidate PCBs from the ingress gateway, provides them —
//! together with intra-AS topology information — to its routing algorithm, executes the
//! algorithm, and hands the selected PCBs (with the egress interfaces they were optimized
//! for) to the egress gateway.
//!
//! Two kinds exist, sharing one implementation (as in the paper): **static** RACs always run
//! the operator-configured algorithm, **on-demand** RACs run the algorithm referenced in the
//! PCBs they process, fetched from the origin AS, verified against the hash pinned in the
//! signed PCB, cached, and executed inside the IRVM sandbox with strict limits.
//!
//! The per-batch processing pipeline deliberately mirrors the cost structure measured in the
//! paper's Fig. 6: **setup** (instantiating the sandboxed algorithm), **marshal** (the
//! serialization boundary between gateway and RAC — gRPC/Protobuf in the paper, the
//! `irec-wire` codec here), and **execute** (running the algorithm over the candidate set).

use crate::beacon_db::{BatchKey, BatchView, ShardedIngressDb, StoredBeacon};
use crate::config::{RacConfig, RacKind};
use irec_algorithms::{
    catalog, ondemand::IrvmAlgorithm, AlgorithmContext, Candidate, CandidateBatch, RoutingAlgorithm,
};
use irec_pcb::AlgorithmRef;
use irec_topology::AsNode;
use irec_types::{AlgorithmId, AsId, IfId, InterfaceGroupId, IrecError, Result, SimTime};
use irec_wire::{Decode, Encode, WireReader, WireWriter};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Maximum size of a fetched on-demand algorithm executable ("The RAC only allows
/// executables up to a certain size limit").
pub const MAX_EXECUTABLE_BYTES: usize = 64 * 1024;

/// Where on-demand RACs fetch algorithm executables from.
///
/// In the real system the RAC contacts the origin AS over a path contained in the PCB itself;
/// in this reproduction the fetch is a lookup against the store the origin AS published its
/// module to. The hash check against the PCB's (signed) Algorithm extension is what provides
/// integrity either way.
pub trait AlgorithmFetcher: Send + Sync {
    /// Fetches the executable bytes for `reference` from `origin`.
    fn fetch(&self, origin: AsId, reference: &AlgorithmRef) -> Result<Vec<u8>>;
}

/// A shared in-memory algorithm store: origin ASes publish their on-demand algorithm modules
/// here, on-demand RACs fetch from it.
#[derive(Debug, Clone, Default)]
pub struct SharedAlgorithmStore {
    inner: Arc<RwLock<AlgorithmModules>>,
}

/// Published on-demand algorithm modules, keyed by (origin AS, algorithm id).
type AlgorithmModules = HashMap<(AsId, AlgorithmId), Vec<u8>>;

impl SharedAlgorithmStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes an algorithm module on behalf of `origin` and returns the reference to embed
    /// in PCBs.
    pub fn publish(&self, origin: AsId, id: AlgorithmId, module_bytes: Vec<u8>) -> AlgorithmRef {
        let reference = AlgorithmRef::new(id, irec_crypto::sha256(&module_bytes));
        self.inner.write().insert((origin, id), module_bytes);
        reference
    }

    /// Number of published modules.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl AlgorithmFetcher for SharedAlgorithmStore {
    fn fetch(&self, origin: AsId, reference: &AlgorithmRef) -> Result<Vec<u8>> {
        self.inner
            .read()
            .get(&(origin, reference.id))
            .cloned()
            .ok_or_else(|| {
                IrecError::not_found(format!(
                    "algorithm {} not published by {origin}",
                    reference.id
                ))
            })
    }
}

/// One selected beacon produced by a RAC: the stored beacon, the egress interfaces it was
/// optimized for, and bookkeeping for registration.
#[derive(Debug, Clone)]
pub struct RacOutput {
    /// The RAC that produced this selection (used to tag registered paths).
    pub rac_name: String,
    /// The batch the beacon came from.
    pub origin: AsId,
    /// Interface group of the batch.
    pub group: InterfaceGroupId,
    /// The selected beacon.
    pub beacon: StoredBeacon,
    /// Egress interfaces the beacon was optimized for.
    pub egress_ifs: Vec<IfId>,
}

/// Wall-clock timing of one RAC processing run, broken down into the paper's Fig. 6
/// sub-tasks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RacTiming {
    /// Sandbox/algorithm instantiation ("WASM setup").
    pub setup: Duration,
    /// Candidate-set marshalling across the gateway↔RAC boundary ("gRPC calls").
    pub marshal: Duration,
    /// Algorithm execution over the candidate set ("WASM module execution").
    pub execute: Duration,
    /// Number of candidate PCBs processed.
    pub candidates: usize,
}

impl RacTiming {
    /// Total processing time.
    pub fn total(&self) -> Duration {
        self.setup + self.marshal + self.execute
    }

    /// Accumulates another timing record.
    pub fn accumulate(&mut self, other: &RacTiming) {
        self.setup += other.setup;
        self.marshal += other.marshal;
        self.execute += other.execute;
        self.candidates += other.candidates;
    }
}

impl Encode for RacTiming {
    fn encode(&self, writer: &mut WireWriter) {
        // Nanosecond precision; a u64 holds ~584 years of wall-clock time, far beyond any
        // measurable processing run.
        writer.put_varint(self.setup.as_nanos() as u64);
        writer.put_varint(self.marshal.as_nanos() as u64);
        writer.put_varint(self.execute.as_nanos() as u64);
        writer.put_varint(self.candidates as u64);
    }
}

impl Decode for RacTiming {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let setup = Duration::from_nanos(reader.get_varint()?);
        let marshal = Duration::from_nanos(reader.get_varint()?);
        let execute = Duration::from_nanos(reader.get_varint()?);
        let candidates = usize::try_from(reader.get_varint()?)
            .map_err(|_| IrecError::decode("candidate count does not fit in usize"))?;
        Ok(RacTiming {
            setup,
            marshal,
            execute,
            candidates,
        })
    }
}

/// Wire envelope used to marshal a candidate set across the gateway↔RAC boundary (the
/// gRPC/Protobuf substitute measured as the "marshal" component).
struct CandidateEnvelope {
    beacons: Vec<(irec_pcb::Pcb, IfId)>,
}

/// Encodes a shared candidate set directly into wire bytes, without first deep-copying the
/// beacons into an owned envelope (the decode side still materializes owned candidates — that
/// is the unmarshalling cost the Fig. 6 "marshal" component measures).
fn encode_candidates(beacons: &[Arc<StoredBeacon>]) -> Vec<u8> {
    let mut writer = WireWriter::new();
    writer.put_varint(beacons.len() as u64);
    for beacon in beacons {
        beacon.pcb.encode(&mut writer);
        writer.put_u32v(beacon.ingress.value());
    }
    writer.into_bytes()
}

impl Decode for CandidateEnvelope {
    fn decode(reader: &mut WireReader<'_>) -> Result<Self> {
        let n = reader.get_varint()? as usize;
        if n > 1_000_000 {
            return Err(IrecError::decode("implausible candidate count"));
        }
        let mut beacons = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let pcb = irec_pcb::Pcb::decode(reader)?;
            let ingress = IfId(reader.get_u32v()?);
            beacons.push((pcb, ingress));
        }
        Ok(CandidateEnvelope { beacons })
    }
}

/// A routing algorithm container.
///
/// A `Rac` is `Send + Sync`: processing takes `&self`, and the only mutable state — the
/// on-demand algorithm cache — lives behind a [`parking_lot::RwLock`], so the parallel RAC
/// execution engine ([`crate::engine`]) can fan `process_candidates` calls for independent
/// candidate batches out over worker threads.
pub struct Rac {
    config: RacConfig,
    /// The algorithm of a static RAC.
    static_algorithm: Option<Arc<dyn RoutingAlgorithm>>,
    /// Fetcher for on-demand executables.
    fetcher: Option<Arc<dyn AlgorithmFetcher>>,
    /// Cache of instantiated on-demand algorithms, keyed by (origin, algorithm id); the
    /// paper: "by caching the executable, the RAC only needs to do this once for all PCBs
    /// with the same origin AS and algorithm ID".
    cache: RwLock<HashMap<(AsId, AlgorithmId), Arc<IrvmAlgorithm>>>,
    /// When true, IREC extensions are ignored and every beacon is treated as plain (the
    /// behaviour of a legacy control service, used by the backward-compatibility setup).
    ignore_extensions: bool,
}

impl Clone for Rac {
    /// Clones the container for an independent simulation snapshot: the immutable pieces —
    /// configuration, static algorithm, fetcher — are shared (`Arc` bumps), and the
    /// on-demand instantiation cache is copied entry-wise (cached `IrvmAlgorithm`s are
    /// themselves immutable and shared), so warm caches carry over without coupling the
    /// clone's future instantiations to the original.
    fn clone(&self) -> Self {
        Rac {
            config: self.config.clone(),
            static_algorithm: self.static_algorithm.clone(),
            fetcher: self.fetcher.clone(),
            cache: RwLock::new(self.cache.read().clone()),
            ignore_extensions: self.ignore_extensions,
        }
    }
}

impl Rac {
    /// Creates a static RAC, resolving the configured algorithm through the catalog.
    pub fn new_static(config: RacConfig) -> Result<Self> {
        let RacKind::Static { algorithm } = &config.kind else {
            return Err(IrecError::config("new_static requires a static RacConfig"));
        };
        let alg = catalog::by_name(algorithm)?;
        Ok(Rac {
            config,
            static_algorithm: Some(alg),
            fetcher: None,
            cache: RwLock::new(HashMap::new()),
            ignore_extensions: false,
        })
    }

    /// Creates a static RAC with a caller-provided algorithm implementation.
    pub fn with_algorithm(config: RacConfig, algorithm: Arc<dyn RoutingAlgorithm>) -> Self {
        Rac {
            config,
            static_algorithm: Some(algorithm),
            fetcher: None,
            cache: RwLock::new(HashMap::new()),
            ignore_extensions: false,
        }
    }

    /// Creates an on-demand RAC fetching executables through `fetcher`.
    pub fn new_on_demand(config: RacConfig, fetcher: Arc<dyn AlgorithmFetcher>) -> Result<Self> {
        if config.kind != RacKind::OnDemand {
            return Err(IrecError::config(
                "new_on_demand requires an on-demand RacConfig",
            ));
        }
        Ok(Rac {
            config,
            static_algorithm: None,
            fetcher: Some(fetcher),
            cache: RwLock::new(HashMap::new()),
            ignore_extensions: false,
        })
    }

    /// The RAC configuration.
    pub fn config(&self) -> &RacConfig {
        &self.config
    }

    /// The RAC's display name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Number of cached on-demand algorithm instantiations.
    pub fn cached_algorithms(&self) -> usize {
        self.cache.read().len()
    }

    /// Makes the RAC ignore IREC extensions (legacy control-service behaviour).
    pub fn set_ignore_extensions(&mut self, ignore: bool) {
        self.ignore_extensions = ignore;
    }

    /// Whether this RAC is an on-demand RAC.
    pub fn is_on_demand(&self) -> bool {
        self.config.kind == RacKind::OnDemand
    }

    /// Whether this RAC's selections may be cached by the incremental-selection tables
    /// (see [`crate::engine::SelectionTables`]). Only static RACs qualify: an on-demand
    /// RAC's algorithm identity varies per batch (it runs whatever module the PCBs
    /// reference, including fetch-failure semantics), so its outputs are never cached.
    pub fn is_cacheable(&self) -> bool {
        self.static_algorithm.is_some()
    }

    /// One periodic processing run: snapshot every relevant candidate batch from the ingress
    /// database, run the algorithm, and return the selected beacons plus accumulated timing.
    ///
    /// Outputs carry the same deterministic ordering as [`crate::engine::execute_racs`]
    /// (which supersedes this entry point inside [`crate::node::IrecNode`]): batch keys in
    /// ascending order, selections within a batch by candidate index.
    pub fn process(
        &self,
        db: &ShardedIngressDb,
        local_as: &AsNode,
        egress_ifs: &[IfId],
        now: SimTime,
    ) -> Result<(Vec<RacOutput>, RacTiming)> {
        let mut outputs = Vec::new();
        let mut timing = RacTiming::default();
        for view in self.relevant_batches(db, now) {
            let (mut batch_outputs, batch_timing) =
                self.process_candidates(&view.key, &view.beacons, local_as, egress_ifs)?;
            outputs.append(&mut batch_outputs);
            timing.accumulate(&batch_timing);
        }
        Ok((outputs, timing))
    }

    /// Snapshots the candidate batches this RAC processes, honouring its pull-based /
    /// interface-group / on-demand configuration. The returned views share the stored
    /// beacons (no deep copies) and are what the parallel execution engine distributes over
    /// its workers.
    pub fn relevant_batches(&self, db: &ShardedIngressDb, now: SimTime) -> Vec<BatchView> {
        let keys = self.relevant_batch_keys(db);
        let grouped = self.config.use_interface_groups || self.ignore_extensions;
        keys.into_iter()
            .filter_map(|key| {
                if grouped {
                    db.batch_view(&key, now)
                } else {
                    // Interface groups disabled: merge all groups of the origin. The
                    // group-merged batch is snapshotted once per (origin, target) because
                    // `relevant_batch_keys` collapsed the keys already.
                    db.origin_view(key.origin, key.target, now)
                }
            })
            .collect()
    }

    /// The batch keys this RAC processes, honouring its pull-based / interface-group /
    /// on-demand configuration.
    fn relevant_batch_keys(&self, db: &ShardedIngressDb) -> Vec<BatchKey> {
        let mut keys: Vec<BatchKey> = db
            .batch_keys()
            .into_iter()
            .filter(|k| {
                self.config.process_pull_based || k.target.is_none() || self.ignore_extensions
            })
            .collect();
        if !self.config.use_interface_groups && !self.ignore_extensions {
            // Collapse groups: keep one representative key per (origin, target). Sort by
            // the dedup key itself — under `BatchKey`'s full ordering (origin, group,
            // target), equal (origin, target) pairs from different groups are not adjacent
            // and `dedup_by_key` would miss them.
            keys.sort_by_key(|k| (k.origin, k.target));
            keys.dedup_by_key(|k| (k.origin, k.target));
            for k in &mut keys {
                k.group = InterfaceGroupId::DEFAULT;
            }
        }
        keys
    }

    /// Processes one already-materialized candidate set, shared by reference (taking `&self`
    /// so the parallel execution engine can run batches of one RAC concurrently). Exposed
    /// publicly because the Fig. 6 and Fig. 7 benchmarks drive a RAC directly with synthetic
    /// candidate sets of a given size |Φ|.
    pub fn process_candidates(
        &self,
        key: &BatchKey,
        beacons: &[Arc<StoredBeacon>],
        local_as: &AsNode,
        egress_ifs: &[IfId],
    ) -> Result<(Vec<RacOutput>, RacTiming)> {
        let mut timing = RacTiming {
            candidates: beacons.len(),
            ..RacTiming::default()
        };

        // -- Marshal: the candidate set crosses the gateway -> RAC process boundary. --
        let marshal_start = std::time::Instant::now();
        let wire_bytes = encode_candidates(beacons);
        let received: CandidateEnvelope = irec_wire::from_bytes(&wire_bytes)?;
        timing.marshal = marshal_start.elapsed();

        let received_at: Vec<SimTime> = beacons.iter().map(|b| b.received_at).collect();
        let candidates: Vec<Candidate> = received
            .beacons
            .into_iter()
            .map(|(pcb, ingress)| Candidate::new(pcb, ingress))
            .collect();

        // -- Setup: instantiate the algorithm (sandbox creation for on-demand RACs). --
        let setup_start = std::time::Instant::now();
        let algorithm: Arc<dyn RoutingAlgorithm> = match &self.config.kind {
            RacKind::Static { .. } => {
                let alg = self
                    .static_algorithm
                    .as_ref()
                    .ok_or_else(|| IrecError::internal("static RAC without an algorithm"))?;
                Arc::clone(alg)
            }
            RacKind::OnDemand => {
                // All candidates of an on-demand batch carry the same origin; the algorithm
                // reference must be present and identical (the ingress DB already groups by
                // origin, and an origin uses one algorithm per PCB).
                let Some(reference) = candidates.iter().find_map(|c| c.pcb.extensions.algorithm)
                else {
                    // Nothing to do for plain beacons — an on-demand RAC only runs algorithms
                    // shipped in PCBs.
                    return Ok((Vec::new(), timing));
                };
                self.instantiate_on_demand(key.origin, &reference)? as Arc<dyn RoutingAlgorithm>
            }
        };
        timing.setup = setup_start.elapsed();

        // For on-demand batches, restrict the candidates to the ones actually carrying the
        // algorithm (mixed batches can only occur when extensions are ignored).
        let filtered: Vec<(usize, Candidate)> = candidates
            .into_iter()
            .enumerate()
            .filter(|(_, c)| {
                self.ignore_extensions
                    || !self.is_on_demand()
                    || c.pcb.extensions.algorithm.is_some()
            })
            .collect();
        if filtered.is_empty() {
            return Ok((Vec::new(), timing));
        }
        let index_map: Vec<usize> = filtered.iter().map(|(i, _)| *i).collect();
        let batch = CandidateBatch {
            origin: key.origin,
            group: key.group,
            target: key.target,
            candidates: filtered.into_iter().map(|(_, c)| c).collect(),
        };

        // -- Execute: run the algorithm over the candidate set. --
        let ctx = AlgorithmContext::new(local_as, egress_ifs.to_vec(), self.config.max_selected)
            .with_extended_paths(self.config.extend_paths);
        let execute_start = std::time::Instant::now();
        let selection = algorithm.select(&batch, &ctx)?;
        timing.execute = execute_start.elapsed();

        let outputs = self.outputs_from_selection(key, &batch, &index_map, &received_at, selection);
        Ok((outputs, timing))
    }

    /// Inverts a per-egress selection into per-beacon [`RacOutput`]s, ordered by candidate
    /// index. `index_map` maps the batch's (possibly filtered) candidate indices back to
    /// positions in `received_at`.
    fn outputs_from_selection(
        &self,
        key: &BatchKey,
        batch: &CandidateBatch,
        index_map: &[usize],
        received_at: &[SimTime],
        selection: irec_algorithms::SelectionResult,
    ) -> Vec<RacOutput> {
        let mut per_candidate: HashMap<usize, Vec<IfId>> = HashMap::new();
        for (egress, selected) in &selection.per_egress {
            for &local_idx in selected {
                per_candidate.entry(local_idx).or_default().push(*egress);
            }
        }

        let mut outputs = Vec::with_capacity(per_candidate.len());
        let mut indices: Vec<usize> = per_candidate.keys().copied().collect();
        indices.sort_unstable();
        for local_idx in indices {
            let egress_ifs = per_candidate.remove(&local_idx).expect("key exists");
            let original_idx = index_map[local_idx];
            let candidate = &batch.candidates[local_idx];
            outputs.push(RacOutput {
                rac_name: self.config.name.clone(),
                origin: key.origin,
                group: key.group,
                beacon: StoredBeacon {
                    pcb: candidate.pcb.clone(),
                    ingress: candidate.ingress,
                    received_at: received_at
                        .get(original_idx)
                        .copied()
                        .unwrap_or(SimTime::ZERO),
                },
                egress_ifs,
            });
        }
        outputs
    }

    /// Merge-aware reduce for a batch the execution engine split into sub-ranges: when this
    /// RAC is static and its algorithm overrides [`RoutingAlgorithm::merge_partial`], the
    /// full batch is marshalled once more (the reduce pays the same gateway↔RAC boundary
    /// cost as any pass) and the algorithm merges the sub-range selections over it.
    ///
    /// Returns `None` when the algorithm keeps the default hierarchical reduce — and always
    /// for on-demand RACs, whose algorithm identity is per-batch.
    pub fn merge_split_candidates(
        &self,
        key: &BatchKey,
        beacons: &[Arc<StoredBeacon>],
        partials: &[irec_algorithms::SelectionResult],
        local_as: &AsNode,
        egress_ifs: &[IfId],
    ) -> Option<Result<(Vec<RacOutput>, RacTiming)>> {
        let algorithm = self.static_algorithm.as_ref()?;
        if !algorithm.merges_partial() {
            return None;
        }
        let algorithm = Arc::clone(algorithm);
        Some((|| {
            let mut timing = RacTiming {
                candidates: beacons.len(),
                ..RacTiming::default()
            };
            let marshal_start = std::time::Instant::now();
            let wire_bytes = encode_candidates(beacons);
            let received: CandidateEnvelope = irec_wire::from_bytes(&wire_bytes)?;
            timing.marshal = marshal_start.elapsed();

            let received_at: Vec<SimTime> = beacons.iter().map(|b| b.received_at).collect();
            let batch = CandidateBatch {
                origin: key.origin,
                group: key.group,
                target: key.target,
                candidates: received
                    .beacons
                    .into_iter()
                    .map(|(pcb, ingress)| Candidate::new(pcb, ingress))
                    .collect(),
            };
            let index_map: Vec<usize> = (0..batch.candidates.len()).collect();
            let ctx =
                AlgorithmContext::new(local_as, egress_ifs.to_vec(), self.config.max_selected)
                    .with_extended_paths(self.config.extend_paths);
            let execute_start = std::time::Instant::now();
            let selection = algorithm
                .merge_partial(&batch, &ctx, partials)
                .unwrap_or_else(|| algorithm.select(&batch, &ctx))?;
            timing.execute = execute_start.elapsed();
            let outputs =
                self.outputs_from_selection(key, &batch, &index_map, &received_at, selection);
            Ok((outputs, timing))
        })())
    }

    /// Fetch → size check → hash verify → validate → cache an on-demand algorithm.
    ///
    /// The cache lives behind an `RwLock` so concurrent batches of the same RAC can share
    /// instantiations. The cold path holds the write lock across fetch + verify +
    /// instantiation: that is what actually keeps the paper's "instantiate once per
    /// (origin, algorithm ID)" property under contention — a worker racing past the
    /// read-side check re-checks under the write lock and finds the winner's entry instead
    /// of redoing the expensive sandbox setup. (Lock order is strictly `cache` →
    /// fetcher-internal locks; nothing locks in the reverse direction.)
    fn instantiate_on_demand(
        &self,
        origin: AsId,
        reference: &AlgorithmRef,
    ) -> Result<Arc<IrvmAlgorithm>> {
        if let Some(cached) = self.cache.read().get(&(origin, reference.id)) {
            return Ok(Arc::clone(cached));
        }
        let mut cache = self.cache.write();
        if let Some(cached) = cache.get(&(origin, reference.id)) {
            return Ok(Arc::clone(cached));
        }
        let fetcher = self
            .fetcher
            .as_ref()
            .ok_or_else(|| IrecError::config("on-demand RAC has no algorithm fetcher"))?;
        let bytes = fetcher.fetch(origin, reference)?;
        if bytes.len() > MAX_EXECUTABLE_BYTES {
            return Err(IrecError::resource_limit(format!(
                "fetched executable is {} bytes, limit is {MAX_EXECUTABLE_BYTES}",
                bytes.len()
            )));
        }
        if !reference.matches(&bytes) {
            return Err(IrecError::verification(
                "fetched executable does not match the hash pinned in the PCB",
            ));
        }
        let algorithm = Arc::new(IrvmAlgorithm::from_module_bytes(
            &bytes,
            irec_irvm::ExecutionLimits::ON_DEMAND_RAC,
        )?);
        cache.insert((origin, reference.id), Arc::clone(&algorithm));
        Ok(algorithm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{Pcb, PcbExtensions, StaticInfo};
    use irec_topology::{Interface, Tier};
    use irec_types::{Bandwidth, GeoCoord, Latency, LinkId, SimDuration};

    fn registry() -> KeyRegistry {
        KeyRegistry::with_ases(11, 128)
    }

    fn local_as() -> AsNode {
        let mut node = AsNode::new(AsId(50), Tier::Tier2);
        for i in 1..=3u32 {
            node.interfaces.insert(
                IfId(i),
                Interface {
                    id: IfId(i),
                    owner: node.id,
                    location: GeoCoord::new(47.0 + i as f64, 8.0),
                    link: LinkId(i as u64),
                },
            );
        }
        node
    }

    fn beacon(
        reg: &KeyRegistry,
        origin: u64,
        hops: &[(u64, u64)],
        extensions: PcbExtensions,
    ) -> Pcb {
        let mut pcb = Pcb::originate(
            AsId(origin),
            rand_seq(origin, hops),
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            extensions,
        );
        for (i, (lat, bw)) in hops.iter().enumerate() {
            let asn = if i == 0 {
                AsId(origin)
            } else {
                AsId(origin + i as u64 * 10)
            };
            let info = StaticInfo {
                link_latency: Latency::from_millis(*lat),
                link_bandwidth: Bandwidth::from_mbps(*bw),
                intra_latency: Latency::ZERO,
                egress_location: None,
            };
            let ingress = if i == 0 { IfId::NONE } else { IfId(1) };
            pcb.extend(ingress, IfId(2), info, &Signer::new(asn, reg.clone()))
                .unwrap();
        }
        pcb
    }

    fn rand_seq(origin: u64, hops: &[(u64, u64)]) -> u64 {
        origin
            .wrapping_mul(31)
            .wrapping_add(hops.iter().map(|(a, b)| a * 7 + b).sum::<u64>())
    }

    fn ingress_db_with(beacons: Vec<(Pcb, u32)>) -> ShardedIngressDb {
        let db = ShardedIngressDb::new(3);
        for (pcb, ingress) in beacons {
            db.insert(pcb, IfId(ingress), SimTime::ZERO);
        }
        db
    }

    #[test]
    fn static_rac_selects_per_egress() {
        let reg = registry();
        let db = ingress_db_with(vec![
            (
                beacon(&reg, 1, &[(10, 10), (10, 10)], PcbExtensions::none()),
                1,
            ),
            (beacon(&reg, 1, &[(5, 100)], PcbExtensions::none()), 2),
        ]);
        let rac = Rac::new_static(RacConfig::static_rac("1SP", "1SP")).unwrap();
        let node = local_as();
        let (outputs, timing) = rac
            .process(&db, &node, &[IfId(1), IfId(2), IfId(3)], SimTime::ZERO)
            .unwrap();
        // 1SP picks, per egress interface, the shortest eligible beacon. The 1-hop beacon
        // arrived on if2, so it wins on if1 and if3; on if2 only the 2-hop beacon is
        // eligible (a beacon never goes back out of its ingress interface).
        assert_eq!(outputs.len(), 2);
        let short = outputs
            .iter()
            .find(|o| o.beacon.pcb.path_metrics().hops == 1)
            .unwrap();
        assert_eq!(short.egress_ifs, vec![IfId(1), IfId(3)]);
        let long = outputs
            .iter()
            .find(|o| o.beacon.pcb.path_metrics().hops == 2)
            .unwrap();
        assert_eq!(long.egress_ifs, vec![IfId(2)]);
        assert_eq!(short.rac_name, "1SP");
        assert!(timing.candidates >= 2);
        assert!(timing.total() >= timing.execute);
    }

    #[test]
    fn static_rac_skips_pull_based_batches_unless_enabled() {
        let reg = registry();
        let pull = beacon(
            &reg,
            1,
            &[(10, 10)],
            PcbExtensions::none().with_target(AsId(50)),
        );
        let db = ingress_db_with(vec![(pull, 1)]);
        let node = local_as();

        let plain = Rac::new_static(RacConfig::static_rac("1SP", "1SP")).unwrap();
        let (outputs, _) = plain
            .process(&db, &node, &[IfId(2)], SimTime::ZERO)
            .unwrap();
        assert!(outputs.is_empty());

        let pull_enabled =
            Rac::new_static(RacConfig::static_rac("1SP", "1SP").with_pull_based(true)).unwrap();
        let (outputs, _) = pull_enabled
            .process(&db, &node, &[IfId(2)], SimTime::ZERO)
            .unwrap();
        assert_eq!(outputs.len(), 1);
    }

    #[test]
    fn interface_groups_split_or_merge_batches() {
        let reg = registry();
        let g1 = beacon(
            &reg,
            1,
            &[(10, 10)],
            PcbExtensions::none().with_interface_group(InterfaceGroupId(1)),
        );
        let g2 = beacon(
            &reg,
            1,
            &[(20, 10)],
            PcbExtensions::none().with_interface_group(InterfaceGroupId(2)),
        );
        let db = ingress_db_with(vec![(g1, 1), (g2, 1)]);
        let node = local_as();

        // Group-aware RAC: one selection per group => both beacons selected by 1SP.
        let grouped =
            Rac::new_static(RacConfig::static_rac("1SP", "1SP").with_interface_groups(true))
                .unwrap();
        let (outputs, _) = grouped
            .process(&db, &node, &[IfId(2)], SimTime::ZERO)
            .unwrap();
        assert_eq!(outputs.len(), 2);

        // Group-oblivious RAC: groups merged, 1SP keeps only the single shortest beacon.
        let merged = Rac::new_static(RacConfig::static_rac("1SP", "1SP")).unwrap();
        let (outputs, _) = merged
            .process(&db, &node, &[IfId(2)], SimTime::ZERO)
            .unwrap();
        assert_eq!(outputs.len(), 1);
    }

    #[test]
    fn group_collapse_processes_each_merged_batch_exactly_once() {
        // Regression: with interface groups disabled, a pull-enabled RAC facing an origin
        // whose beacons span several groups *and* both targeted/untargeted batches must
        // merge down to one batch per (origin, target). The old collapse sorted by the full
        // BatchKey ordering (origin, group, target), under which equal (origin, target)
        // pairs from different groups are not adjacent, so dedup missed them and the merged
        // batch was processed once per group.
        let reg = registry();
        let mk = |seq_latency: u64, group: u32, target: Option<u64>| {
            let mut ext = PcbExtensions::none().with_interface_group(InterfaceGroupId(group));
            if let Some(t) = target {
                ext = ext.with_target(AsId(t));
            }
            beacon(&reg, 1, &[(seq_latency, 10)], ext)
        };
        let db = ingress_db_with(vec![
            (mk(10, 1, None), 1),
            (mk(20, 2, None), 1),
            (mk(30, 1, Some(50)), 1),
            (mk(40, 2, Some(50)), 1),
        ]);
        let rac =
            Rac::new_static(RacConfig::static_rac("1SP", "1SP").with_pull_based(true)).unwrap();
        let batches = rac.relevant_batches(&db, SimTime::ZERO);
        assert_eq!(batches.len(), 2, "one merged batch per (origin, target)");
        let node = local_as();
        let (outputs, timing) = rac.process(&db, &node, &[IfId(2)], SimTime::ZERO).unwrap();
        // Each of the four beacons crosses the marshal boundary exactly once...
        assert_eq!(timing.candidates, 4);
        // ...and 1SP selects one shortest beacon per merged batch, with no duplicates.
        assert_eq!(outputs.len(), 2);
    }

    #[test]
    fn on_demand_rac_fetches_verifies_caches_and_runs() {
        let reg = registry();
        let store = SharedAlgorithmStore::new();
        let program = irec_irvm::programs::widest_path(5);
        let reference = store.publish(AsId(1), AlgorithmId(7), program.to_module_bytes());

        let thin = beacon(
            &reg,
            1,
            &[(10, 10)],
            PcbExtensions::none().with_algorithm(reference),
        );
        let wide = beacon(
            &reg,
            1,
            &[(10, 1000)],
            PcbExtensions::none().with_algorithm(reference),
        );
        let plain = beacon(&reg, 1, &[(1, 1)], PcbExtensions::none());
        let db = ingress_db_with(vec![(thin, 1), (wide, 1), (plain, 1)]);
        let node = local_as();

        let rac =
            Rac::new_on_demand(RacConfig::on_demand_rac("od"), Arc::new(store.clone())).unwrap();
        let (outputs, timing) = rac.process(&db, &node, &[IfId(2)], SimTime::ZERO).unwrap();
        // Both algorithm-carrying beacons are selectable; the widest ranks first, and the
        // plain beacon is never processed by the on-demand RAC.
        assert_eq!(outputs.len(), 2);
        assert!(outputs
            .iter()
            .all(|o| o.beacon.pcb.extensions.algorithm.is_some()));
        assert_eq!(rac.cached_algorithms(), 1);
        assert!(timing.setup > Duration::ZERO);

        // Second run hits the cache (still exactly one cached instantiation).
        let (_, _) = rac.process(&db, &node, &[IfId(2)], SimTime::ZERO).unwrap();
        assert_eq!(rac.cached_algorithms(), 1);
    }

    #[test]
    fn on_demand_rejects_hash_mismatch() {
        let reg = registry();
        let store = SharedAlgorithmStore::new();
        let program = irec_irvm::programs::lowest_latency(5);
        // Publish one module but reference a different hash in the PCB.
        store.publish(AsId(1), AlgorithmId(7), program.to_module_bytes());
        let bogus_ref = AlgorithmRef::new(AlgorithmId(7), irec_crypto::sha256(b"something else"));
        let pcb = beacon(
            &reg,
            1,
            &[(10, 10)],
            PcbExtensions::none().with_algorithm(bogus_ref),
        );
        let db = ingress_db_with(vec![(pcb, 1)]);
        let node = local_as();
        let rac = Rac::new_on_demand(RacConfig::on_demand_rac("od"), Arc::new(store)).unwrap();
        let err = rac
            .process(&db, &node, &[IfId(2)], SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.category(), "verification");
        assert_eq!(rac.cached_algorithms(), 0);
    }

    #[test]
    fn on_demand_rejects_oversized_executable() {
        struct HugeFetcher;
        impl AlgorithmFetcher for HugeFetcher {
            fn fetch(&self, _origin: AsId, _r: &AlgorithmRef) -> Result<Vec<u8>> {
                Ok(vec![0u8; MAX_EXECUTABLE_BYTES + 1])
            }
        }
        let reg = registry();
        let reference = AlgorithmRef::new(AlgorithmId(1), irec_crypto::sha256(b"x"));
        let pcb = beacon(
            &reg,
            1,
            &[(10, 10)],
            PcbExtensions::none().with_algorithm(reference),
        );
        let db = ingress_db_with(vec![(pcb, 1)]);
        let node = local_as();
        let rac =
            Rac::new_on_demand(RacConfig::on_demand_rac("od"), Arc::new(HugeFetcher)).unwrap();
        let err = rac
            .process(&db, &node, &[IfId(2)], SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.category(), "resource-limit");
    }

    #[test]
    fn on_demand_rejects_unknown_algorithm() {
        let reg = registry();
        let store = SharedAlgorithmStore::new();
        let reference = AlgorithmRef::new(AlgorithmId(99), irec_crypto::sha256(b"y"));
        let pcb = beacon(
            &reg,
            1,
            &[(10, 10)],
            PcbExtensions::none().with_algorithm(reference),
        );
        let db = ingress_db_with(vec![(pcb, 1)]);
        let node = local_as();
        let rac = Rac::new_on_demand(RacConfig::on_demand_rac("od"), Arc::new(store)).unwrap();
        let err = rac
            .process(&db, &node, &[IfId(2)], SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err.category(), "not-found");
    }

    #[test]
    fn config_kind_mismatch_is_rejected() {
        assert!(Rac::new_static(RacConfig::on_demand_rac("od")).is_err());
        let store: Arc<dyn AlgorithmFetcher> = Arc::new(SharedAlgorithmStore::new());
        assert!(Rac::new_on_demand(RacConfig::static_rac("x", "1SP"), store).is_err());
        assert!(Rac::new_static(RacConfig::static_rac("x", "no-such-algorithm")).is_err());
    }

    #[test]
    fn process_candidates_reports_timing_components() {
        let reg = registry();
        let beacons: Vec<Arc<StoredBeacon>> = (0..32)
            .map(|i| {
                Arc::new(StoredBeacon {
                    pcb: beacon(&reg, 1, &[(10 + i, 100)], PcbExtensions::none()),
                    ingress: IfId(1),
                    received_at: SimTime::ZERO,
                })
            })
            .collect();
        let rac = Rac::new_static(RacConfig::static_rac("legacy", "legacy-scion")).unwrap();
        let node = local_as();
        let key = BatchKey {
            origin: AsId(1),
            group: InterfaceGroupId::DEFAULT,
            target: None,
        };
        let (outputs, timing) = rac
            .process_candidates(&key, &beacons, &node, &[IfId(2), IfId(3)])
            .unwrap();
        assert_eq!(timing.candidates, 32);
        assert!(timing.marshal > Duration::ZERO);
        assert!(!outputs.is_empty());
        // legacy-scion keeps at most 20 per egress.
        assert!(outputs.len() <= 32);
    }

    #[test]
    fn shared_store_publish_and_fetch() {
        let store = SharedAlgorithmStore::new();
        assert!(store.is_empty());
        let module = irec_irvm::programs::lowest_latency(3).to_module_bytes();
        let reference = store.publish(AsId(4), AlgorithmId(2), module.clone());
        assert_eq!(store.len(), 1);
        let fetched = store.fetch(AsId(4), &reference).unwrap();
        assert_eq!(fetched, module);
        assert!(reference.matches(&fetched));
        assert!(store.fetch(AsId(5), &reference).is_err());
    }
}
