//! Configuration of an IREC node and its routing algorithm containers.

use irec_types::{Latency, SimDuration};

/// How beacons are allowed to propagate across business relationships.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationPolicy {
    /// Gao–Rexford (valley-free) export: beacons learned from a provider or peer are only
    /// exported to customers; beacons learned from a customer are exported everywhere.
    /// This is the policy used on the generated Internet topology.
    ValleyFree,
    /// Export on every interface (except the one the beacon arrived on). Used by the small
    /// hand-built example topologies of the paper's figures, which have no relationships.
    All,
}

/// Whether a RAC runs a fixed, operator-configured algorithm or algorithms shipped in PCBs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RacKind {
    /// A static RAC: always runs the algorithm named here (resolved through
    /// [`irec_algorithms::catalog::by_name`]) or provided natively.
    Static {
        /// Catalog name of the algorithm (e.g. `"1SP"`, `"5SP"`, `"HD"`, `"DO"`).
        algorithm: String,
    },
    /// An on-demand RAC: executes the algorithm referenced by the PCBs it processes, fetched
    /// from the origin AS and verified against the hash in the (signed) PCB.
    OnDemand,
}

/// Configuration of one routing algorithm container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacConfig {
    /// Display name of the RAC; also used to tag registered paths. For static RACs this
    /// usually equals the algorithm name (plus a variant suffix, e.g. `DOB300`).
    pub name: String,
    /// Static or on-demand.
    pub kind: RacKind,
    /// Whether this RAC optimizes on extended paths (§IV-E). DON disables it, DOB enables it.
    pub extend_paths: bool,
    /// Whether this RAC processes beacons per interface group (§IV-D). When disabled, all
    /// groups of an origin are merged into the default group before optimization.
    pub use_interface_groups: bool,
    /// Whether this RAC processes pull-based beacons (ones carrying a Target extension).
    /// The paper makes both features independently switchable per RAC.
    pub process_pull_based: bool,
    /// Maximum number of PCBs to select per (origin, interface group, egress interface); the
    /// paper's evaluation uses 20.
    pub max_selected: usize,
}

impl RacConfig {
    /// A static RAC with the given catalog algorithm and defaults matching the paper's
    /// evaluation setup.
    pub fn static_rac(name: impl Into<String>, algorithm: impl Into<String>) -> Self {
        RacConfig {
            name: name.into(),
            kind: RacKind::Static {
                algorithm: algorithm.into(),
            },
            extend_paths: false,
            use_interface_groups: false,
            process_pull_based: false,
            max_selected: 20,
        }
    }

    /// An on-demand RAC with the paper's defaults (pull-based processing enabled, since the
    /// PD workflow combines both mechanisms).
    pub fn on_demand_rac(name: impl Into<String>) -> Self {
        RacConfig {
            name: name.into(),
            kind: RacKind::OnDemand,
            extend_paths: false,
            use_interface_groups: false,
            process_pull_based: true,
            max_selected: 20,
        }
    }

    /// Builder-style: enable extended-path optimization.
    #[must_use]
    pub fn with_extended_paths(mut self, enabled: bool) -> Self {
        self.extend_paths = enabled;
        self
    }

    /// Builder-style: enable per-interface-group optimization.
    #[must_use]
    pub fn with_interface_groups(mut self, enabled: bool) -> Self {
        self.use_interface_groups = enabled;
        self
    }

    /// Builder-style: enable processing of pull-based beacons.
    #[must_use]
    pub fn with_pull_based(mut self, enabled: bool) -> Self {
        self.process_pull_based = enabled;
        self
    }

    /// Builder-style: set the per-egress selection budget.
    #[must_use]
    pub fn with_max_selected(mut self, max: usize) -> Self {
        self.max_selected = max;
        self
    }
}

/// Configuration of a whole IREC node (one AS's control plane).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// The RACs this AS deploys. Every AS chooses its own set — property P2 of the paper.
    pub racs: Vec<RacConfig>,
    /// Export policy for beacon propagation.
    pub policy: PropagationPolicy,
    /// Validity period of self-originated beacons.
    pub beacon_validity: SimDuration,
    /// Interval between beaconing rounds (the paper's simulations use 10 simulated minutes).
    pub beacon_interval: SimDuration,
    /// Local switching latency added to every intra-AS crossing.
    pub local_crossing_latency: Latency,
    /// Whether this node participates in IREC at all; a "legacy" node runs only the single
    /// built-in shortest-path selection and ignores every IREC extension (used by the
    /// backward-compatibility experiment).
    pub irec_enabled: bool,
    /// Worker threads of the parallel RAC execution engine. `1` (the default) processes
    /// every `(RAC, batch)` work item sequentially; `N > 1` fans the items out over `N`
    /// scoped worker threads with a deterministic merge, so results are byte-identical
    /// either way.
    pub parallelism: usize,
    /// Number of shards of the ingress database (see
    /// [`crate::beacon_db::ShardedIngressDb`]). `0` (the default) derives the count from
    /// the worker budget — the next power of two of `parallelism` — so parallel
    /// deployments shard automatically and sequential ones keep a single map. Any value
    /// produces byte-identical observable behaviour; the count only changes how much
    /// insert/evict concurrency the database admits.
    pub ingress_shards: usize,
    /// Number of shards of the path service (see
    /// [`crate::path_service::ShardedPathService`]), keyed by destination AS. `0` (the
    /// default) derives the count from the worker budget like `ingress_shards` does. Any
    /// value produces byte-identical observable behaviour; the count only changes how much
    /// registration concurrency — RAC selections and pull-return commits — the service
    /// admits.
    pub path_shards: usize,
    /// Whether the RAC execution engine keeps per-RAC incremental selection tables
    /// (see [`crate::engine::SelectionTables`]): unchanged candidate batches are served
    /// from the table instead of re-running the RAC, guarded by a content fingerprint so
    /// the output stays byte-identical to a from-scratch run. `false` (the default) is the
    /// retained from-scratch reference path.
    pub incremental_selection: bool,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            racs: vec![RacConfig::static_rac("1SP", "1SP")],
            policy: PropagationPolicy::ValleyFree,
            beacon_validity: SimDuration::from_hours(6),
            beacon_interval: SimDuration::from_minutes(10),
            local_crossing_latency: Latency::from_micros(200),
            irec_enabled: true,
            parallelism: 1,
            ingress_shards: 0,
            path_shards: 0,
            incremental_selection: false,
        }
    }
}

impl NodeConfig {
    /// The four-static-RAC + one-on-demand-RAC configuration of the paper's large-scale
    /// simulations (§VIII-B): 1SP, 5SP, HD, DO and an on-demand RAC.
    ///
    /// `dob` selects the delay-optimization variant: `false` = DON (no extended paths, no
    /// interface groups), `true` = DOB (both enabled).
    pub fn paper_simulation(dob: bool) -> Self {
        NodeConfig {
            racs: vec![
                RacConfig::static_rac("1SP", "1SP"),
                RacConfig::static_rac("5SP", "5SP"),
                RacConfig::static_rac("HD", "HD"),
                RacConfig::static_rac(if dob { "DOB" } else { "DON" }, "DO")
                    .with_extended_paths(dob)
                    .with_interface_groups(dob),
                RacConfig::on_demand_rac("on-demand"),
            ],
            ..Default::default()
        }
    }

    /// A legacy (non-IREC) node for the backward-compatibility experiment: a single
    /// shortest-path selection, IREC extensions ignored.
    pub fn legacy() -> Self {
        NodeConfig {
            racs: vec![RacConfig::static_rac("legacy", "legacy-scion")],
            irec_enabled: false,
            ..Default::default()
        }
    }

    /// Builder-style: set the propagation policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PropagationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style: replace the RAC set.
    #[must_use]
    pub fn with_racs(mut self, racs: Vec<RacConfig>) -> Self {
        self.racs = racs;
        self
    }

    /// Builder-style: set the RAC execution engine's worker count (clamped to at least 1).
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Builder-style: set the ingress-database shard count (`0` = derive from
    /// `parallelism`).
    #[deprecated(
        since = "0.10.0",
        note = "set shard counts at the simulation level via \
                `irec_sim::SimulationConfig::with_ingress_shards` (or set the \
                `ingress_shards` field directly when building a bare node)"
    )]
    #[must_use]
    pub fn with_ingress_shards(mut self, shards: usize) -> Self {
        self.ingress_shards = shards;
        self
    }

    /// Builder-style: set the path-service shard count (`0` = derive from `parallelism`).
    #[deprecated(
        since = "0.10.0",
        note = "set shard counts at the simulation level via \
                `irec_sim::SimulationConfig::with_path_shards` (or set the `path_shards` \
                field directly when building a bare node)"
    )]
    #[must_use]
    pub fn with_path_shards(mut self, shards: usize) -> Self {
        self.path_shards = shards;
        self
    }

    /// Builder-style: enable or disable incremental re-selection in the RAC engine.
    #[must_use]
    pub fn with_incremental_selection(mut self, enabled: bool) -> Self {
        self.incremental_selection = enabled;
        self
    }

    /// The effective ingress shard count: the configured value, or — when left at the `0`
    /// auto default — the next power of two of the RAC engine's worker count. Clamped to
    /// [`crate::beacon_db::MAX_INGRESS_SHARDS`], matching the database's own clamp, so the
    /// figure always equals the shard count of the node this config builds.
    pub fn ingress_shard_count(&self) -> usize {
        let count = if self.ingress_shards == 0 {
            self.parallelism.max(1).next_power_of_two()
        } else {
            self.ingress_shards
        };
        count.min(crate::beacon_db::MAX_INGRESS_SHARDS)
    }

    /// The effective path-service shard count, derived exactly like
    /// [`NodeConfig::ingress_shard_count`] (auto default: next power of two of
    /// `parallelism`) and clamped to [`crate::path_service::MAX_PATH_SHARDS`].
    pub fn path_shard_count(&self) -> usize {
        let count = if self.path_shards == 0 {
            self.parallelism.max(1).next_power_of_two()
        } else {
            self.path_shards
        };
        count.min(crate::path_service::MAX_PATH_SHARDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_rac_defaults() {
        let c = RacConfig::static_rac("DO", "DO");
        assert_eq!(
            c.kind,
            RacKind::Static {
                algorithm: "DO".into()
            }
        );
        assert!(!c.extend_paths);
        assert_eq!(c.max_selected, 20);
    }

    #[test]
    fn on_demand_rac_processes_pull_based_by_default() {
        let c = RacConfig::on_demand_rac("od");
        assert_eq!(c.kind, RacKind::OnDemand);
        assert!(c.process_pull_based);
    }

    #[test]
    fn builder_flags() {
        let c = RacConfig::static_rac("DOB", "DO")
            .with_extended_paths(true)
            .with_interface_groups(true)
            .with_pull_based(true)
            .with_max_selected(7);
        assert!(c.extend_paths && c.use_interface_groups && c.process_pull_based);
        assert_eq!(c.max_selected, 7);
    }

    #[test]
    fn paper_simulation_config_has_five_racs() {
        let cfg = NodeConfig::paper_simulation(true);
        assert_eq!(cfg.racs.len(), 5);
        let dob = cfg.racs.iter().find(|r| r.name == "DOB").unwrap();
        assert!(dob.extend_paths && dob.use_interface_groups);
        let don_cfg = NodeConfig::paper_simulation(false);
        let don = don_cfg.racs.iter().find(|r| r.name == "DON").unwrap();
        assert!(!don.extend_paths && !don.use_interface_groups);
        assert_eq!(cfg.beacon_interval, SimDuration::from_minutes(10));
    }

    #[test]
    fn legacy_config_disables_irec() {
        let cfg = NodeConfig::legacy();
        assert!(!cfg.irec_enabled);
        assert_eq!(cfg.racs.len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn ingress_shard_count_follows_parallelism_unless_pinned() {
        // Auto default: next power of two of the worker budget.
        assert_eq!(NodeConfig::default().ingress_shard_count(), 1);
        assert_eq!(
            NodeConfig::default()
                .with_parallelism(4)
                .ingress_shard_count(),
            4
        );
        assert_eq!(
            NodeConfig::default()
                .with_parallelism(6)
                .ingress_shard_count(),
            8
        );
        // An explicit count wins, including non-powers of two.
        assert_eq!(
            NodeConfig::default()
                .with_parallelism(4)
                .with_ingress_shards(7)
                .ingress_shard_count(),
            7
        );
        // Oversized values clamp to the database's own shard cap, so the config-level
        // count always matches the built node's actual shard count.
        assert_eq!(
            NodeConfig::default()
                .with_ingress_shards(100_000)
                .ingress_shard_count(),
            crate::beacon_db::MAX_INGRESS_SHARDS
        );
    }

    #[test]
    #[allow(deprecated)]
    fn path_shard_count_follows_parallelism_unless_pinned() {
        assert_eq!(NodeConfig::default().path_shard_count(), 1);
        assert_eq!(
            NodeConfig::default().with_parallelism(6).path_shard_count(),
            8
        );
        assert_eq!(
            NodeConfig::default()
                .with_parallelism(4)
                .with_path_shards(7)
                .path_shard_count(),
            7
        );
        assert_eq!(
            NodeConfig::default()
                .with_path_shards(100_000)
                .path_shard_count(),
            crate::path_service::MAX_PATH_SHARDS
        );
    }
}
