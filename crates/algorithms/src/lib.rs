//! # irec-algorithms
//!
//! The routing algorithms of the IREC reproduction, behind a single pluggable trait.
//!
//! A RAC (routing algorithm container, `irec-core`) periodically hands its algorithm a batch
//! of candidate PCBs for one `(origin AS, interface group [, target AS])` together with
//! intra-AS topology information, and gets back, per egress interface, the subset of
//! candidates the algorithm considers optimal. [`RoutingAlgorithm`] is that interface; the
//! paper standardizes it as a "stable" feature so that algorithms can be deployed
//! ubiquitously.
//!
//! Implementations provided here (the ones used by the paper's evaluation, §VIII-B):
//!
//! * [`score::ShortestPath`] — **1SP**: the single shortest path per origin,
//! * [`score::KShortestPaths`] — **5SP** (and the legacy SCION selection with k = 20),
//! * [`score::DelayOptimization`] — **DO / DON / DOB**: lowest propagation delay, with or
//!   without extended-path optimization and interface groups,
//! * [`score::WidestPath`] and [`score::ShortestWidest`] — bandwidth criteria used by the
//!   paper's running examples,
//! * [`disjoint::HeuristicDisjointness`] — **HD** (Krähenbühl et al.),
//! * [`disjoint::AvoidLinksAlgorithm`] + [`disjoint::pd_round_program`] — the building blocks
//!   of **PD**, pull-based disjointness via on-demand routing,
//! * [`ondemand::IrvmAlgorithm`] — the adapter that runs an arbitrary fetched IRVM module as
//!   a routing algorithm (what an on-demand RAC instantiates),
//! * [`yens::YensKShortest`] — **kYEN**: exact loop-free k-shortest enumeration, the
//!   reference baseline for the `KShortestPaths` truncation heuristic,
//! * [`aco::AntColony`] — **ACO**: a seeded, deterministic ant-colony multi-criteria
//!   selector,
//! * [`incremental::IncrementalSelection`] — the churn-incremental old/new-table wrapper
//!   re-scoring only batches whose hop chains cross a topology delta.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aco;
pub mod catalog;
pub mod disjoint;
pub mod incremental;
pub mod ondemand;
pub mod score;
pub mod yens;

use irec_pcb::Pcb;
use irec_topology::AsNode;
use irec_types::{AsId, IfId, InterfaceGroupId, PathMetrics, Result};
use std::collections::BTreeMap;

/// One candidate beacon as handed to an algorithm: the PCB plus the local ingress interface
/// on which it was received (needed to compute extended-path metrics, §IV-E).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The received beacon.
    pub pcb: Pcb,
    /// The local interface the beacon arrived on.
    pub ingress: IfId,
}

impl Candidate {
    /// Creates a candidate.
    pub fn new(pcb: Pcb, ingress: IfId) -> Self {
        Candidate { pcb, ingress }
    }

    /// The metrics of the received path (up to the local AS's ingress interface).
    pub fn received_metrics(&self) -> PathMetrics {
        self.pcb.path_metrics()
    }
}

/// The batch of candidates an algorithm optimizes in one invocation.
///
/// Per §V-C of the paper, "the PCBs provided as input are specific for an origin AS, as well
/// as interface group and target AS (if available)"; those parameters are carried here for
/// bookkeeping but the algorithm does not need to inspect them.
#[derive(Debug, Clone)]
pub struct CandidateBatch {
    /// Origin AS of all candidates.
    pub origin: AsId,
    /// Interface group of all candidates (default group when the origin does not use them).
    pub group: InterfaceGroupId,
    /// Target AS if the candidates are pull-based beacons.
    pub target: Option<AsId>,
    /// The candidates.
    pub candidates: Vec<Candidate>,
}

impl CandidateBatch {
    /// Creates a batch.
    pub fn new(origin: AsId, group: InterfaceGroupId, candidates: Vec<Candidate>) -> Self {
        CandidateBatch {
            origin,
            group,
            target: None,
            candidates,
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }
}

/// Execution context handed to an algorithm along with the batch: the local AS topology
/// (giving access to intra-AS crossing latencies), the egress interfaces to optimize for, and
/// the RAC configuration.
#[derive(Debug, Clone)]
pub struct AlgorithmContext<'a> {
    /// The local AS (interfaces, intra-AS latencies).
    pub local_as: &'a AsNode,
    /// The egress interfaces for which optimal sets must be produced.
    pub egress_interfaces: Vec<IfId>,
    /// Whether to optimize on extended paths (§IV-E). When false, received-path metrics are
    /// used unchanged for every egress interface (the DON configuration).
    pub extend_paths: bool,
    /// Maximum number of candidates to select per egress interface (the paper uses 20).
    pub max_selected: usize,
}

impl<'a> AlgorithmContext<'a> {
    /// Creates a context selecting up to `max_selected` beacons per egress interface.
    pub fn new(local_as: &'a AsNode, egress_interfaces: Vec<IfId>, max_selected: usize) -> Self {
        AlgorithmContext {
            local_as,
            egress_interfaces,
            extend_paths: false,
            max_selected,
        }
    }

    /// Enables extended-path optimization (§IV-E).
    #[must_use]
    pub fn with_extended_paths(mut self, enabled: bool) -> Self {
        self.extend_paths = enabled;
        self
    }

    /// The metrics of `candidate` as seen at `egress`: the received metrics, extended with
    /// the intra-AS crossing from the candidate's ingress interface to `egress` when
    /// extended-path optimization is enabled.
    pub fn metrics_at_egress(&self, candidate: &Candidate, egress: IfId) -> PathMetrics {
        let received = candidate.received_metrics();
        if !self.extend_paths {
            return received;
        }
        match self.local_as.intra_metrics(candidate.ingress, egress) {
            Ok(crossing) => received.extend_intra(crossing),
            // Unknown interfaces (e.g. a beacon received on a since-removed link): fall back
            // to the received metrics rather than dropping the candidate.
            Err(_) => received,
        }
    }
}

/// The per-egress-interface selection produced by an algorithm: candidate indices into the
/// batch, best first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionResult {
    /// Selected candidate indices per egress interface.
    pub per_egress: BTreeMap<IfId, Vec<usize>>,
}

impl SelectionResult {
    /// Creates an empty result.
    pub fn empty() -> Self {
        SelectionResult::default()
    }

    /// Records a selection for one egress interface.
    pub fn insert(&mut self, egress: IfId, selected: Vec<usize>) {
        self.per_egress.insert(egress, selected);
    }

    /// Total number of (egress, candidate) selections.
    pub fn total_selected(&self) -> usize {
        self.per_egress.values().map(Vec::len).sum()
    }

    /// The distinct candidate indices selected for at least one egress interface.
    pub fn distinct_candidates(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.per_egress.values().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// A routing algorithm: the pluggable optimization logic run inside a RAC.
///
/// This is the interface the paper's standardization model places in the "stable" tier: it
/// must stay fixed so that new algorithms can be deployed without touching the RAC.
pub trait RoutingAlgorithm: Send + Sync {
    /// A short, stable name used for path tagging, logging and the evaluation series labels.
    fn name(&self) -> &str;

    /// Selects, for every egress interface in the context, the optimal candidates of the
    /// batch (indices into `batch.candidates`, best first, at most `ctx.max_selected` each).
    fn select(&self, batch: &CandidateBatch, ctx: &AlgorithmContext<'_>)
        -> Result<SelectionResult>;

    /// Whether this algorithm implements [`RoutingAlgorithm::merge_partial`]. The engine
    /// probes this before marshalling a full oversized batch for the merge-aware reduce, so
    /// it must return `true` exactly when `merge_partial` returns `Some`.
    fn merges_partial(&self) -> bool {
        false
    }

    /// Merge-aware reduce for batches the execution engine split into sub-ranges: given the
    /// *full* batch and the per-sub-range selections (`partials`, indices into the full
    /// batch, ascending within each partial), produce the final selection.
    ///
    /// The default (`None`) keeps the engine's generic reduce — one more `select` pass over
    /// the union of the partials' winners — which is exact for selectors that rank
    /// candidates independently but a hierarchical approximation for set-valued ones.
    /// Set-valued selectors override this to compute their objective over the merged view
    /// instead of concatenated truncations (HD recomputes disjointness over the full batch,
    /// making the split lossless).
    fn merge_partial(
        &self,
        _batch: &CandidateBatch,
        _ctx: &AlgorithmContext<'_>,
        _partials: &[SelectionResult],
    ) -> Option<Result<SelectionResult>> {
        None
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for the algorithm unit tests.
    use super::*;
    use irec_crypto::{KeyRegistry, Signer};
    use irec_pcb::{PcbExtensions, StaticInfo};
    use irec_topology::Tier;
    use irec_types::{Bandwidth, GeoCoord, Latency, SimDuration, SimTime};

    /// Builds a candidate PCB originated by `origin` with the given per-hop
    /// (latency_ms, bandwidth_mbps) crossings, received locally on `ingress`.
    pub fn candidate(origin: u64, hops: &[(u64, u64)], ingress: u32) -> Candidate {
        let registry = KeyRegistry::with_ases(9, 4096);
        let mut pcb = Pcb::originate(
            AsId(origin),
            origin,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none(),
        );
        for (i, (lat, bw)) in hops.iter().enumerate() {
            let asn = if i == 0 {
                AsId(origin)
            } else {
                AsId(origin + i as u64 * 100)
            };
            let signer = Signer::new(asn, registry.clone());
            let info = StaticInfo {
                link_latency: Latency::from_millis(*lat),
                link_bandwidth: Bandwidth::from_mbps(*bw),
                intra_latency: Latency::ZERO,
                egress_location: None,
            };
            let ingress_if = if i == 0 { IfId::NONE } else { IfId(1) };
            pcb.extend(ingress_if, IfId(2), info, &signer).unwrap();
        }
        Candidate::new(pcb, IfId(ingress))
    }

    /// Builds a candidate whose path traverses exactly the given (asn, egress_if) links,
    /// received locally on `ingress`.
    pub fn candidate_with_links(origin: u64, links: &[(u64, u32)], ingress: u32) -> Candidate {
        let registry = KeyRegistry::with_ases(9, 8192);
        let mut pcb = Pcb::originate(
            AsId(origin),
            0,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(6),
            PcbExtensions::none(),
        );
        for (i, (asn, egress)) in links.iter().enumerate() {
            let signer = Signer::new(AsId(*asn), registry.clone());
            let info = StaticInfo {
                link_latency: Latency::from_millis(10),
                link_bandwidth: Bandwidth::from_mbps(100),
                intra_latency: Latency::ZERO,
                egress_location: None,
            };
            let ingress_if = if i == 0 { IfId::NONE } else { IfId(1) };
            pcb.extend(ingress_if, IfId(*egress), info, &signer)
                .unwrap();
        }
        Candidate::new(pcb, IfId(ingress))
    }

    /// A local AS with three interfaces at distinct locations, for extended-path tests.
    pub fn local_as() -> AsNode {
        let mut node = AsNode::new(AsId(500), Tier::Tier2);
        for (i, (lat, lon)) in [(47.37, 8.54), (48.86, 2.35), (40.71, -74.0)]
            .iter()
            .enumerate()
        {
            let ifid = IfId(i as u32 + 1);
            node.interfaces.insert(
                ifid,
                irec_topology::Interface {
                    id: ifid,
                    owner: node.id,
                    location: GeoCoord::new(*lat, *lon),
                    link: irec_types::LinkId(i as u64),
                },
            );
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;
    use irec_types::Latency;

    #[test]
    fn candidate_received_metrics() {
        let c = candidate(1, &[(10, 100), (5, 50)], 1);
        let m = c.received_metrics();
        assert_eq!(m.latency, Latency::from_millis(15));
        assert_eq!(m.hops, 2);
    }

    #[test]
    fn batch_accessors() {
        let batch = CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![candidate(1, &[(10, 100)], 1)],
        );
        assert_eq!(batch.len(), 1);
        assert!(!batch.is_empty());
        assert_eq!(batch.origin, AsId(1));
    }

    #[test]
    fn extended_metrics_add_intra_crossing() {
        let node = local_as();
        let ctx_plain = AlgorithmContext::new(&node, vec![IfId(3)], 20);
        let ctx_ext = AlgorithmContext::new(&node, vec![IfId(3)], 20).with_extended_paths(true);
        let c = candidate(1, &[(10, 100)], 1);
        let plain = ctx_plain.metrics_at_egress(&c, IfId(3));
        let extended = ctx_ext.metrics_at_egress(&c, IfId(3));
        assert_eq!(plain, c.received_metrics());
        // Zurich -> New York crossing adds tens of milliseconds.
        assert!(extended.latency > plain.latency + Latency::from_millis(20));
        // Same egress as ingress: no crossing added.
        let same = ctx_ext.metrics_at_egress(&c, IfId(1));
        assert_eq!(same.latency, plain.latency);
    }

    #[test]
    fn extended_metrics_fall_back_on_unknown_interface() {
        let node = local_as();
        let ctx = AlgorithmContext::new(&node, vec![IfId(3)], 20).with_extended_paths(true);
        let c = candidate(1, &[(10, 100)], 99); // unknown ingress
        assert_eq!(ctx.metrics_at_egress(&c, IfId(3)), c.received_metrics());
    }

    #[test]
    fn selection_result_bookkeeping() {
        let mut r = SelectionResult::empty();
        r.insert(IfId(1), vec![0, 2]);
        r.insert(IfId(2), vec![2]);
        assert_eq!(r.total_selected(), 3);
        assert_eq!(r.distinct_candidates(), vec![0, 2]);
    }
}
