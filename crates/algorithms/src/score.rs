//! Score-based routing algorithms: 1SP, k-shortest (5SP / legacy SCION), delay optimization
//! (DON/DOB), widest path and shortest-widest.
//!
//! All of them share the same structure: per egress interface, compute a totally ordered
//! score for every candidate (from the received or extended path metrics) and keep the `k`
//! best. The generic machinery lives in [`ScoredAlgorithm`]; the concrete algorithms are
//! thin scoring functions on top.

use crate::{AlgorithmContext, Candidate, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_types::{IfId, PathMetrics, Result};

/// A totally ordered score; lower is better. The second component breaks ties
/// deterministically by candidate index so that repeated runs are stable.
type Score = (i128, usize);

/// A scoring function: maps the (possibly extended) path metrics of a candidate to a scalar
/// cost (lower is better).
pub trait ScoreFn: Send + Sync {
    /// Computes the cost of a candidate from its metrics.
    fn cost(&self, metrics: &PathMetrics, candidate: &Candidate) -> i128;
}

impl<F> ScoreFn for F
where
    F: Fn(&PathMetrics, &Candidate) -> i128 + Send + Sync,
{
    fn cost(&self, metrics: &PathMetrics, candidate: &Candidate) -> i128 {
        self(metrics, candidate)
    }
}

/// Generic top-k-by-score selection, the shared engine of all scored algorithms.
pub struct ScoredAlgorithm<F: ScoreFn> {
    name: String,
    score: F,
    /// Optional override of the per-egress selection budget (e.g. 1 for 1SP, 5 for 5SP);
    /// the effective budget is the minimum of this and the RAC's `max_selected`.
    k: Option<usize>,
}

impl<F: ScoreFn> ScoredAlgorithm<F> {
    /// Creates a scored algorithm.
    pub fn new(name: impl Into<String>, k: Option<usize>, score: F) -> Self {
        ScoredAlgorithm {
            name: name.into(),
            score,
            k,
        }
    }

    fn select_for_egress(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
        egress: IfId,
    ) -> Vec<usize> {
        let budget = self.k.unwrap_or(usize::MAX).min(ctx.max_selected);
        let mut scored: Vec<(Score, usize)> = batch
            .candidates
            .iter()
            .enumerate()
            // Never propagate a beacon back out of the interface it arrived on, and never
            // extend a beacon that already contains the local AS (loop prevention).
            .filter(|(_, c)| c.ingress != egress && !c.pcb.contains_as(ctx.local_as.id))
            .map(|(i, c)| {
                let metrics = ctx.metrics_at_egress(c, egress);
                ((self.score.cost(&metrics, c), i), i)
            })
            .collect();
        scored.sort();
        scored.into_iter().take(budget).map(|(_, i)| i).collect()
    }
}

impl<F: ScoreFn> RoutingAlgorithm for ScoredAlgorithm<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let mut result = SelectionResult::empty();
        for &egress in &ctx.egress_interfaces {
            result.insert(egress, self.select_for_egress(batch, ctx, egress));
        }
        Ok(result)
    }
}

/// **1SP** — propagate the single shortest (by AS-hop count) path per origin on every egress
/// interface. The baseline of the paper's Fig. 8.
pub struct ShortestPath {
    inner: ScoredAlgorithm<fn(&PathMetrics, &Candidate) -> i128>,
}

impl ShortestPath {
    /// Creates the 1SP algorithm.
    pub fn new() -> Self {
        ShortestPath {
            inner: ScoredAlgorithm::new("1SP", Some(1), |m: &PathMetrics, _: &Candidate| {
                m.hops as i128
            }),
        }
    }
}

impl Default for ShortestPath {
    fn default() -> Self {
        Self::new()
    }
}

impl RoutingAlgorithm for ShortestPath {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        self.inner.select(batch, ctx)
    }
}

/// **k-shortest paths** — 5SP with `k = 5`; with `k = 20` this is the legacy SCION control
/// service's selection (the baseline of the Fig. 6/7 benchmarks).
pub struct KShortestPaths {
    inner: ScoredAlgorithm<fn(&PathMetrics, &Candidate) -> i128>,
}

impl KShortestPaths {
    /// Creates a k-shortest-paths algorithm with the given `k`.
    pub fn new(k: usize) -> Self {
        KShortestPaths {
            inner: ScoredAlgorithm::new(
                format!("{k}SP"),
                Some(k),
                |m: &PathMetrics, _: &Candidate| m.hops as i128,
            ),
        }
    }

    /// The 5SP configuration of the paper's simulations.
    pub fn five() -> Self {
        Self::new(5)
    }

    /// The legacy SCION configuration (20 shortest paths) used in the Fig. 6/7 benchmarks.
    pub fn legacy_scion() -> Self {
        let mut alg = Self::new(20);
        alg.inner.name = "legacy-scion".to_string();
        alg
    }
}

impl RoutingAlgorithm for KShortestPaths {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        self.inner.select(batch, ctx)
    }
}

/// **DO — delay optimization**: select the lowest-latency paths. With
/// `AlgorithmContext::extend_paths` disabled this is the paper's **DON** configuration; with
/// it enabled (plus interface-grouped origination) it is **DOB**.
pub struct DelayOptimization {
    inner: ScoredAlgorithm<fn(&PathMetrics, &Candidate) -> i128>,
}

impl DelayOptimization {
    /// Creates the delay-optimization algorithm with the given per-egress budget.
    pub fn new(k: usize) -> Self {
        DelayOptimization {
            inner: ScoredAlgorithm::new("DO", Some(k), |m: &PathMetrics, _: &Candidate| {
                m.latency.as_micros() as i128
            }),
        }
    }
}

impl Default for DelayOptimization {
    fn default() -> Self {
        Self::new(irec_irvm::programs::DEFAULT_MAX_SELECTED as usize)
    }
}

impl RoutingAlgorithm for DelayOptimization {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        self.inner.select(batch, ctx)
    }
}

/// **Widest path** — select the highest-bottleneck-bandwidth paths (the file-transfer
/// criterion of the paper's Example #1).
pub struct WidestPath {
    inner: ScoredAlgorithm<fn(&PathMetrics, &Candidate) -> i128>,
}

impl WidestPath {
    /// Creates the widest-path algorithm with the given per-egress budget.
    pub fn new(k: usize) -> Self {
        WidestPath {
            inner: ScoredAlgorithm::new("widest", Some(k), |m: &PathMetrics, _: &Candidate| {
                -(m.bandwidth.as_kbps() as i128)
            }),
        }
    }
}

impl RoutingAlgorithm for WidestPath {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        self.inner.select(batch, ctx)
    }
}

/// **Shortest-widest** — lexicographically prefer the highest bandwidth, break ties by lowest
/// latency (the on-demand algorithm of the paper's Fig. 2c).
pub struct ShortestWidest {
    inner: ScoredAlgorithm<fn(&PathMetrics, &Candidate) -> i128>,
}

impl ShortestWidest {
    /// Creates the shortest-widest algorithm with the given per-egress budget.
    pub fn new(k: usize) -> Self {
        ShortestWidest {
            inner: ScoredAlgorithm::new(
                "shortest-widest",
                Some(k),
                |m: &PathMetrics, _: &Candidate| {
                    // Bandwidth dominates; latency, clamped below the scale factor, breaks ties.
                    const SCALE: i128 = 1 << 40;
                    -(m.bandwidth.as_kbps() as i128) * SCALE
                        + (m.latency.as_micros() as i128).min(SCALE - 1)
                },
            ),
        }
    }
}

impl RoutingAlgorithm for ShortestWidest {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        self.inner.select(batch, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{candidate, local_as};
    use irec_types::{AsId, InterfaceGroupId};

    /// Batch with three candidates of distinct shapes:
    /// 0: 2 hops, 20 ms, 10 Mbps    (short, thin)
    /// 1: 3 hops, 30 ms, 100 Mbps   (medium)
    /// 2: 3 hops, 40 ms, 1000 Mbps  (long, wide)
    fn batch() -> CandidateBatch {
        CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate(1, &[(10, 10), (10, 10)], 1),
                candidate(1, &[(10, 100), (10, 100), (10, 100)], 1),
                candidate(1, &[(10, 1000), (10, 1000), (20, 1000)], 2),
            ],
        )
    }

    fn ctx(node: &irec_topology::AsNode) -> AlgorithmContext<'_> {
        AlgorithmContext::new(node, vec![IfId(3)], 20)
    }

    #[test]
    fn one_sp_selects_single_shortest() {
        let node = local_as();
        let r = ShortestPath::new().select(&batch(), &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![0]);
    }

    #[test]
    fn ksp_selects_k_paths_in_hop_order() {
        let node = local_as();
        let r = KShortestPaths::new(2)
            .select(&batch(), &ctx(&node))
            .unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![0, 1]);
        let r5 = KShortestPaths::five()
            .select(&batch(), &ctx(&node))
            .unwrap();
        assert_eq!(r5.per_egress[&IfId(3)].len(), 3); // only 3 candidates exist
    }

    #[test]
    fn legacy_scion_name_and_budget() {
        let alg = KShortestPaths::legacy_scion();
        assert_eq!(alg.name(), "legacy-scion");
        let node = local_as();
        let r = alg.select(&batch(), &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)].len(), 3);
    }

    #[test]
    fn delay_optimization_prefers_low_latency() {
        let node = local_as();
        let r = DelayOptimization::new(2)
            .select(&batch(), &ctx(&node))
            .unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![0, 1]);
    }

    #[test]
    fn widest_prefers_high_bandwidth() {
        let node = local_as();
        let r = WidestPath::new(1).select(&batch(), &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![2]);
    }

    #[test]
    fn shortest_widest_breaks_bandwidth_ties_by_latency() {
        let node = local_as();
        let mut b = batch();
        // Add a candidate with the same bandwidth as candidate 2 but lower latency.
        b.candidates.push(candidate(1, &[(5, 1000), (5, 1000)], 1));
        let r = ShortestWidest::new(2).select(&b, &ctx(&node)).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![3, 2]);
    }

    #[test]
    fn candidates_never_propagate_back_on_their_ingress() {
        let node = local_as();
        let context = AlgorithmContext::new(&node, vec![IfId(1), IfId(2)], 20);
        let r = KShortestPaths::new(20).select(&batch(), &context).unwrap();
        // Candidates 0 and 1 arrived on if1: they must not be selected for egress if1.
        assert!(!r.per_egress[&IfId(1)].contains(&0));
        assert!(!r.per_egress[&IfId(1)].contains(&1));
        assert!(r.per_egress[&IfId(1)].contains(&2));
        // Candidate 2 arrived on if2.
        assert!(!r.per_egress[&IfId(2)].contains(&2));
    }

    #[test]
    fn loop_containing_candidates_are_skipped() {
        let node = local_as();
        // A candidate whose path already contains the local AS (AS 500).
        let looped = candidate(500, &[(10, 100)], 1);
        let b = CandidateBatch::new(AsId(500), InterfaceGroupId::DEFAULT, vec![looped]);
        let r = DelayOptimization::new(5).select(&b, &ctx(&node)).unwrap();
        assert!(r.per_egress[&IfId(3)].is_empty());
    }

    #[test]
    fn dob_extended_paths_can_change_the_winner() {
        // Two candidates with equal received latency, arriving on interfaces at different
        // distances from the egress: extended-path optimization must prefer the closer one.
        let node = local_as(); // if1 Zurich, if2 Paris, if3 New York
        let c_zurich = candidate(1, &[(10, 100)], 1);
        let c_paris = candidate(2, &[(10, 100)], 2);
        let b = CandidateBatch::new(AsId(1), InterfaceGroupId::DEFAULT, vec![c_zurich, c_paris]);
        // Without extension (DON): tie, candidate 0 wins by index.
        let don = AlgorithmContext::new(&node, vec![IfId(3)], 20);
        let r_don = DelayOptimization::new(1).select(&b, &don).unwrap();
        assert_eq!(r_don.per_egress[&IfId(3)], vec![0]);
        // With extension (DOB): Paris is closer to New York than Zurich is, so candidate 1
        // has lower extended latency and wins.
        let dob = AlgorithmContext::new(&node, vec![IfId(3)], 20).with_extended_paths(true);
        let r_dob = DelayOptimization::new(1).select(&b, &dob).unwrap();
        assert_eq!(r_dob.per_egress[&IfId(3)], vec![1]);
    }

    #[test]
    fn empty_batch_produces_empty_selection() {
        let node = local_as();
        let b = CandidateBatch::new(AsId(1), InterfaceGroupId::DEFAULT, vec![]);
        let r = ShortestPath::new().select(&b, &ctx(&node)).unwrap();
        assert!(r.per_egress[&IfId(3)].is_empty());
        assert_eq!(r.total_selected(), 0);
    }

    #[test]
    fn budget_is_min_of_k_and_context() {
        let node = local_as();
        let mut context = ctx(&node);
        context.max_selected = 1;
        let r = KShortestPaths::new(5).select(&batch(), &context).unwrap();
        assert_eq!(r.per_egress[&IfId(3)].len(), 1);
    }
}
