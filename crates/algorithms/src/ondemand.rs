//! The on-demand algorithm adapter: running a fetched IRVM module as a [`RoutingAlgorithm`].
//!
//! This is what an on-demand RAC instantiates after fetching an executable from the origin AS
//! and verifying its hash against the PCB's Algorithm extension (§V-C of the paper). The
//! adapter is also useful for *static* RACs whose operators prefer to configure algorithms as
//! IRVM modules rather than native code.

use crate::{AlgorithmContext, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_irvm::{CandidateView, ExecutionLimits, Interpreter, Program};
use irec_types::{IfId, Result};

/// A routing algorithm backed by a sandboxed IRVM program.
pub struct IrvmAlgorithm {
    name: String,
    interpreter: Interpreter,
}

impl IrvmAlgorithm {
    /// Wraps a validated program with the given execution limits.
    pub fn new(program: Program, limits: ExecutionLimits) -> Result<Self> {
        let name = program.meta.name.clone();
        Ok(IrvmAlgorithm {
            name,
            interpreter: Interpreter::new(program, limits)?,
        })
    }

    /// Instantiates the algorithm from fetched module bytes (validating them), as an
    /// on-demand RAC does. The caller is responsible for hash verification against the PCB's
    /// Algorithm extension *before* calling this.
    pub fn from_module_bytes(bytes: &[u8], limits: ExecutionLimits) -> Result<Self> {
        let interpreter = Interpreter::from_module_bytes(bytes, limits)?;
        Ok(IrvmAlgorithm {
            name: interpreter.program().meta.name.clone(),
            interpreter,
        })
    }

    /// The underlying program.
    pub fn program(&self) -> &Program {
        self.interpreter.program()
    }

    fn views_for_egress(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
        egress: IfId,
    ) -> Vec<(usize, CandidateView)> {
        batch
            .candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ingress != egress && !c.pcb.contains_as(ctx.local_as.id))
            .map(|(i, c)| {
                (
                    i,
                    CandidateView::new(
                        i as u64,
                        ctx.metrics_at_egress(c, egress),
                        c.pcb.link_keys(),
                    ),
                )
            })
            .collect()
    }
}

impl RoutingAlgorithm for IrvmAlgorithm {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(
        &self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let budget = (self.interpreter.program().meta.max_selected as usize).min(ctx.max_selected);
        let mut result = SelectionResult::empty();
        for &egress in &ctx.egress_interfaces {
            let views = self.views_for_egress(batch, ctx, egress);
            let inner: Vec<CandidateView> = views.iter().map(|(_, v)| v.clone()).collect();
            let picked = self.interpreter.select_best(&inner);
            let selected: Vec<usize> = picked
                .into_iter()
                .take(budget)
                .map(|pos| views[pos].0)
                .collect();
            result.insert(egress, selected);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{candidate, local_as};
    use irec_irvm::programs;
    use irec_types::{AsId, InterfaceGroupId, Latency};

    fn batch() -> CandidateBatch {
        CandidateBatch::new(
            AsId(1),
            InterfaceGroupId::DEFAULT,
            vec![
                candidate(1, &[(10, 10), (10, 10)], 1), // 20 ms, 10 Mbps
                candidate(1, &[(10, 100), (10, 100), (10, 100)], 1), // 30 ms, 100 Mbps
                candidate(1, &[(10, 1000), (10, 1000), (20, 1000)], 2), // 40 ms, 1 Gbps
            ],
        )
    }

    #[test]
    fn irvm_widest_matches_expectation() {
        let node = local_as();
        let ctx = AlgorithmContext::new(&node, vec![IfId(3)], 20);
        let alg =
            IrvmAlgorithm::new(programs::widest_path(1), ExecutionLimits::ON_DEMAND_RAC).unwrap();
        let r = alg.select(&batch(), &ctx).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![2]);
        assert_eq!(alg.name(), "widest-path");
    }

    #[test]
    fn irvm_bounded_widest_reproduces_example_2() {
        let node = local_as();
        let ctx = AlgorithmContext::new(&node, vec![IfId(3)], 20);
        let alg = IrvmAlgorithm::new(
            programs::bounded_latency_widest(Latency::from_millis(30), 1),
            ExecutionLimits::ON_DEMAND_RAC,
        )
        .unwrap();
        let r = alg.select(&batch(), &ctx).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![1]);
    }

    #[test]
    fn from_module_bytes_roundtrip() {
        let program = programs::lowest_latency(2);
        let bytes = program.to_module_bytes();
        let alg = IrvmAlgorithm::from_module_bytes(&bytes, ExecutionLimits::ON_DEMAND_RAC).unwrap();
        assert_eq!(alg.program(), &program);
        let node = local_as();
        let ctx = AlgorithmContext::new(&node, vec![IfId(3)], 20);
        let r = alg.select(&batch(), &ctx).unwrap();
        assert_eq!(r.per_egress[&IfId(3)], vec![0, 1]);
    }

    #[test]
    fn corrupted_module_bytes_rejected() {
        let mut bytes = programs::lowest_latency(2).to_module_bytes();
        bytes.truncate(bytes.len() / 2);
        assert!(IrvmAlgorithm::from_module_bytes(&bytes, ExecutionLimits::ON_DEMAND_RAC).is_err());
    }

    #[test]
    fn budget_clamped_by_context() {
        let node = local_as();
        let mut ctx = AlgorithmContext::new(&node, vec![IfId(3)], 20);
        ctx.max_selected = 1;
        let alg = IrvmAlgorithm::new(programs::lowest_latency(20), ExecutionLimits::ON_DEMAND_RAC)
            .unwrap();
        let r = alg.select(&batch(), &ctx).unwrap();
        assert_eq!(r.per_egress[&IfId(3)].len(), 1);
    }

    #[test]
    fn ingress_egress_filtering_applies() {
        let node = local_as();
        let ctx = AlgorithmContext::new(&node, vec![IfId(1)], 20);
        let alg = IrvmAlgorithm::new(programs::lowest_latency(20), ExecutionLimits::ON_DEMAND_RAC)
            .unwrap();
        let r = alg.select(&batch(), &ctx).unwrap();
        // Candidates 0 and 1 arrived on if1 and must not be re-propagated there.
        assert_eq!(r.per_egress[&IfId(1)], vec![2]);
    }
}
