//! A name-based catalog of the built-in algorithms, used by RAC configuration files and the
//! simulation setup to instantiate static RACs from strings.

use crate::disjoint::HeuristicDisjointness;
use crate::score::{DelayOptimization, KShortestPaths, ShortestPath, ShortestWidest, WidestPath};
use crate::RoutingAlgorithm;
use irec_types::{IrecError, Result};
use std::sync::Arc;

/// Default per-egress selection budget used when instantiating catalog algorithms
/// (20 registered paths per RAC, origin and interface group — the paper's setting).
pub const DEFAULT_BUDGET: usize = 20;

/// The names of all built-in static algorithms, in the order the paper's evaluation lists
/// them.
pub const BUILTIN_NAMES: &[&str] = &[
    "1SP",
    "5SP",
    "HD",
    "DO",
    "legacy-scion",
    "widest",
    "shortest-widest",
];

/// Instantiates a built-in algorithm by name.
///
/// Recognized names (case-insensitive): `1SP`, `5SP`, `kSP` for any integer k, `HD`, `DO`,
/// `DON`, `DOB`, `legacy-scion`, `widest`, `shortest-widest`. (`DON`/`DOB` share the DO
/// implementation; the extended-path behaviour is a RAC configuration flag, not an algorithm
/// property.)
pub fn by_name(name: &str) -> Result<Arc<dyn RoutingAlgorithm>> {
    let lower = name.to_ascii_lowercase();
    let alg: Arc<dyn RoutingAlgorithm> = match lower.as_str() {
        "1sp" => Arc::new(ShortestPath::new()),
        "5sp" => Arc::new(KShortestPaths::five()),
        "hd" => Arc::new(HeuristicDisjointness::new(DEFAULT_BUDGET)),
        "do" | "don" | "dob" => Arc::new(DelayOptimization::new(DEFAULT_BUDGET)),
        "legacy-scion" | "legacy" => Arc::new(KShortestPaths::legacy_scion()),
        "widest" => Arc::new(WidestPath::new(DEFAULT_BUDGET)),
        "shortest-widest" => Arc::new(ShortestWidest::new(DEFAULT_BUDGET)),
        _ => {
            // kSP for arbitrary k.
            if let Some(k) = lower
                .strip_suffix("sp")
                .and_then(|p| p.parse::<usize>().ok())
            {
                if k == 0 {
                    return Err(IrecError::config("0SP is not a valid algorithm"));
                }
                Arc::new(KShortestPaths::new(k))
            } else {
                return Err(IrecError::config(format!("unknown algorithm '{name}'")));
            }
        }
    };
    Ok(alg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_names_resolve() {
        for name in BUILTIN_NAMES {
            let alg = by_name(name).unwrap();
            assert!(!alg.name().is_empty());
        }
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(by_name("hd").unwrap().name(), "HD");
        assert_eq!(by_name("Do").unwrap().name(), "DO");
    }

    #[test]
    fn don_and_dob_resolve_to_delay_optimization() {
        assert_eq!(by_name("DON").unwrap().name(), "DO");
        assert_eq!(by_name("DOB").unwrap().name(), "DO");
    }

    #[test]
    fn ksp_parses_arbitrary_k() {
        assert_eq!(by_name("3SP").unwrap().name(), "3SP");
        assert_eq!(by_name("12sp").unwrap().name(), "12SP");
    }

    #[test]
    fn unknown_and_invalid_names_rejected() {
        assert!(by_name("frobnicate").is_err());
        assert!(by_name("0SP").is_err());
        assert!(by_name("").is_err());
    }
}
