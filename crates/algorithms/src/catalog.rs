//! A name-based catalog of the built-in algorithms, used by RAC configuration files and the
//! simulation setup to instantiate static RACs from strings.

use crate::aco::{AntColony, DEFAULT_ACO_ITERATIONS, DEFAULT_ACO_SEED, MAX_ACO_ITERATIONS};
use crate::disjoint::HeuristicDisjointness;
use crate::score::{DelayOptimization, KShortestPaths, ShortestPath, ShortestWidest, WidestPath};
use crate::yens::YensKShortest;
use crate::RoutingAlgorithm;
use irec_types::{IrecError, Result};
use std::sync::Arc;

/// Default per-egress selection budget used when instantiating catalog algorithms
/// (20 registered paths per RAC, origin and interface group — the paper's setting).
pub const DEFAULT_BUDGET: usize = 20;

/// Upper bound on the `k` accepted by the `<k>SP` / `<k>YEN` name patterns.
///
/// The per-egress selection budget saturates at `ctx.max_selected` either way, but Yen's
/// exact enumeration runs `k` spur rounds *before* truncation — an unbounded `k` (e.g. the
/// `usize::MAX` that `"18446744073709551615SP"` used to produce) turns a config typo into an
/// unbounded amount of work.
pub const MAX_K: usize = 1024;

/// The names of all built-in static algorithms, in the order the paper's evaluation lists
/// them, followed by the stochastic/k-shortest family added on top of it.
pub const BUILTIN_NAMES: &[&str] = &[
    "1SP",
    "5SP",
    "HD",
    "DO",
    "legacy-scion",
    "widest",
    "shortest-widest",
    "5YEN",
    "ACO",
];

/// Instantiates a built-in algorithm by name.
///
/// Recognized names (case-insensitive): `1SP`, `5SP`, `kSP` for any integer 0 < k ≤
/// [`MAX_K`], `HD`, `DO`, `DON`, `DOB`, `legacy-scion` (alias `legacy`), `widest`,
/// `shortest-widest`, `kYEN` for the exact Yen's k-shortest enumeration (same bounds on k),
/// and `aco[:<seed>[:<iterations>]]` for the seeded ant-colony selector. (`DON`/`DOB` share
/// the DO implementation; the extended-path behaviour is a RAC configuration flag, not an
/// algorithm property.)
pub fn by_name(name: &str) -> Result<Arc<dyn RoutingAlgorithm>> {
    let lower = name.to_ascii_lowercase();
    let alg: Arc<dyn RoutingAlgorithm> = match lower.as_str() {
        "1sp" => Arc::new(ShortestPath::new()),
        "5sp" => Arc::new(KShortestPaths::five()),
        "hd" => Arc::new(HeuristicDisjointness::new(DEFAULT_BUDGET)),
        "do" | "don" | "dob" => Arc::new(DelayOptimization::new(DEFAULT_BUDGET)),
        "legacy-scion" | "legacy" => Arc::new(KShortestPaths::legacy_scion()),
        "widest" => Arc::new(WidestPath::new(DEFAULT_BUDGET)),
        "shortest-widest" => Arc::new(ShortestWidest::new(DEFAULT_BUDGET)),
        _ => {
            if let Some(spec) = lower.strip_prefix("aco") {
                Arc::new(parse_aco(name, spec)?)
            } else if let Some(k) = lower
                .strip_suffix("sp")
                .and_then(|p| p.parse::<usize>().ok())
            {
                Arc::new(KShortestPaths::new(checked_k(k, "SP")?))
            } else if let Some(k) = lower
                .strip_suffix("yen")
                .and_then(|p| p.parse::<usize>().ok())
            {
                Arc::new(YensKShortest::new(checked_k(k, "YEN")?))
            } else {
                return Err(IrecError::config(format!(
                    "unknown algorithm '{name}' (recognized: {}, 'legacy', '<k>SP'/'<k>YEN' \
                     with 0 < k <= {MAX_K}, 'DON'/'DOB', or 'aco[:<seed>[:<iterations>]]')",
                    BUILTIN_NAMES.join(", ")
                )));
            }
        }
    };
    Ok(alg)
}

/// Validates the `k` of a `<k>SP` / `<k>YEN` name.
fn checked_k(k: usize, family: &str) -> Result<usize> {
    if k == 0 {
        return Err(IrecError::config(format!(
            "0{family} is not a valid algorithm"
        )));
    }
    if k > MAX_K {
        return Err(IrecError::config(format!(
            "{k}{family} exceeds the catalog's MAX_K = {MAX_K}"
        )));
    }
    Ok(k)
}

/// Parses the part of an `aco[:<seed>[:<iterations>]]` name after the `aco` prefix.
fn parse_aco(name: &str, spec: &str) -> Result<AntColony> {
    let bad = || {
        IrecError::config(format!(
            "invalid ACO spec '{name}': expected 'aco[:<seed>[:<iterations>]]' with \
             0 < iterations <= {MAX_ACO_ITERATIONS}"
        ))
    };
    if spec.is_empty() {
        return Ok(AntColony::new(
            DEFAULT_ACO_SEED,
            DEFAULT_ACO_ITERATIONS,
            DEFAULT_BUDGET,
        ));
    }
    let mut parts = spec.strip_prefix(':').ok_or_else(bad)?.split(':');
    let seed: u64 = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let iterations: usize = match parts.next() {
        Some(s) => s.parse().ok().filter(|&i| i > 0).ok_or_else(bad)?,
        None => DEFAULT_ACO_ITERATIONS,
    };
    if iterations > MAX_ACO_ITERATIONS || parts.next().is_some() {
        return Err(bad());
    }
    Ok(AntColony::new(seed, iterations, DEFAULT_BUDGET))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtin_names_resolve() {
        for name in BUILTIN_NAMES {
            let alg = by_name(name).unwrap();
            assert!(!alg.name().is_empty());
        }
    }

    #[test]
    fn names_are_case_insensitive() {
        assert_eq!(by_name("hd").unwrap().name(), "HD");
        assert_eq!(by_name("Do").unwrap().name(), "DO");
        assert_eq!(by_name("7yen").unwrap().name(), "7YEN");
        assert_eq!(by_name("Aco").unwrap().name(), "ACO");
    }

    #[test]
    fn don_and_dob_resolve_to_delay_optimization() {
        assert_eq!(by_name("DON").unwrap().name(), "DO");
        assert_eq!(by_name("DOB").unwrap().name(), "DO");
    }

    #[test]
    fn ksp_parses_arbitrary_k() {
        assert_eq!(by_name("3SP").unwrap().name(), "3SP");
        assert_eq!(by_name("12sp").unwrap().name(), "12SP");
    }

    #[test]
    fn kyen_parses_arbitrary_k() {
        assert_eq!(by_name("3YEN").unwrap().name(), "3YEN");
        assert_eq!(by_name("12yen").unwrap().name(), "12YEN");
    }

    #[test]
    fn aco_specs_parse_with_seed_and_budget() {
        assert_eq!(by_name("aco").unwrap().name(), "ACO");
        assert_eq!(by_name("aco:42").unwrap().name(), "ACO");
        assert_eq!(by_name("aco:42:8").unwrap().name(), "ACO");
    }

    #[test]
    fn malformed_aco_specs_rejected() {
        for spec in ["aco:", "aco:x", "aco:1:0", "aco:1:x", "aco:1:2:3", "aco42"] {
            let err = by_name(spec).map(|_| ()).unwrap_err();
            assert_eq!(err.category(), "config", "spec {spec:?}");
        }
        let over = format!("aco:1:{}", MAX_ACO_ITERATIONS + 1);
        assert!(by_name(&over).is_err());
    }

    #[test]
    fn oversized_k_is_rejected() {
        // Regression: this used to build a KShortestPaths with k = usize::MAX.
        assert!(by_name("18446744073709551615SP").is_err());
        assert!(by_name(&format!("{}SP", MAX_K + 1)).is_err());
        assert!(by_name(&format!("{}YEN", MAX_K + 1)).is_err());
        // The bound itself is accepted.
        assert_eq!(by_name(&format!("{MAX_K}SP")).unwrap().name(), "1024SP");
    }

    #[test]
    fn unknown_and_invalid_names_rejected() {
        assert!(by_name("frobnicate").is_err());
        assert!(by_name("0SP").is_err());
        assert!(by_name("0YEN").is_err());
        assert!(by_name("").is_err());
    }

    #[test]
    fn unknown_name_error_lists_recognized_names() {
        let err = by_name("frobnicate").map(|_| ()).unwrap_err().to_string();
        for name in BUILTIN_NAMES {
            assert!(err.contains(name), "error should mention {name}: {err}");
        }
        assert!(
            err.contains("legacy"),
            "error should mention the bare alias"
        );
        assert!(err.contains("<k>SP"));
        assert!(err.contains("aco["));
    }
}
