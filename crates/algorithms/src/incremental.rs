//! Churn-incremental re-selection: the old/new-table pattern.
//!
//! A full RAC pass after a topology delta re-scores every `(origin, group)` candidate batch,
//! although a single link flap only perturbs the batches whose hop chains cross that link.
//! [`IncrementalTable`] keeps a table of previous results per `(origin, group, target)` (the
//! "old table"); a churn delta — mapped by the simulator's churn engine into a neutral
//! [`SelectionDelta`] — invalidates exactly the entries whose recorded link/AS footprint
//! intersects the delta, and the next pass re-runs the wrapped computation only for
//! invalidated or changed batches, reusing the stored result everywhere else. Entries
//! re-validated or recomputed during a pass form the "new table";
//! [`IncrementalTable::commit_round`] swaps it in, aging out batches that disappeared.
//!
//! Correctness does not hinge on the invalidation being precise: every reuse is guarded by a
//! fingerprint over the batch content and selection context, so a stale entry that somehow
//! survives an imprecise delta is still discarded when the batch itself changed. The
//! equality `incremental selection == full recompute` therefore holds per step by
//! construction — the point of the table is to make the cheap path the common one, which
//! the [`stats`](IncrementalTable::stats) counters expose for tests and benches.
//!
//! Two layers use the table: [`IncrementalSelection`] caches raw
//! [`SelectionResult`]s for direct algorithm invocations (the PR-9 acceptance harness), and
//! the core engine caches whole per-RAC output vectors keyed by the same footprint logic
//! (the live round path).

use crate::{AlgorithmContext, CandidateBatch, RoutingAlgorithm, SelectionResult};
use irec_types::{AsId, IfId, InterfaceGroupId, Result};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// A topology delta in selection terms: which hop-chain footprints are stale. The simulator
/// maps its churn deltas (`link-down`, `node-leave`, ...) into this neutral form so the
/// algorithms crate stays independent of the simulation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionDelta {
    /// A link changed state; the payload is its `(AS, interface)` endpoint keys as they
    /// appear in PCB hop entries.
    Link(Vec<(AsId, IfId)>),
    /// An AS joined or left the topology.
    As(AsId),
    /// A change that can affect every batch (e.g. a RAC catalog swap).
    All,
}

/// Counters exposing how the table behaved: how often the cached result was reused, how
/// often the wrapped computation actually ran, and how many entries deltas invalidated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Selections served from the table.
    pub reused: usize,
    /// Selections that ran the wrapped computation.
    pub recomputed: usize,
    /// Table entries dropped by [`SelectionDelta`]s.
    pub invalidated: usize,
}

impl IncrementalStats {
    /// Adds `other`'s counters into `self` — for summing per-table stats into one report.
    pub fn accumulate(&mut self, other: IncrementalStats) {
        self.reused += other.reused;
        self.recomputed += other.recomputed;
        self.invalidated += other.invalidated;
    }
}

/// The table key: one candidate batch identity — origin AS, interface group, and target AS
/// for pull-based batches (`None` for push-based ones, so targeted and untargeted batches of
/// the same origin never thrash one entry).
pub type TableKey = (AsId, InterfaceGroupId, Option<AsId>);

/// One old-table entry: the stored value plus the footprint and fingerprint guarding it.
#[derive(Debug, Clone)]
struct TableEntry<V> {
    fingerprint: u64,
    links: BTreeSet<(AsId, IfId)>,
    ases: BTreeSet<AsId>,
    value: V,
}

/// The generic old/new table behind incremental re-selection: values keyed by batch
/// identity, guarded by a content fingerprint, invalidated by footprint-intersecting
/// [`SelectionDelta`]s, and aged out by [`commit_round`](IncrementalTable::commit_round)
/// when their batches vanish.
///
/// The caller owns the fingerprint recipe (see [`FingerprintBuilder`]) and the footprint
/// extraction; the table owns reuse bookkeeping. [`IncrementalSelection`] instantiates it
/// with `V = SelectionResult`; the core engine instantiates it with a per-RAC output vector.
#[derive(Debug, Clone, Default)]
pub struct IncrementalTable<V> {
    table: BTreeMap<TableKey, TableEntry<V>>,
    fresh: BTreeSet<TableKey>,
    stats: IncrementalStats,
}

impl<V: Clone> IncrementalTable<V> {
    /// Creates an empty table.
    pub fn new() -> Self {
        IncrementalTable {
            table: BTreeMap::new(),
            fresh: BTreeSet::new(),
            stats: IncrementalStats::default(),
        }
    }

    /// The table's behaviour counters.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Looks up `key`: the stored value when the entry survived all deltas and
    /// `fingerprint` still matches, `None` otherwise. A hit counts as a reuse and marks the
    /// entry fresh for the current round.
    pub fn probe(&mut self, key: TableKey, fingerprint: u64) -> Option<V> {
        let entry = self.table.get(&key)?;
        if entry.fingerprint != fingerprint {
            return None;
        }
        self.stats.reused += 1;
        self.fresh.insert(key);
        Some(entry.value.clone())
    }

    /// Stores a freshly computed `value` for `key`, guarded by `fingerprint`, recording
    /// the hop-chain footprint from `links` (each `(AS, egress interface)` key as it appears
    /// in PCB hop entries). Counts as a recompute and marks the entry fresh.
    pub fn store(
        &mut self,
        key: TableKey,
        fingerprint: u64,
        links: impl IntoIterator<Item = (AsId, IfId)>,
        value: V,
    ) {
        let mut link_set = BTreeSet::new();
        let mut ases = BTreeSet::new();
        for (asn, ifid) in links {
            link_set.insert((asn, ifid));
            ases.insert(asn);
        }
        self.table.insert(
            key,
            TableEntry {
                fingerprint,
                links: link_set,
                ases,
                value,
            },
        );
        self.fresh.insert(key);
        self.stats.recomputed += 1;
    }

    /// Drops every entry whose footprint intersects `delta`; returns how many were dropped.
    pub fn apply_delta(&mut self, delta: &SelectionDelta) -> usize {
        let before = self.table.len();
        match delta {
            SelectionDelta::All => self.table.clear(),
            SelectionDelta::Link(endpoints) => self.table.retain(|_, entry| {
                !endpoints
                    .iter()
                    .any(|e| entry.links.contains(e) || entry.ases.contains(&e.0))
            }),
            SelectionDelta::As(asn) => self
                .table
                .retain(|(origin, _, _), entry| origin != asn && !entry.ases.contains(asn)),
        }
        let dropped = before - self.table.len();
        self.stats.invalidated += dropped;
        dropped
    }

    /// Ends one pass: entries not probed or stored since the previous commit age out (their
    /// batches no longer exist), and the new table becomes the old one.
    pub fn commit_round(&mut self) {
        let fresh = std::mem::take(&mut self.fresh);
        self.table.retain(|key, _| fresh.contains(key));
    }
}

/// The incremental re-selection wrapper around a [`RoutingAlgorithm`]: an
/// [`IncrementalTable`] of raw [`SelectionResult`]s keyed by batch identity. See the module
/// docs for the old/new-table flow.
pub struct IncrementalSelection {
    algorithm: Arc<dyn RoutingAlgorithm>,
    table: IncrementalTable<SelectionResult>,
}

impl IncrementalSelection {
    /// Wraps `algorithm` with an empty table.
    pub fn new(algorithm: Arc<dyn RoutingAlgorithm>) -> Self {
        IncrementalSelection {
            algorithm,
            table: IncrementalTable::new(),
        }
    }

    /// The wrapped algorithm.
    pub fn algorithm(&self) -> &Arc<dyn RoutingAlgorithm> {
        &self.algorithm
    }

    /// The table's behaviour counters.
    pub fn stats(&self) -> IncrementalStats {
        self.table.stats()
    }

    /// Number of stored selections.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Drops every entry whose footprint intersects `delta`; returns how many were dropped.
    pub fn apply_delta(&mut self, delta: &SelectionDelta) -> usize {
        self.table.apply_delta(delta)
    }

    /// Selects for one batch: the stored result when the entry survived all deltas and the
    /// batch/context fingerprint still matches, a fresh run of the wrapped algorithm
    /// otherwise. Either way the entry lands in the new table.
    pub fn select(
        &mut self,
        batch: &CandidateBatch,
        ctx: &AlgorithmContext<'_>,
    ) -> Result<SelectionResult> {
        let key = (batch.origin, batch.group, batch.target);
        let fingerprint = fingerprint(batch, ctx);
        if let Some(result) = self.table.probe(key, fingerprint) {
            return Ok(result);
        }
        let result = self.algorithm.select(batch, ctx)?;
        let links = batch
            .candidates
            .iter()
            .flat_map(|c| c.pcb.link_keys())
            .collect::<Vec<_>>();
        self.table.store(key, fingerprint, links, result.clone());
        Ok(result)
    }

    /// Ends one pass: entries not re-selected since the previous commit age out (their
    /// batches no longer exist), and the new table becomes the old one.
    pub fn commit_round(&mut self) {
        self.table.commit_round();
    }
}

/// Incremental fingerprint accumulator: a splitmix64 chain over 64-bit words, seeded with
/// the repo's standard constant. Both the algorithm-level fingerprint here and the core
/// engine's batch-view fingerprint fold through this builder so the recipes stay aligned.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintBuilder {
    state: u64,
}

impl FingerprintBuilder {
    /// Starts a chain from the standard seed.
    pub fn new() -> Self {
        FingerprintBuilder {
            state: 0x243f_6a88_85a3_08d3,
        }
    }

    /// Folds one word into the chain.
    pub fn fold(&mut self, word: u64) {
        self.state = splitmix64(self.state ^ word);
    }

    /// Folds a little-endian byte slice, 8 bytes per word (shorter tails zero-padded).
    pub fn fold_bytes(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.fold(u64::from_le_bytes(word));
        }
    }

    /// The chain's current value.
    pub fn finish(self) -> u64 {
        self.state
    }
}

impl Default for FingerprintBuilder {
    fn default() -> Self {
        FingerprintBuilder::new()
    }
}

/// Order-sensitive fingerprint over the batch content and the selection context: candidate
/// digests and ingress interfaces, the egress list, and the budget/extension knobs.
fn fingerprint(batch: &CandidateBatch, ctx: &AlgorithmContext<'_>) -> u64 {
    let mut fp = FingerprintBuilder::new();
    fp.fold(batch.origin.value());
    fp.fold(u64::from(batch.group.value()));
    fp.fold(batch.target.map_or(u64::MAX, |t| t.value()));
    for c in &batch.candidates {
        fp.fold_bytes(&c.pcb.digest().0 .0);
        fp.fold(u64::from(c.ingress.value()));
    }
    fp.fold(ctx.local_as.id.value());
    for egress in &ctx.egress_interfaces {
        fp.fold(u64::from(egress.value()));
    }
    fp.fold(ctx.max_selected as u64);
    fp.fold(u64::from(ctx.extend_paths));
    fp.finish()
}

/// The splitmix64 finalizer (one-shot form of the repo's standard mixing recipe).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::KShortestPaths;
    use crate::testutil::{candidate_with_links, local_as};

    fn ctx(node: &irec_topology::AsNode) -> AlgorithmContext<'_> {
        AlgorithmContext::new(node, vec![IfId(3)], 20)
    }

    fn batch(origin: u64, shift: u64) -> CandidateBatch {
        CandidateBatch::new(
            AsId(origin),
            InterfaceGroupId::DEFAULT,
            (0..4)
                .map(|i| {
                    candidate_with_links(origin, &[(origin, (i + shift) as u32 + 1), (9 + i, 1)], 1)
                })
                .collect(),
        )
    }

    fn incremental() -> IncrementalSelection {
        IncrementalSelection::new(Arc::new(KShortestPaths::new(3)))
    }

    #[test]
    fn second_pass_reuses_and_matches_full_recompute() {
        let node = local_as();
        let b = batch(1, 0);
        let mut inc = incremental();
        let first = inc.select(&b, &ctx(&node)).unwrap();
        let again = inc.select(&b, &ctx(&node)).unwrap();
        let full = inc.algorithm().clone().select(&b, &ctx(&node)).unwrap();
        assert_eq!(first, again);
        assert_eq!(again, full);
        assert_eq!(inc.stats().recomputed, 1);
        assert_eq!(inc.stats().reused, 1);
        assert_eq!(inc.len(), 1);
        assert!(!inc.is_empty());
    }

    #[test]
    fn link_delta_invalidates_only_crossing_batches() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        // Batch 1's chains cross (1, 1); batch 2's cross (2, 1) — only batch 1 drops.
        let dropped = inc.apply_delta(&SelectionDelta::Link(vec![(AsId(1), IfId(1))]));
        assert_eq!(dropped, 1);
        assert_eq!(inc.len(), 1);
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        assert_eq!(inc.stats().recomputed, 3, "batch 1 recomputed once more");
        assert_eq!(inc.stats().reused, 1, "batch 2 reused");
        assert_eq!(inc.stats().invalidated, 1);
    }

    #[test]
    fn as_delta_invalidates_traversing_and_originating_batches() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        // AS 9 sits on every chain (the second hop of candidate 0).
        assert_eq!(inc.apply_delta(&SelectionDelta::As(AsId(9))), 2);
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        assert_eq!(inc.apply_delta(&SelectionDelta::As(AsId(1))), 1);
        assert_eq!(inc.apply_delta(&SelectionDelta::All), 0);
    }

    #[test]
    fn changed_batch_content_defeats_stale_reuse() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        // Same (origin, group) key, different candidates, no delta applied: the fingerprint
        // guard must force a recompute rather than serving the stale entry.
        let changed = batch(1, 3);
        let r = inc.select(&changed, &ctx(&node)).unwrap();
        let full = inc
            .algorithm()
            .clone()
            .select(&changed, &ctx(&node))
            .unwrap();
        assert_eq!(r, full);
        assert_eq!(inc.stats().recomputed, 2);
        assert_eq!(inc.stats().reused, 0);
    }

    #[test]
    fn context_change_defeats_stale_reuse() {
        let node = local_as();
        let mut inc = incremental();
        let b = batch(1, 0);
        inc.select(&b, &ctx(&node)).unwrap();
        let mut tight = ctx(&node);
        tight.max_selected = 1;
        let r = inc.select(&b, &tight).unwrap();
        assert_eq!(r.per_egress[&IfId(3)].len(), 1);
        assert_eq!(inc.stats().recomputed, 2);
    }

    #[test]
    fn commit_round_ages_out_vanished_batches() {
        let node = local_as();
        let mut inc = incremental();
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.select(&batch(2, 0), &ctx(&node)).unwrap();
        inc.commit_round();
        assert_eq!(inc.len(), 2);
        // Next pass only sees origin 1; origin 2's entry ages out on commit.
        inc.select(&batch(1, 0), &ctx(&node)).unwrap();
        inc.commit_round();
        assert_eq!(inc.len(), 1);
    }

    #[test]
    fn generic_table_probe_store_and_ageing() {
        let mut table: IncrementalTable<Vec<u32>> = IncrementalTable::new();
        let key = (AsId(1), InterfaceGroupId::DEFAULT, None);
        assert!(table.probe(key, 7).is_none());
        table.store(key, 7, vec![(AsId(1), IfId(1))], vec![10, 20]);
        assert_eq!(table.probe(key, 7), Some(vec![10, 20]));
        assert!(table.probe(key, 8).is_none(), "fingerprint mismatch misses");
        assert_eq!(table.stats().recomputed, 1);
        assert_eq!(table.stats().reused, 1);
        table.commit_round();
        assert_eq!(table.len(), 1);
        // Not touched this round: ages out on the next commit.
        table.commit_round();
        assert!(table.is_empty());
    }

    #[test]
    fn targeted_and_untargeted_batches_keep_separate_entries() {
        let node = local_as();
        let mut inc = incremental();
        let b = batch(1, 0);
        let mut targeted = batch(1, 0);
        targeted.target = Some(AsId(77));
        inc.select(&b, &ctx(&node)).unwrap();
        inc.select(&targeted, &ctx(&node)).unwrap();
        assert_eq!(inc.len(), 2, "target is part of the table key");
        assert_eq!(inc.stats().recomputed, 2);
        inc.select(&b, &ctx(&node)).unwrap();
        inc.select(&targeted, &ctx(&node)).unwrap();
        assert_eq!(inc.stats().reused, 2);
    }

    #[test]
    fn stats_accumulate_sums_counters() {
        let mut total = IncrementalStats::default();
        total.accumulate(IncrementalStats {
            reused: 1,
            recomputed: 2,
            invalidated: 3,
        });
        total.accumulate(IncrementalStats {
            reused: 10,
            recomputed: 20,
            invalidated: 30,
        });
        assert_eq!(
            total,
            IncrementalStats {
                reused: 11,
                recomputed: 22,
                invalidated: 33,
            }
        );
    }
}
